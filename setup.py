"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
legacy editable installs (`pip install -e .`) where PEP 517 editable
builds are unavailable offline.
"""

from setuptools import setup

setup()
