"""An evolving, failure-prone network served by one live index.

The paper frames SIEF as the *decremental* half of dynamic distance
querying (its §2 notes that incremental PLL maintenance handles
insertions but "cannot be applied on edge deletions").  This library
implements both halves, and :class:`repro.core.lazy.LazySIEFIndex` fuses
them into the object an evolving-network service would actually run:

* queries under a transient failure build that failure's supplement on
  first touch (and cache it);
* new links repair the labeling in place (dynamic PLL);
* a permanent failure re-baselines the index.

The script simulates a social-network-ish timeline and checks every
answer against BFS ground truth as it goes.

Run:  python examples/evolving_network.py
"""

from __future__ import annotations

import random
import time

from repro.core.lazy import LazySIEFIndex
from repro.graph import generators
from repro.graph.traversal import UNREACHED, bfs_distance_between
from repro.labeling.query import INF


def truth(graph, s, t, edge):
    d = bfs_distance_between(graph, s, t, avoid=edge)
    return d if d != UNREACHED else INF


def main() -> None:
    rng = random.Random(21)
    graph = generators.powerlaw_cluster(250, 3, 0.5, seed=21)
    lazy = LazySIEFIndex(graph)
    n = graph.num_vertices
    print(f"initial network: {graph}\n")

    checked = 0
    t_start = time.perf_counter()
    for step in range(1, 7):
        # A few transient link failures get queried this epoch.
        for _ in range(3):
            edge = rng.choice(list(graph.edges()))
            s, t = rng.randrange(n), rng.randrange(n)
            got = lazy.distance(s, t, edge)
            expected = truth(graph, s, t, edge)
            assert got == expected, (step, edge, s, t)
            checked += 1
            shown = "unreachable" if got == INF else got
            print(
                f"epoch {step}: link {edge} down -> d({s}, {t}) = {shown}"
            )

        # The network evolves: two new friendships form.
        for _ in range(2):
            while True:
                a, b = rng.randrange(n), rng.randrange(n)
                if a != b and not graph.has_edge(a, b):
                    break
            lazy.insert_edge(a, b)
            print(f"epoch {step}: new link ({a}, {b}) absorbed in place")

        # Occasionally a failure becomes permanent.
        if step == 3:
            edge = rng.choice(list(graph.edges()))
            lazy.commit_failure(*edge)
            print(f"epoch {step}: link {edge} removed permanently")

    elapsed = time.perf_counter() - t_start
    print(
        f"\ntimeline done: {checked} failure queries verified against BFS, "
        f"{lazy.cases_built} supplements currently cached, "
        f"{elapsed:.1f} s total"
    )
    print(f"final network: {graph}")


if __name__ == "__main__":
    main()
