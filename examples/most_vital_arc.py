"""Scenario 1 (§1 of the paper): the most vital arc problem.

Which single link, if it fails, hurts a source-destination pair the most?
The classic formulation (Iwano & Katoh) needs one replacement-path
distance per candidate edge; with a SIEF index each candidate costs a
microsecond-scale query instead of a BFS.

The network here is the Gnutella-analogue P2P overlay from the benchmark
registry — exactly the kind of unstable graph the paper motivates (peers
drop connections all the time).

Run:  python examples/most_vital_arc.py
"""

from __future__ import annotations

import random
import time

from repro import SIEFBuilder, build_pll
from repro.analysis import most_vital_arc, rank_vital_arcs
from repro.bench.datasets import load_dataset
from repro.labeling.query import INF


def main() -> None:
    graph = load_dataset("gnutella")
    print(f"P2P overlay: {graph}")

    print("building PLL labeling + SIEF index for all failure cases ...")
    started = time.perf_counter()
    labeling = build_pll(graph)
    index, _report = SIEFBuilder(graph, labeling).build()
    print(f"  built in {time.perf_counter() - started:.1f} s\n")

    rng = random.Random(1)
    n = graph.num_vertices
    for _ in range(5):
        s, t = rng.randrange(n), rng.randrange(n)
        if s == t:
            continue
        started = time.perf_counter()
        result = most_vital_arc(graph, index, s, t)
        elapsed = (time.perf_counter() - started) * 1e3
        penalty = "cuts the pair off" if result.penalty == INF else (
            f"+{result.penalty} hops"
        )
        print(
            f"pair ({s:3d}, {t:3d}): base distance {result.base_distance}, "
            f"most vital arc {result.edge} ({penalty}) "
            f"[{elapsed:.1f} ms]"
        )

    # Full ranking for one pair: how concentrated is the risk?
    s, t = 0, n // 2
    ranked = rank_vital_arcs(graph, index, s, t)
    print(
        f"\nall {len(ranked)} shortest-path edges of pair ({s}, {t}), "
        "worst first:"
    )
    for r in ranked[:8]:
        detour = "inf" if r.replacement_distance == INF else (
            r.replacement_distance
        )
        print(f"  {r.edge}: replacement distance {detour}")


if __name__ == "__main__":
    main()
