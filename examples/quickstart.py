"""Quickstart: build a SIEF index and answer failure queries.

Walks through the whole pipeline on the paper's own running example
(Figure 1 / Table 1 of the SIEF paper), so every number printed here can
be checked against the publication.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Graph,
    SIEFBuilder,
    SIEFQueryEngine,
    build_pll,
    dist_query,
    INF,
)
from repro.order import make_ordering


def main() -> None:
    # The graph of Figure 1: 11 vertices, 16 edges.
    graph = Graph(
        11,
        [
            (0, 1), (0, 2), (0, 3), (0, 4), (0, 8),
            (1, 4), (1, 5),
            (2, 3), (2, 5),
            (3, 6), (3, 7),
            (4, 8),
            (6, 7), (6, 8), (6, 9),
            (9, 10),
        ],
    )
    print(f"graph: {graph}")

    # Step 1 - a well-ordered 2-hop labeling (PLL).  The identity order
    # reproduces the paper's Table 1 exactly; real deployments use the
    # default degree ordering for smaller labels.
    labeling = build_pll(graph, make_ordering(graph, "identity"))
    print(f"\nPLL labeling: {labeling.total_entries()} entries (Table 1)")
    for v in (0, 5, 8):
        pairs = [(e.hub, e.distance) for e in labeling.entries(v)]
        print(f"  L({v}) = {pairs}")

    # Static distance queries need only the labels (Equation 1).
    print(f"\nd(5, 6)  = {dist_query(labeling, 5, 6)}   (no failure)")

    # Step 2 - SIEF: one supplemental index per possible edge failure.
    index, report = SIEFBuilder(graph, labeling, algorithm="bfs_all").build()
    print(
        f"\nSIEF index: {index.num_cases} failure cases, "
        f"{index.total_supplemental_entries()} supplemental entries "
        f"(identify {report.identify_seconds * 1e3:.1f} ms, "
        f"relabel {report.relabel_seconds * 1e3:.1f} ms)"
    )

    # Step 3 - query with failures.  The engine routes each query
    # through the Section 4.4 case analysis.
    engine = SIEFQueryEngine(index)
    examples = [
        (2, 8, (0, 8)),   # the paper's Section 4.4 example: answer 3
        (5, 7, (0, 8)),   # unaffected pair: unchanged
        (0, 10, (6, 9)),  # bridge failure: disconnected
    ]
    print()
    for s, t, edge in examples:
        distance, case = engine.distance_with_case(s, t, edge)
        shown = "inf" if distance == INF else distance
        print(
            f"d(G - {edge}; {s}, {t}) = {shown}   "
            f"[{case.name.lower().replace('_', ' ')}]"
        )

    # The supplemental label behind the first answer (Figure 3/4).
    si = index.supplement(0, 8)
    print(f"\nsupplement for failed edge (0, 8): {si}")
    for vertex, sl in si.iter_labels():
        hubs = [
            (labeling.ordering.vertex(r), d) for r, d in sl.pairs()
        ]
        print(f"  SL({vertex}) = {hubs}")


if __name__ == "__main__":
    main()
