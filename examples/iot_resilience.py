"""Web-of-Things resilience monitoring (the paper's §1 motivation).

"Smart things are normally moving and their connectivity could be
intermittent" — an operator of such a network wants to know, *before*
links drop: which failures hurt, by how much, and can the dashboard
answer distance queries for the currently failed link instantly?

This example builds one SIEF index over an AS-like device topology and
then answers all of that: a Monte-Carlo resilience profile, the
worst-impact links, per-failure stretched distances, and the future-work
oracles for double failures and device (node) outages.

Run:  python examples/iot_resilience.py
"""

from __future__ import annotations

import random
import time

from repro import SIEFBuilder, DualFailureOracle, NodeFailureOracle
from repro.analysis import failure_impact_histogram, resilience_profile
from repro.bench.datasets import load_dataset
from repro.core.query import SIEFQueryEngine
from repro.labeling.query import INF


def main() -> None:
    graph = load_dataset("oregon")  # AS-like: hub core + stub devices
    print(f"device network: {graph}")

    started = time.perf_counter()
    index, report = SIEFBuilder(graph).build()
    print(
        f"SIEF over all {index.num_cases} possible link failures "
        f"built in {time.perf_counter() - started:.1f} s "
        f"(avg {report.avg_affected:.0f} devices affected per failure)\n"
    )

    # 1. How fragile is the network overall?
    profile = resilience_profile(index, num_queries=2000, seed=0)
    print("resilience profile (2,000 random pair x failure samples):")
    print(f"  unchanged routes:    {profile.unchanged:5d}")
    print(f"  stretched routes:    {profile.stretched:5d} "
          f"(mean stretch {profile.mean_stretch:.2f}x, "
          f"max {profile.max_stretch:.2f}x)")
    print(f"  disconnected routes: {profile.disconnected:5d} "
          f"({profile.disconnect_rate:.1%})\n")

    # 2. Which links matter most?  (Zero queries needed: the index
    #    already stores each failure's affected-device count.)
    print("highest-impact links (devices losing some distance):")
    for edge, impact in failure_impact_histogram(index, top=5):
        print(f"  link {edge}: {impact} devices affected")

    # 3. Live queries under an ongoing failure.
    engine = SIEFQueryEngine(index)
    rng = random.Random(8)
    edge = failure_impact_histogram(index, top=1)[0][0]
    print(f"\nlive queries while link {edge} is down:")
    for _ in range(4):
        s = rng.randrange(graph.num_vertices)
        t = rng.randrange(graph.num_vertices)
        d = engine.distance(s, t, edge)
        print(f"  d({s}, {t}) = {'unreachable' if d == INF else d}")

    # 4. Future-work oracles: double link failure and device outage.
    dual = DualFailureOracle(graph, index)
    edges = list(graph.edges())
    e1, e2 = rng.sample(edges, 2)
    s, t = 0, graph.num_vertices - 1
    print(
        f"\ndouble failure {e1} + {e2}: "
        f"d({s}, {t}) = {dual.distance(s, t, e1, e2)} "
        f"(index bound was tight for "
        f"{dual.tightness_rate:.0%} of calls so far)"
    )

    node = NodeFailureOracle(graph, index)
    hub = max(graph.vertices(), key=graph.degree)
    s = next(w for w in graph.vertices() if w != hub)
    t = next(
        w for w in reversed(graph.vertices()) if w not in (hub, s)
    )
    d = node.distance(s, t, hub)
    print(
        f"hub device {hub} (degree {graph.degree(hub)}) fails: "
        f"d({s}, {t}) = {'unreachable' if d == INF else d}"
    )


if __name__ == "__main__":
    main()
