"""Scenarios 2–3 (§1 of the paper): Vickrey pricing of road segments.

A road agency wants to know what each segment is *worth*: if drivers had
to avoid it, how much longer would their trips get (§1: "if tolls are
not charged appropriately and avoiding an expensive toll point causes
only a small detour, most drivers would take the detour").  That penalty
is exactly a SIEF query per (segment, trip) pair.

The network is a city-like grid with a river: two bridges connect the
halves, so bridge segments should price far above ordinary blocks.

Run:  python examples/road_pricing.py
"""

from __future__ import annotations

import random

from repro import Graph, SIEFBuilder
from repro.analysis import edge_worth, vickrey_prices

ROWS, COLS = 8, 14
RIVER_COL = 7          # vertical river between columns 6 and 7
BRIDGE_ROWS = (1, 6)   # the only two crossings


def build_city() -> Graph:
    """Grid street network with a river crossed by two bridges."""
    g = Graph(ROWS * COLS)

    def vid(r: int, c: int) -> int:
        return r * COLS + c

    for r in range(ROWS):
        for c in range(COLS):
            if c + 1 < COLS:
                crosses_river = c + 1 == RIVER_COL
                if not crosses_river or r in BRIDGE_ROWS:
                    g.add_edge(vid(r, c), vid(r, c + 1))
            if r + 1 < ROWS:
                g.add_edge(vid(r, c), vid(r + 1, c))
    return g


def main() -> None:
    city = build_city()
    print(f"street network: {city} (river at column {RIVER_COL}, "
          f"bridges in rows {BRIDGE_ROWS})")

    index, _ = SIEFBuilder(city).build()

    # Commuter demand: random west-side homes to east-side offices.
    rng = random.Random(4)
    west = [r * COLS + c for r in range(ROWS) for c in range(RIVER_COL)]
    east = [
        r * COLS + c for r in range(ROWS) for c in range(RIVER_COL, COLS)
    ]
    demands = [
        (rng.choice(west), rng.choice(east), rng.uniform(1.0, 5.0))
        for _ in range(60)
    ]

    bridges = [
        (r * COLS + RIVER_COL - 1, r * COLS + RIVER_COL)
        for r in BRIDGE_ROWS
    ]
    ordinary = [e for e in list(city.edges())[:6] if e not in bridges]

    prices = vickrey_prices(
        index, demands, bridges + ordinary, disconnect_penalty=1000.0
    )
    print("\nsegment prices (volume-weighted detour penalty):")
    for edge, price in sorted(prices.items(), key=lambda kv: -kv[1]):
        kind = "BRIDGE  " if edge in bridges else "street  "
        print(f"  {kind}{edge}: {price:10.1f}")

    # Zoom into one commuter's view of the north bridge.
    bridge = bridges[0]
    s, t = west[0], east[-1]
    worth = edge_worth(index, bridge, s, t)
    print(
        f"\ncommuter ({s} -> {t}): trip {worth.base_distance} blocks; "
        f"losing bridge {bridge} makes it "
        f"{worth.detour_distance} (penalty {worth.penalty})"
    )

    assert max(prices, key=prices.get) in bridges, (
        "bridges should price highest"
    )
    print("\nOK: the two bridges carry the highest Vickrey prices.")


if __name__ == "__main__":
    main()
