"""Ordering strategies.

All strategies return a :class:`~repro.order.ordering.VertexOrdering`
whose rank-0 vertex is the one PLL roots its first (unpruned) BFS at, so
"important" vertices must come first.  Ties are always broken by vertex id
to keep results deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.exceptions import ReproError
from repro.graph.traversal import UNREACHED, bfs_distances
from repro.order.ordering import VertexOrdering


def by_degree(graph) -> VertexOrdering:
    """Degree-descending order — the PLL/SIEF default.

    High-degree vertices cover many shortest paths, so ranking them first
    keeps labels (and supplemental labels) small.
    """
    vertices = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    return VertexOrdering(vertices)


def by_degree_neighborhood(graph) -> VertexOrdering:
    """Degree plus summed neighbor degree as tiebreak.

    A refinement of :func:`by_degree` that distinguishes equal-degree
    vertices by how well-connected their neighborhoods are.
    """
    score = [
        (graph.degree(v), sum(graph.degree(w) for w in graph.neighbors(v)))
        for v in graph.vertices()
    ]
    vertices = sorted(graph.vertices(), key=lambda v: (-score[v][0], -score[v][1], v))
    return VertexOrdering(vertices)


def by_closeness_estimate(graph, probes: int = 16, seed: int = 0) -> VertexOrdering:
    """Approximate-closeness order from a handful of BFS probes.

    Sums distances to ``probes`` random sources; small sums (central
    vertices) rank first.  Unreachable pairs contribute ``n`` so vertices
    in small components sink to the back.
    """
    n = graph.num_vertices
    if n == 0:
        return VertexOrdering([])
    rng = random.Random(seed)
    totals = [0] * n
    sources = [rng.randrange(n) for _ in range(min(probes, n))]
    for s in sources:
        for v, d in enumerate(bfs_distances(graph, s)):
            totals[v] += d if d != UNREACHED else n
    vertices = sorted(range(n), key=lambda v: (totals[v], -graph.degree(v), v))
    return VertexOrdering(vertices)


def identity_order(graph) -> VertexOrdering:
    """Vertices in id order — matches the paper's running example (Table 1)."""
    return VertexOrdering(list(graph.vertices()))


def random_order(graph, seed: Optional[int] = None) -> VertexOrdering:
    """Uniform random permutation (the ablation baseline)."""
    vertices = list(graph.vertices())
    random.Random(seed).shuffle(vertices)
    return VertexOrdering(vertices)


STRATEGIES: Dict[str, Callable] = {
    "degree": by_degree,
    "degree-neighborhood": by_degree_neighborhood,
    "closeness": by_closeness_estimate,
    "identity": identity_order,
    "random": random_order,
}
"""Registry of named strategies for the CLI and the ablation bench."""


def make_ordering(graph, strategy: str = "degree", **kwargs) -> VertexOrdering:
    """Build an ordering by strategy name (see :data:`STRATEGIES`)."""
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise ReproError(
            f"unknown ordering strategy {strategy!r}; "
            f"choose from {sorted(STRATEGIES)}"
        ) from None
    return fn(graph, **kwargs)
