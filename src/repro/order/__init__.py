"""Vertex orderings for well-ordered 2-hop labelings.

A *vertex ordering* ``σ`` assigns each vertex a rank; PLL processes
vertices in ascending rank and the resulting labeling is well-ordered with
respect to ``σ`` (Definition 1 of the paper).  Label sizes — and therefore
SIEF supplemental sizes — depend heavily on the ordering, so several
strategies are provided; *degree descending* is the paper-standard default.
"""

from repro.order.ordering import VertexOrdering
from repro.order.strategies import (
    by_degree,
    by_degree_neighborhood,
    by_closeness_estimate,
    identity_order,
    random_order,
    make_ordering,
    STRATEGIES,
)

__all__ = [
    "VertexOrdering",
    "by_degree",
    "by_degree_neighborhood",
    "by_closeness_estimate",
    "identity_order",
    "random_order",
    "make_ordering",
    "STRATEGIES",
]
