"""The :class:`VertexOrdering` bijection object.

Keeps both directions of the permutation — ``rank_of[v]`` (the paper's
``σ[v]``) and ``vertex_at[r]`` (the sequence ``<v_0, v_1, ...>``) — and
validates that they really are inverse bijections, because an ordering bug
silently breaks well-ordering and every theorem built on it.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.exceptions import ReproError


class VertexOrdering:
    """A bijection between vertices ``0..n-1`` and ranks ``0..n-1``.

    Parameters
    ----------
    vertex_at:
        The ordered vertex sequence; ``vertex_at[r]`` is the vertex with
        rank ``r``.  Must be a permutation of ``0..n-1``.
    """

    __slots__ = ("_vertex_at", "_rank_of", "_vertex_np", "_rank_np")

    def __init__(self, vertex_at: Sequence[int]) -> None:
        n = len(vertex_at)
        rank_of = [-1] * n
        for rank, v in enumerate(vertex_at):
            if not 0 <= v < n or rank_of[v] != -1:
                raise ReproError(
                    f"vertex_at is not a permutation of 0..{n - 1}: "
                    f"offending entry {v} at rank {rank}"
                )
            rank_of[v] = rank
        self._vertex_at: List[int] = list(vertex_at)
        self._rank_of: List[int] = rank_of
        self._vertex_np = None  # numpy mirrors, built lazily for batch paths
        self._rank_np = None

    def __len__(self) -> int:
        return len(self._vertex_at)

    def __iter__(self) -> Iterator[int]:
        """Iterate vertices in ascending rank (the paper's sequence σ)."""
        return iter(self._vertex_at)

    def rank(self, v: int) -> int:
        """The rank ``σ[v]`` of vertex ``v``."""
        return self._rank_of[v]

    def vertex(self, r: int) -> int:
        """The vertex with rank ``r``."""
        return self._vertex_at[r]

    def ranks(self) -> List[int]:
        """Copy of the full rank array (index = vertex id)."""
        return list(self._rank_of)

    def sequence(self) -> List[int]:
        """Copy of the ordered vertex sequence (index = rank)."""
        return list(self._vertex_at)

    def rank_array(self):
        """Read-only numpy view of the rank array (cached).

        ``rank_array()[v] == rank(v)``; the batch query paths use this to
        classify whole pair arrays in one vectorized comparison.
        """
        if self._rank_np is None:
            arr = np.asarray(self._rank_of, dtype=np.int64)
            arr.setflags(write=False)
            self._rank_np = arr
        return self._rank_np

    def vertex_array(self):
        """Read-only numpy view of the vertex sequence (cached)."""
        if self._vertex_np is None:
            arr = np.asarray(self._vertex_at, dtype=np.int64)
            arr.setflags(write=False)
            self._vertex_np = arr
        return self._vertex_np

    def precedes(self, u: int, v: int) -> bool:
        """Whether ``σ[u] < σ[v]``."""
        return self._rank_of[u] < self._rank_of[v]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexOrdering):
            return NotImplemented
        return self._vertex_at == other._vertex_at

    def __repr__(self) -> str:
        head = ", ".join(map(str, self._vertex_at[:8]))
        tail = ", ..." if len(self._vertex_at) > 8 else ""
        return f"VertexOrdering(<{head}{tail}>)"
