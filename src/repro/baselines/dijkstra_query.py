"""Weighted baseline: Dijkstra on ``G - e`` per query.

The weighted analogue of :class:`repro.baselines.bfs_query.BFSQueryBaseline`,
used as ground truth and latency baseline for the weighted SIEF extension.
"""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import EdgeNotFound
from repro.graph.traversal import dijkstra_distances
from repro.graph.weighted import WeightedGraph


class DijkstraQueryBaseline:
    """Answers weighted failure queries by running Dijkstra on demand."""

    __slots__ = ("wgraph",)

    def __init__(self, wgraph: WeightedGraph) -> None:
        self.wgraph = wgraph

    def distance(self, s: int, t: int, failed_edge: Tuple[int, int]) -> float:
        """``d_{G - e}(s, t)``; ``inf`` when the failure disconnects them."""
        u, v = failed_edge
        if not self.wgraph.has_edge(u, v):
            raise EdgeNotFound(u, v)
        return dijkstra_distances(self.wgraph, s, avoid=(u, v))[t]
