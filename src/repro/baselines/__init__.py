"""Baselines the paper compares SIEF against.

* :mod:`repro.baselines.bfs_query` — answer each failure query with a
  fresh BFS on ``G - e`` (the "BFS Query Time" column of Table 4).
* :mod:`repro.baselines.naive_rebuild` — rebuild a full PLL index per
  failure case (the "naive method" Figure 7 estimates; both the estimate
  and an actual rebuild are provided).
* :mod:`repro.baselines.dijkstra_query` — the weighted analogue of the
  BFS baseline, for the weighted extension.
"""

from repro.baselines.bfs_query import BFSQueryBaseline
from repro.baselines.naive_rebuild import (
    NaiveRebuildBaseline,
    estimate_naive_seconds,
)
from repro.baselines.dijkstra_query import DijkstraQueryBaseline

__all__ = [
    "BFSQueryBaseline",
    "NaiveRebuildBaseline",
    "estimate_naive_seconds",
    "DijkstraQueryBaseline",
]
