"""The paper's "naive method": one full PLL index per failure case.

Figure 7 uses an *estimate* — original indexing time × number of edges —
because actually materializing ``m`` complete labelings is exactly the
blow-up SIEF exists to avoid (105 MB vs 14 MB on Gnutella in §1).  This
module provides both that estimator and a real (small-graph) rebuild, so
tests can confirm the estimate's basis and benches can report it.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple, Union

from repro.graph.graph import Graph, normalize_edge
from repro.labeling.label import Labeling
from repro.labeling.pll import build_pll
from repro.labeling.query import dist_query
from repro.order.ordering import VertexOrdering

Edge = Tuple[int, int]
Distance = Union[int, float]


def estimate_naive_seconds(original_indexing_seconds: float, num_edges: int) -> float:
    """Figure 7's estimator: ``IT × m``.

    "The total labeling time of the naive method can be estimated by
    multiplying the total edge number ... with the index time of the
    original graph."
    """
    return original_indexing_seconds * num_edges


class NaiveRebuildBaseline:
    """Materializes a complete PLL labeling for each failure case.

    Only sensible on small graphs (storage is ``O(m)`` full labelings);
    the benchmark suite uses it on truncated edge samples to measure the
    per-case rebuild time that grounds the Figure 7 estimate.
    """

    def __init__(self, graph: Graph, ordering: Optional[VertexOrdering] = None) -> None:
        self.graph = graph
        self.ordering = ordering
        self._cases: Dict[Edge, Labeling] = {}
        self.total_entries = 0
        self.build_seconds = 0.0

    def build_case(self, u: int, v: int) -> Labeling:
        """Rebuild (and cache) the full labeling of ``G - (u, v)``."""
        key = normalize_edge(u, v)
        labeling = self._cases.get(key)
        if labeling is None:
            reduced = self.graph.without_edge(u, v)
            started = time.perf_counter()
            labeling = build_pll(reduced, self.ordering)
            self.build_seconds += time.perf_counter() - started
            self._cases[key] = labeling
            self.total_entries += labeling.total_entries()
        return labeling

    def build_all(self) -> None:
        """Rebuild every failure case (the naive method in full)."""
        for u, v in self.graph.edges():
            self.build_case(u, v)

    @property
    def num_cases(self) -> int:
        """Failure cases materialized so far."""
        return len(self._cases)

    def distance(self, s: int, t: int, failed_edge: Edge) -> Distance:
        """Query through the per-case labeling (building it if needed)."""
        labeling = self.build_case(*failed_edge)
        return dist_query(labeling, s, t)
