"""Index-free baseline: BFS on ``G - e`` per query.

This is the method SIEF's Table 4 compares query latency against — no
preprocessing, every query pays a traversal of (up to) the whole graph.
Both one-sided and bidirectional BFS are offered; the paper's baseline is
the one-sided variant, which is the default.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.exceptions import EdgeNotFound
from repro.graph.traversal import (
    UNREACHED,
    bfs_distance_between,
    bidirectional_bfs,
)
from repro.labeling.query import INF

Distance = Union[int, float]


class BFSQueryBaseline:
    """Answers failure queries by traversing the graph on demand."""

    __slots__ = ("graph", "bidirectional")

    def __init__(self, graph, bidirectional: bool = False) -> None:
        self.graph = graph
        self.bidirectional = bidirectional

    def distance(self, s: int, t: int, failed_edge: Tuple[int, int]) -> Distance:
        """``d_{G - e}(s, t)`` by BFS; :data:`INF` when disconnected.

        Raises :class:`EdgeNotFound` if ``failed_edge`` is not an edge of
        the graph, mirroring the SIEF engine's contract.
        """
        u, v = failed_edge
        if not self.graph.has_edge(u, v):
            raise EdgeNotFound(u, v)
        if self.bidirectional:
            d = bidirectional_bfs(self.graph, s, t, avoid=(u, v))
        else:
            d = bfs_distance_between(self.graph, s, t, avoid=(u, v))
        return d if d != UNREACHED else INF
