"""Incremental graph construction with duplicate tolerance and relabeling.

Real edge lists (SNAP-style files, scraped data) contain duplicate edges,
self loops, and sparse vertex ids.  :class:`GraphBuilder` absorbs all of
that: feed it raw pairs, then materialize a clean :class:`Graph` with dense
ids, keeping the id mapping for round trips.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph


class GraphBuilder:
    """Accumulates edges over arbitrary hashable vertex names.

    Unlike :class:`Graph`, the builder silently drops self loops and
    duplicate edges (counting them), which is the behaviour you want when
    ingesting messy real-world edge lists.
    """

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._names: List[Hashable] = []
        self._edges: Set[Tuple[int, int]] = set()
        self._weights: Dict[Tuple[int, int], float] = {}
        self.self_loops_dropped = 0
        self.duplicates_dropped = 0

    def vertex_id(self, name: Hashable) -> int:
        """Dense id for ``name``, allocating one if unseen."""
        vid = self._ids.get(name)
        if vid is None:
            vid = len(self._names)
            self._ids[name] = vid
            self._names.append(name)
        return vid

    def add_vertex(self, name: Hashable) -> int:
        """Ensure ``name`` exists as an (possibly isolated) vertex."""
        return self.vertex_id(name)

    def add_edge(self, a: Hashable, b: Hashable, weight: Optional[float] = None) -> None:
        """Record an undirected edge between two named vertices.

        Self loops and repeated edges are dropped (counted, not raised).
        For weighted use, the *first* weight seen for an edge wins.
        """
        u = self.vertex_id(a)
        v = self.vertex_id(b)
        if u == v:
            self.self_loops_dropped += 1
            return
        key = (u, v) if u < v else (v, u)
        if key in self._edges:
            self.duplicates_dropped += 1
            return
        self._edges.add(key)
        if weight is not None:
            if weight <= 0:
                raise GraphError(f"edge weight must be > 0, got {weight}")
            self._weights[key] = weight

    def add_edges(self, pairs: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Bulk :meth:`add_edge` over unweighted pairs."""
        for a, b in pairs:
            self.add_edge(a, b)

    @property
    def num_vertices(self) -> int:
        """Vertices allocated so far."""
        return len(self._names)

    @property
    def num_edges(self) -> int:
        """Distinct edges recorded so far."""
        return len(self._edges)

    def names(self) -> List[Hashable]:
        """Dense-id -> original-name mapping (index = id)."""
        return list(self._names)

    def build(self) -> Graph:
        """Materialize an unweighted :class:`Graph`."""
        g = Graph(len(self._names))
        for u, v in sorted(self._edges):
            g.add_edge(u, v)
        return g

    def build_weighted(self, default_weight: float = 1.0) -> WeightedGraph:
        """Materialize a :class:`WeightedGraph`.

        Edges recorded without a weight get ``default_weight``.
        """
        g = WeightedGraph(len(self._names))
        for u, v in sorted(self._edges):
            g.add_edge(u, v, self._weights.get((u, v), default_weight))
        return g
