"""Compressed sparse row (CSR) view of a graph.

An immutable numpy-backed adjacency useful for (a) memory-compact storage
of benchmark datasets and (b) handing graphs to vectorized analyses.  The
SIEF build loops stay on Python adjacency lists — per-edge graph deltas
don't fit an immutable CSR — but the CSR view is the serialization and
statistics workhorse.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import GraphError, VertexNotFound
from repro.graph.graph import Graph


class CSRGraph:
    """Immutable undirected graph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n+1``; neighbors of ``v`` live in
        ``indices[indptr[v]:indptr[v+1]]`` (sorted).
    indices:
        ``int32`` array of length ``2m``.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be 1-D arrays")
        if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphError("malformed indptr")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("indices out of vertex range")
        self.indptr = indptr
        self.indices = indices

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Snapshot a mutable :class:`Graph` into CSR form."""
        n = graph.num_vertices
        indptr = np.zeros(n + 1, dtype=np.int64)
        chunks: List[np.ndarray] = []
        for v in range(n):
            nbrs = graph.neighbors(v)
            indptr[v + 1] = indptr[v] + len(nbrs)
            chunks.append(np.asarray(nbrs, dtype=np.int32))
        indices = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int32)
        return cls(indptr, indices)

    def to_graph(self) -> Graph:
        """Expand back into a mutable :class:`Graph`."""
        g = Graph(self.num_vertices)
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    g.add_edge(u, int(v))
        return g

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return len(self.indices) // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v``."""
        if not 0 <= v < self.num_vertices:
            raise VertexNotFound(v, self.num_vertices)
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        if not 0 <= v < self.num_vertices:
            raise VertexNotFound(v, self.num_vertices)
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """All degrees as one array."""
        return np.diff(self.indptr)

    def adjacency(self) -> List[List[int]]:
        """Materialize Python adjacency lists (for traversal interop)."""
        return [
            [int(w) for w in self.indices[self.indptr[v] : self.indptr[v + 1]]]
            for v in range(self.num_vertices)
        ]

    def to_adjacency(self) -> List[List[int]]:
        """Python adjacency lists via one bulk ``tolist`` + ``n`` slices.

        Equivalent to :meth:`adjacency` but an order of magnitude faster
        on large graphs (no per-element ``int()`` boxing); the produced
        lists are fresh, sorted and symmetric, i.e. valid input for
        :meth:`repro.graph.graph.Graph.from_sorted_adjacency` — the
        shared-memory workers' zero-copy → Graph path.
        """
        flat = self.indices.tolist()
        ptr = self.indptr.tolist()
        return [flat[ptr[v] : ptr[v + 1]] for v in range(self.num_vertices)]

    def adjacency_flat(self) -> Tuple[List[int], List[int]]:
        """The CSR pair as two flat Python-int lists ``(indptr, indices)``.

        CPython traversal loops (PLL's pruned BFS) slice the flat
        neighbor stream directly — one contiguous list instead of ``n``
        list objects, and native ints instead of numpy scalar boxing.
        """
        return self.indptr.tolist(), self.indices.tolist()

    def nbytes(self) -> int:
        """Bytes used by the two index arrays."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return bool(
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"
