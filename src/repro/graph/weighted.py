"""Undirected graph with positive edge weights.

Used by the weighted extension of PLL (pruned Dijkstra) and the weighted
SIEF variant.  Weights must be strictly positive — shortest-path labelings
are undefined with zero or negative weights.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import EdgeNotFound, GraphError, VertexNotFound
from repro.graph.graph import normalize_edge

WeightedEdge = Tuple[int, int, float]


class WeightedGraph:
    """A simple undirected graph with positive real edge weights.

    The adjacency structure stores ``(neighbor, weight)`` pairs sorted by
    neighbor id, mirroring :class:`repro.graph.graph.Graph` so traversal
    code can treat both uniformly where weights are irrelevant.
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, num_vertices: int, edges: Iterable[WeightedEdge] = ()) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._adj: List[List[Tuple[int, float]]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0
        for u, v, w in edges:
            self.add_edge(u, v, w)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> range:
        """All vertex ids as a range."""
        return range(len(self._adj))

    def neighbors(self, v: int) -> Sequence[Tuple[int, float]]:
        """Sorted ``(neighbor, weight)`` pairs of ``v`` (do not mutate)."""
        self._check_vertex(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate each edge once as ``(u, v, weight)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs:
                if u < v:
                    yield (u, v, w)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return any(nbr == v for nbr, _ in self._adj[u])

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises :class:`EdgeNotFound` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        for nbr, w in self._adj[u]:
            if nbr == v:
                return w
        raise EdgeNotFound(u, v)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Insert edge ``(u, v)`` with the given positive weight."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop ({u}, {u}) not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be > 0, got {weight}")
        if self.has_edge(u, v):
            raise GraphError(f"duplicate edge ({u}, {v})")
        _insert_pair(self._adj[u], (v, weight))
        _insert_pair(self._adj[v], (u, weight))
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``; raises :class:`EdgeNotFound` if absent."""
        if not self.has_edge(u, v):
            raise EdgeNotFound(u, v)
        self._adj[u] = [(n, w) for n, w in self._adj[u] if n != v]
        self._adj[v] = [(n, w) for n, w in self._adj[v] if n != u]
        self._num_edges -= 1

    def copy(self) -> "WeightedGraph":
        """Deep copy of this graph."""
        g = WeightedGraph(self.num_vertices)
        g._adj = [list(nbrs) for nbrs in self._adj]
        g._num_edges = self._num_edges
        return g

    def without_edge(self, u: int, v: int) -> "WeightedGraph":
        """Copy with edge ``(u, v)`` removed."""
        g = self.copy()
        g.remove_edge(u, v)
        return g

    def to_unweighted(self):
        """Drop weights, returning a plain :class:`~repro.graph.graph.Graph`."""
        from repro.graph.graph import Graph

        g = Graph(self.num_vertices)
        for u, v, _ in self.edges():
            g.add_edge(u, v)
        return g

    @classmethod
    def from_unweighted(cls, graph, weight: float = 1.0) -> "WeightedGraph":
        """Lift an unweighted graph to uniform weights."""
        g = cls(graph.num_vertices)
        for u, v in graph.edges():
            g.add_edge(u, v, weight)
        return g

    def edge_weights(self) -> Dict[Tuple[int, int], float]:
        """Mapping of canonical edges to weights."""
        return {normalize_edge(u, v): w for u, v, w in self.edges()}

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise VertexNotFound(v, len(self._adj))


def _insert_pair(lst: List[Tuple[int, float]], pair: Tuple[int, float]) -> None:
    bisect.insort(lst, pair)
