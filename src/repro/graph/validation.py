"""Structural invariant checks for graph objects.

Used by tests and by the CLI's ``validate`` command; cheap enough to run
on every benchmark dataset before indexing, so a corrupt generator or a
bad edge-list file fails loudly instead of producing a silently wrong
labeling.
"""

from __future__ import annotations

from typing import List

from repro.graph.graph import Graph


def validate_graph(graph: Graph) -> List[str]:
    """Return a list of invariant violations (empty == healthy).

    Checks symmetry of the adjacency structure, sortedness, absence of
    self loops and duplicates, and the edge-count bookkeeping.
    """
    problems: List[str] = []
    adj = graph.adjacency()
    n = len(adj)
    half_edges = 0
    for v in range(n):
        nbrs = adj[v]
        half_edges += len(nbrs)
        if any(nbrs[i] >= nbrs[i + 1] for i in range(len(nbrs) - 1)):
            problems.append(f"adjacency of {v} not strictly sorted: {nbrs}")
        if v in nbrs:
            problems.append(f"self loop at {v}")
        for w in nbrs:
            if not 0 <= w < n:
                problems.append(f"neighbor {w} of {v} out of range")
            elif v not in adj[w]:
                problems.append(f"asymmetric edge ({v}, {w})")
    if half_edges != 2 * graph.num_edges:
        problems.append(
            f"edge count mismatch: {half_edges} adjacency entries "
            f"vs num_edges={graph.num_edges}"
        )
    return problems


def assert_valid(graph: Graph) -> None:
    """Raise ``AssertionError`` with all violations if the graph is broken."""
    problems = validate_graph(graph)
    if problems:
        raise AssertionError("invalid graph:\n  " + "\n  ".join(problems))
