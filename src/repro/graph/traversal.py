"""Traversal primitives: BFS variants and Dijkstra.

These are the hot loops of the whole library — PLL construction, affected
vertex identification, and both SIEF relabeling algorithms are all BFS at
heart.  The functions therefore work directly on the raw adjacency
structure (``graph.adjacency()``) and use flat Python lists for distances,
which profiling shows beats dict-based frontiers by a wide margin in
CPython.

Convention: distance vectors are lists of ints where ``-1`` means
"unreachable" (:data:`UNREACHED`).  Query-level code translates that to
``math.inf``.

The *vectorized* counterparts — level-synchronous frontier kernels over
CSR numpy arrays, including the bit-parallel multi-root sweep the batched
construction path runs — live in :mod:`repro.graph.frontier` and are
re-exported here (:func:`bfs_distances_csr`, :func:`bfs_bitparallel_csr`,
:func:`edge_positions`) so traversal stays the single import point for
BFS machinery.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.frontier import (  # noqa: F401  (re-exports)
    bfs_bitparallel_csr,
    bfs_distances_csr,
    edge_positions,
)

UNREACHED = -1
"""Sentinel distance for vertices a traversal never reached."""


def _adjacency(graph) -> Sequence[Sequence[int]]:
    """Accept either a Graph or a raw adjacency list-of-lists."""
    adjacency = getattr(graph, "adjacency", None)
    if adjacency is not None:
        return adjacency()
    return graph


def bfs_distances(graph, source: int, out: Optional[List[int]] = None) -> List[int]:
    """Distances from ``source`` to every vertex (``-1`` if unreachable).

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.graph.Graph` or raw adjacency list.
    source:
        Start vertex.
    out:
        Optional preallocated list of length ``n`` to fill and return;
        reusing one buffer across many BFS calls avoids reallocation in
        builder loops.
    """
    adj = _adjacency(graph)
    n = len(adj)
    if out is None:
        dist = [UNREACHED] * n
    else:
        dist = out
        for i in range(n):
            dist[i] = UNREACHED
    dist[source] = 0
    queue = deque((source,))
    while queue:
        v = queue.popleft()
        d = dist[v] + 1
        for w in adj[v]:
            if dist[w] == UNREACHED:
                dist[w] = d
                queue.append(w)
    return dist


def bfs_distances_avoiding_edge(
    graph,
    source: int,
    avoid: Tuple[int, int],
    out: Optional[List[int]] = None,
) -> List[int]:
    """Distances from ``source`` in ``G - avoid`` without copying the graph.

    The single skipped edge is tested inline during expansion, so building
    a supplemental index for each of ``m`` failure cases never materializes
    ``m`` graph copies.
    """
    adj = _adjacency(graph)
    n = len(adj)
    a, b = avoid
    if out is None:
        dist = [UNREACHED] * n
    else:
        dist = out
        for i in range(n):
            dist[i] = UNREACHED
    dist[source] = 0
    queue = deque((source,))
    while queue:
        v = queue.popleft()
        d = dist[v] + 1
        if v == a or v == b:
            skip = b if v == a else a
            for w in adj[v]:
                if w != skip and dist[w] == UNREACHED:
                    dist[w] = d
                    queue.append(w)
        else:
            for w in adj[v]:
                if dist[w] == UNREACHED:
                    dist[w] = d
                    queue.append(w)
    return dist


def bfs_distance_between(
    graph,
    source: int,
    target: int,
    avoid: Optional[Tuple[int, int]] = None,
) -> int:
    """Distance between two vertices, optionally avoiding one edge.

    Stops as soon as ``target`` is settled.  Returns ``-1`` if
    disconnected.  This is the paper's "BFS query" baseline primitive.
    """
    if source == target:
        return 0
    adj = _adjacency(graph)
    n = len(adj)
    a, b = avoid if avoid is not None else (-1, -1)
    dist = [UNREACHED] * n
    dist[source] = 0
    queue = deque((source,))
    while queue:
        v = queue.popleft()
        d = dist[v] + 1
        for w in adj[v]:
            if (v == a and w == b) or (v == b and w == a):
                continue
            if dist[w] == UNREACHED:
                if w == target:
                    return d
                dist[w] = d
                queue.append(w)
    return UNREACHED


def bidirectional_bfs(
    graph,
    source: int,
    target: int,
    avoid: Optional[Tuple[int, int]] = None,
) -> int:
    """Distance via alternating BFS from both endpoints.

    Typically explores far fewer vertices than one-sided BFS on
    small-diameter graphs; used as a faster online baseline.  Returns
    ``-1`` when disconnected.
    """
    if source == target:
        return 0
    adj = _adjacency(graph)
    a, b = avoid if avoid is not None else (-1, -1)
    dist_s: Dict[int, int] = {source: 0}
    dist_t: Dict[int, int] = {target: 0}
    frontier_s = [source]
    frontier_t = [target]
    best = UNREACHED
    while frontier_s and frontier_t:
        # Expand the smaller frontier.
        if len(frontier_s) <= len(frontier_t):
            frontier, dist_this, dist_other = frontier_s, dist_s, dist_t
            forward = True
        else:
            frontier, dist_this, dist_other = frontier_t, dist_t, dist_s
            forward = False
        next_frontier: List[int] = []
        for v in frontier:
            d = dist_this[v] + 1
            for w in adj[v]:
                if (v == a and w == b) or (v == b and w == a):
                    continue
                if w in dist_this:
                    continue
                if w in dist_other:
                    total = d + dist_other[w]
                    if best == UNREACHED or total < best:
                        best = total
                dist_this[w] = d
                next_frontier.append(w)
        if forward:
            frontier_s = next_frontier
        else:
            frontier_t = next_frontier
        if best != UNREACHED:
            # One more level could still shorten via a meeting point at the
            # current depth, but BFS level arithmetic bounds the answer:
            # any meeting found later has total >= current best.
            depth = min(dist_s[f] for f in frontier_s) if frontier_s else 0
            depth += min(dist_t[f] for f in frontier_t) if frontier_t else 0
            if depth + 2 > best:
                return best
    return best


def bfs_tree(graph, source: int) -> List[int]:
    """BFS parents from ``source`` (``-1`` for the root and unreachables)."""
    adj = _adjacency(graph)
    n = len(adj)
    parent = [UNREACHED] * n
    seen = [False] * n
    seen[source] = True
    queue = deque((source,))
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if not seen[w]:
                seen[w] = True
                parent[w] = v
                queue.append(w)
    return parent


def shortest_path(graph, source: int, target: int, avoid: Optional[Tuple[int, int]] = None) -> Optional[List[int]]:
    """One shortest path as a vertex list, or ``None`` if disconnected."""
    if source == target:
        return [source]
    adj = _adjacency(graph)
    n = len(adj)
    a, b = avoid if avoid is not None else (-1, -1)
    parent = [UNREACHED] * n
    seen = [False] * n
    seen[source] = True
    queue = deque((source,))
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if (v == a and w == b) or (v == b and w == a):
                continue
            if not seen[w]:
                seen[w] = True
                parent[w] = v
                if w == target:
                    path = [w]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(w)
    return None


def dijkstra_distances(
    wgraph,
    source: int,
    avoid: Optional[Tuple[int, int]] = None,
) -> List[float]:
    """Dijkstra distances on a :class:`WeightedGraph` (``inf`` if unreachable).

    ``avoid`` skips one undirected edge inline, mirroring
    :func:`bfs_distances_avoiding_edge` for the weighted SIEF variant.
    """
    n = wgraph.num_vertices
    a, b = avoid if avoid is not None else (-1, -1)
    dist = [float("inf")] * n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for w, weight in wgraph.neighbors(v):
            if (v == a and w == b) or (v == b and w == a):
                continue
            nd = d + weight
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def eccentricity(graph, source: int) -> int:
    """Largest finite BFS distance from ``source``."""
    dist = bfs_distances(graph, source)
    return max((d for d in dist if d != UNREACHED), default=0)
