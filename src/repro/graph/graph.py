"""Undirected, unweighted simple graph over integer vertex ids.

The paper (and PLL before it) works on unweighted, undirected graphs with
vertices identified by dense integers, so that is what :class:`Graph`
models: adjacency lists indexed by vertex id, no self loops, no parallel
edges.  The class is deliberately small — algorithms live in sibling
modules (:mod:`repro.graph.traversal`, :mod:`repro.graph.components`) and
operate on any object exposing ``num_vertices`` and ``neighbors``.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import EdgeNotFound, GraphError, VertexNotFound

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """A simple undirected, unweighted graph on vertices ``0..n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0..num_vertices-1``.
    edges:
        Optional iterable of ``(u, v)`` pairs to add on construction.

    Notes
    -----
    Self loops and duplicate edges are rejected at insertion time, keeping
    the invariant that adjacency lists contain each neighbor exactly once.
    Adjacency lists are kept **sorted** so traversal order — and therefore
    every labeling built on top — is deterministic.
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._adj: List[List[int]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    @classmethod
    def from_sorted_adjacency(cls, adjacency: List[List[int]]) -> "Graph":
        """Adopt a prebuilt adjacency structure without per-edge insertion.

        ``adjacency[v]`` must already be the sorted, duplicate-free
        neighbor list of ``v`` and symmetric (``u in adjacency[v]`` iff
        ``v in adjacency[u]``) — exactly what
        :meth:`repro.graph.csr.CSRGraph.to_adjacency` produces.  The
        lists are adopted, not copied; the caller must not alias them.
        Used by shared-memory workers to rebuild a ``Graph`` from CSR
        arrays in O(n) list slices instead of O(m log d) insertions.
        """
        g = cls(0)
        g._adj = adjacency
        g._num_edges = sum(len(nbrs) for nbrs in adjacency) // 2
        return g

    # -- basic accessors -------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> range:
        """All vertex ids as a range."""
        return range(len(self._adj))

    def neighbors(self, v: int) -> Sequence[int]:
        """Sorted neighbor list of ``v`` (do not mutate)."""
        self._check_vertex(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def adjacency(self) -> List[List[int]]:
        """The raw adjacency structure (``adjacency()[v]`` is sorted).

        Exposed for traversal/labeling hot loops that iterate millions of
        neighbor lists; treat the returned lists as read-only.
        """
        return self._adj

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        a, b = (u, v) if len(self._adj[u]) <= len(self._adj[v]) else (v, u)
        return _sorted_contains(self._adj[a], b)

    # -- mutation ---------------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``(u, v)``.

        Raises
        ------
        GraphError
            If the edge is a self loop or already present.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop ({u}, {u}) not allowed")
        if self.has_edge(u, v):
            raise GraphError(f"duplicate edge ({u}, {v})")
        _sorted_insert(self._adj[u], v)
        _sorted_insert(self._adj[v], u)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``(u, v)``.

        Raises
        ------
        EdgeNotFound
            If the edge is not in the graph.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v or not self.has_edge(u, v):
            raise EdgeNotFound(u, v)
        _sorted_remove(self._adj[u], v)
        _sorted_remove(self._adj[v], u)
        self._num_edges -= 1

    # -- derived views ----------------------------------------------------

    def copy(self) -> "Graph":
        """Deep copy of this graph."""
        g = Graph(self.num_vertices)
        g._adj = [list(nbrs) for nbrs in self._adj]
        g._num_edges = self._num_edges
        return g

    def without_edge(self, u: int, v: int) -> "Graph":
        """Copy of the graph with edge ``(u, v)`` removed (``G - (u,v)``)."""
        g = self.copy()
        g.remove_edge(u, v)
        return g

    def subgraph(self, keep: Iterable[int]) -> Tuple["Graph", List[int]]:
        """Induced subgraph on ``keep``.

        Returns the subgraph with vertices relabeled to ``0..k-1`` plus the
        list mapping new ids back to original ids.
        """
        old_ids = sorted(set(keep))
        for v in old_ids:
            self._check_vertex(v)
        new_id = {old: new for new, old in enumerate(old_ids)}
        g = Graph(len(old_ids))
        for old in old_ids:
            for w in self._adj[old]:
                if w in new_id and old < w:
                    g.add_edge(new_id[old], new_id[w])
        return g, old_ids

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:  # graphs are mutable
        raise TypeError("Graph is unhashable")

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    # -- internals ---------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise VertexNotFound(v, len(self._adj))


def _sorted_contains(lst: List[int], x: int) -> bool:
    i = bisect.bisect_left(lst, x)
    return i < len(lst) and lst[i] == x


def _sorted_insert(lst: List[int], x: int) -> None:
    bisect.insort(lst, x)


def _sorted_remove(lst: List[int], x: int) -> None:
    i = bisect.bisect_left(lst, x)
    if i < len(lst) and lst[i] == x:
        del lst[i]
    else:  # pragma: no cover - guarded by has_edge in callers
        raise ValueError(f"{x} not in list")
