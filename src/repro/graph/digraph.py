"""Directed, unweighted simple graph.

Supports the directed extension of PLL (:mod:`repro.labeling.pll_directed`)
where each vertex gets an *in* label and an *out* label.  The SIEF paper
evaluates undirected graphs only, so this type exists for the documented
"can be extended to directed graphs" claim, not for the benchmark suite.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import EdgeNotFound, GraphError, VertexNotFound

Arc = Tuple[int, int]


class DiGraph:
    """A simple directed, unweighted graph on vertices ``0..n-1``.

    Both out-adjacency and in-adjacency are maintained (sorted), because
    directed 2-hop labeling needs forward *and* backward BFS.
    """

    __slots__ = ("_out", "_in", "_num_arcs")

    def __init__(self, num_vertices: int, arcs: Iterable[Arc] = ()) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._out: List[List[int]] = [[] for _ in range(num_vertices)]
        self._in: List[List[int]] = [[] for _ in range(num_vertices)]
        self._num_arcs = 0
        for u, v in arcs:
            self.add_arc(u, v)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._out)

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs."""
        return self._num_arcs

    def vertices(self) -> range:
        """All vertex ids as a range."""
        return range(len(self._out))

    def successors(self, v: int) -> Sequence[int]:
        """Sorted out-neighbors of ``v``."""
        self._check_vertex(v)
        return self._out[v]

    def predecessors(self, v: int) -> Sequence[int]:
        """Sorted in-neighbors of ``v``."""
        self._check_vertex(v)
        return self._in[v]

    def out_degree(self, v: int) -> int:
        """Number of arcs leaving ``v``."""
        self._check_vertex(v)
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        """Number of arcs entering ``v``."""
        self._check_vertex(v)
        return len(self._in[v])

    def arcs(self) -> Iterator[Arc]:
        """Iterate all arcs as ``(tail, head)``."""
        for u, heads in enumerate(self._out):
            for v in heads:
                yield (u, v)

    def has_arc(self, u: int, v: int) -> bool:
        """Whether arc ``u -> v`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return _sorted_contains(self._out[u], v)

    def add_arc(self, u: int, v: int) -> None:
        """Insert arc ``u -> v``; rejects self loops and duplicates."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop ({u}, {u}) not allowed")
        if self.has_arc(u, v):
            raise GraphError(f"duplicate arc ({u}, {v})")
        _sorted_insert(self._out[u], v)
        _sorted_insert(self._in[v], u)
        self._num_arcs += 1

    def remove_arc(self, u: int, v: int) -> None:
        """Delete arc ``u -> v``; raises :class:`EdgeNotFound` if absent."""
        if not self.has_arc(u, v):
            raise EdgeNotFound(u, v)
        self._out[u].remove(v)
        self._in[v].remove(u)
        self._num_arcs -= 1

    def reverse(self) -> "DiGraph":
        """Graph with every arc flipped."""
        g = DiGraph(self.num_vertices)
        g._out = [list(x) for x in self._in]
        g._in = [list(x) for x in self._out]
        g._num_arcs = self._num_arcs
        return g

    def to_undirected(self):
        """Forget directions (arcs in both directions collapse to one edge)."""
        from repro.graph.graph import Graph

        g = Graph(self.num_vertices)
        for u, v in self.arcs():
            if not g.has_edge(u, v):
                g.add_edge(u, v)
        return g

    def __repr__(self) -> str:
        return f"DiGraph(n={self.num_vertices}, arcs={self.num_arcs})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._out):
            raise VertexNotFound(v, len(self._out))


def _sorted_contains(lst: List[int], x: int) -> bool:
    i = bisect.bisect_left(lst, x)
    return i < len(lst) and lst[i] == x


def _sorted_insert(lst: List[int], x: int) -> None:
    bisect.insort(lst, x)
