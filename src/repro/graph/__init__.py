"""Graph substrate: graph types, construction, I/O, generators, traversal.

This subpackage is the foundation everything else builds on.  The central
type is :class:`~repro.graph.graph.Graph`, a simple undirected, unweighted
graph over contiguous integer vertex ids ``0..n-1`` stored as adjacency
lists.  Weighted and directed variants live alongside it, together with a
compact CSR view, deterministic synthetic generators used by the benchmark
suite, and the traversal primitives (BFS, Dijkstra) that both the PLL
labeling and the SIEF construction algorithms rely on.
"""

from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph
from repro.graph.digraph import DiGraph
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_distances_avoiding_edge,
    bfs_distance_between,
    bidirectional_bfs,
    dijkstra_distances,
)
from repro.graph.components import connected_components, is_connected, bridges
from repro.graph import generators
from repro.graph import io
from repro.graph.stats import GraphStats, compute_stats

__all__ = [
    "Graph",
    "WeightedGraph",
    "DiGraph",
    "GraphBuilder",
    "CSRGraph",
    "bfs_distances",
    "bfs_distances_avoiding_edge",
    "bfs_distance_between",
    "bidirectional_bfs",
    "dijkstra_distances",
    "connected_components",
    "is_connected",
    "bridges",
    "generators",
    "io",
    "GraphStats",
    "compute_stats",
]
