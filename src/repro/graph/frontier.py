"""Vectorized frontier BFS kernels over frozen CSR adjacency arrays.

The scalar traversals in :mod:`repro.graph.traversal` walk Python
adjacency lists one vertex at a time — right for tiny graphs and for
early-terminating searches, but the construction pipeline (IDENTIFY's
four full BFS passes per failure case, RELABEL's BFS per affected hub)
runs millions of them.  These kernels process a whole BFS *level* per
step instead: the frontier is a vertex array, neighbor expansion is one
fancy-indexed gather of the flat CSR ``indices`` stream, and visited
bookkeeping is a boolean scatter — so the per-vertex interpreter cost
disappears and numpy streams the adjacency at memory bandwidth.

Three kernels, one storage convention (``indptr``/``indices`` exactly as
in :class:`repro.graph.csr.CSRGraph`; distances are ``int32`` with
``-1`` = unreached, matching :data:`repro.graph.traversal.UNREACHED`):

* :func:`bfs_distances_csr` — single-source level-synchronous BFS, with
  optional **edge masking** (run on ``G - (u, v)`` without materializing
  a new graph: the failed edge's two flat positions are dropped from
  every gather) and an optional **allowed mask** (BFS restricted to a
  vertex subset, which is how IDENTIFY grows an affected side).
* :func:`bfs_bitparallel_csr` — up to 64 BFS roots per sweep packed
  into ``uint64`` visited bitmasks (Akiba-style bit-parallel batching):
  one level expands *all* roots' frontiers at once, OR-merging root
  bits per target with a segmented ``bitwise_or.reduceat``.  Supports
  **per-root edge masks** (each root may avoid its own failed edge) and
  an optional ``needed`` bitmask for early exit once every requested
  ``(root, target)`` distance is known.
* :func:`edge_positions` — the two flat positions of an undirected edge
  inside ``indices``, i.e. the precomputed input of the edge masking.

All kernels are exact: for every root the produced distance vector is
bit-identical to the scalar BFS (asserted by the parity suites in
``tests/test_frontier_kernels.py``).

Both BFS entry points dispatch through :mod:`repro.kernels`: when an
accelerated tier (numba or the self-compiled C extension) is available
and selected, the level loop runs compiled and the numpy bodies below
become the always-available fallback.  The compiled kernels are
bit-identical by contract — same distances, same settlement counts —
so callers cannot observe the tier except through speed and the
``kernels.*`` metrics counters.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro import kernels as _kernels
from repro.exceptions import GraphError
from repro.obs import hooks as _obs
from repro.obs.metrics import SIZE_EDGES

UNREACHED = -1
"""Sentinel distance, identical to the scalar traversal convention."""

_ONE = np.uint64(1)
_ZERO = np.uint64(0)

WORD_BITS = 64
"""Roots packed per bit-parallel sweep (one ``uint64`` lane each)."""


def edge_positions(
    indptr: np.ndarray, indices: np.ndarray, u: int, v: int
) -> Tuple[int, int]:
    """Flat positions of the directed entries ``u->v`` and ``v->u``.

    The CSR neighbor slices are sorted, so each lookup is one binary
    search.  Raises :class:`GraphError` when the edge is absent —
    callers mask *existing* failed edges only.
    """
    pu = int(indptr[u]) + int(
        np.searchsorted(indices[indptr[u] : indptr[u + 1]], v)
    )
    pv = int(indptr[v]) + int(
        np.searchsorted(indices[indptr[v] : indptr[v + 1]], u)
    )
    if (
        pu >= int(indptr[u + 1])
        or indices[pu] != v
        or pv >= int(indptr[v + 1])
        or indices[pv] != u
    ):
        raise GraphError(f"edge ({u}, {v}) not present in CSR adjacency")
    return pu, pv


def _expand(
    indptr: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat ``indices`` positions of every neighbor of ``frontier``.

    Returns ``(pos, counts)`` where ``pos`` walks each frontier vertex's
    neighbor range in order and ``counts`` is the per-vertex range
    length (callers repeat per-vertex payloads with it).
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), counts
    cum = np.zeros(len(frontier) + 1, dtype=np.int64)
    np.cumsum(counts, out=cum[1:])
    pos = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1] - starts, counts)
    return pos, counts


def bfs_distances_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    source: int,
    avoid_positions: Optional[Tuple[int, int]] = None,
    allowed: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Level-synchronous BFS distances from ``source`` (``-1`` unreached).

    Parameters
    ----------
    indptr, indices:
        CSR adjacency (``int64`` offsets, ``int32`` sorted neighbors).
    source:
        Start vertex; always reported at distance 0, even when
        ``allowed`` excludes it (mirroring the scalar side-growing BFS,
        whose root is a member by definition).
    avoid_positions:
        Optional ``(pos_uv, pos_vu)`` from :func:`edge_positions`; those
        two directed entries are skipped in every expansion, giving BFS
        on ``G - (u, v)`` with zero graph copying.
    allowed:
        Optional boolean mask of length ``n``; vertices with
        ``allowed[w] == False`` are never entered (their neighbors are
        not explored either).
    out:
        Optional preallocated ``int32`` array of length ``n`` to fill
        and return, mirroring the scalar kernel's reuse convention.
    """
    n = len(indptr) - 1
    if out is None:
        dist = np.full(n, UNREACHED, dtype=np.int32)
    else:
        dist = out
        dist[:] = UNREACHED
    dist[source] = 0
    reg = _obs.registry
    if reg is not None:
        reg.counter("bfs.vectorized_runs").inc()
    tier, kern = _kernels.resolve("bfs")
    if kern is not None:
        a0, a1 = (-1, -1) if avoid_positions is None else avoid_positions
        kern(indptr, indices, int(source), int(a0), int(a1), allowed, dist)
        if reg is not None:
            reg.counter(f"kernels.bfs.{tier}").inc()
        return dist
    if reg is not None:
        frontier_hist = reg.histogram("bfs.frontier_size", SIZE_EDGES)
    frontier = np.array([source], dtype=np.int64)
    unvisited = np.ones(n, dtype=bool)
    unvisited[source] = False
    if allowed is not None:
        # The root is explored regardless; every other entry obeys the mask.
        unvisited &= allowed
    nxt = np.zeros(n, dtype=bool)
    level = 0
    while frontier.size:
        level += 1
        pos, _counts = _expand(indptr, frontier)
        if pos.size == 0:
            break
        if avoid_positions is not None:
            keep = (pos != avoid_positions[0]) & (pos != avoid_positions[1])
            pos = pos[keep]
        nxt[indices[pos]] = True
        nxt &= unvisited
        frontier = np.flatnonzero(nxt)
        if frontier.size == 0:
            break
        dist[frontier] = level
        unvisited[frontier] = False
        nxt[frontier] = False
        if reg is not None:
            frontier_hist.observe(frontier.size)
    return dist


def _scatter_bits(
    vertices: np.ndarray, bits: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """OR-merge per-vertex bitmasks: ``(unique vertices, merged bits)``.

    ``vertices`` may repeat (several roots reaching the same target in
    one level); entries are sorted by vertex and merged with a segmented
    ``bitwise_or.reduceat`` — the vectorized replacement for the
    ``visited[w] |= bit`` inner loop of a scalar multi-root BFS.
    """
    order = np.argsort(vertices, kind="stable")
    vs = vertices[order]
    bs = bits[order]
    seg = np.flatnonzero(np.r_[True, vs[1:] != vs[:-1]])
    return vs[seg], np.bitwise_or.reduceat(bs, seg)


def _record_level(
    dist: np.ndarray, vs: np.ndarray, new: np.ndarray, level: int
) -> int:
    """Write ``level`` into ``dist[root, v]`` for every newly set bit.

    Unpacks the ``uint64`` lane masks into a ``(len(vs), 64)`` bit
    matrix in one ``unpackbits`` call, so the cost per level is a few
    array ops instead of one scan per root.  Returns the number of
    ``(root, vertex)`` settlements (the machine-independent "expanded"
    counter of the batched searches).
    """
    k = dist.shape[0]
    bitmat = np.unpackbits(
        new.view(np.uint8).reshape(-1, 8), axis=1, bitorder="little"
    ).reshape(len(vs), 64)[:, :k]
    rows, lanes = np.nonzero(bitmat)
    dist[lanes, vs[rows]] = level
    return len(rows)


def bfs_bitparallel_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    roots: Sequence[int],
    avoid_positions: Optional[Sequence[Tuple[int, int]]] = None,
    needed: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int]:
    """Up to 64 simultaneous BFS sweeps packed into ``uint64`` lanes.

    Parameters
    ----------
    roots:
        The batch of BFS roots; ``len(roots) <= 64``.  Root ``i`` owns
        bit lane ``i``.  Roots may repeat (two lanes starting at the
        same vertex, each avoiding a different edge).
    avoid_positions:
        ``None`` (no masking), one ``(pos_uv, pos_vu)`` pair applied to
        every lane (the shared-failed-edge case of batched RELABEL), or
        one pair **per root** — each lane then skips only its own failed
        edge, which is what batches IDENTIFY's ``G - e_i`` passes across
        failure cases.
    needed:
        Optional ``uint64`` array of length ``n``: ``needed[t]`` holds
        the lanes that require ``dist(root, t)``.  The sweep stops as
        soon as every needed bit has been reached — distances outside
        ``needed`` may then legitimately remain ``-1``.

    Returns
    -------
    (dist, settled):
        ``dist`` is a ``(len(roots), n)`` ``int32`` matrix (``-1``
        unreached); ``settled`` counts ``(root, vertex)`` settlements,
        the batched equivalent of the scalar searches' expansion counter.
    """
    n = len(indptr) - 1
    roots = np.asarray(roots, dtype=np.int64)
    k = len(roots)
    if k == 0:
        return np.zeros((0, n), dtype=np.int32), 0
    if k > WORD_BITS:
        raise ValueError(f"at most {WORD_BITS} roots per sweep, got {k}")

    lane_bit = np.left_shift(_ONE, np.arange(k, dtype=np.uint64))
    visited = np.zeros(n, dtype=np.uint64)
    np.bitwise_or.at(visited, roots, lane_bit)
    dist = np.full((k, n), UNREACHED, dtype=np.int32)
    dist[np.arange(k), roots] = 0
    settled = k

    # Per-lane edge masking: sorted flat positions + the lanes they block.
    mask_pos = mask_keep = None
    if avoid_positions is not None:
        pairs = list(avoid_positions)
        if pairs and isinstance(pairs[0], (int, np.integer)):
            if len(pairs) != 2:
                raise ValueError(
                    "avoid_positions must be one (pos, pos) pair "
                    "or one pair per root"
                )
            pairs = [tuple(pairs)] * k  # one shared pair, every lane
        elif len(pairs) != k:
            raise ValueError(
                f"need one avoid pair per root ({k}), got {len(pairs)}"
            )
        merged: dict = {}
        for lane, pair in enumerate(pairs):
            if pair is None:
                continue
            bit = int(lane_bit[lane])
            merged[int(pair[0])] = merged.get(int(pair[0]), 0) | bit
            merged[int(pair[1])] = merged.get(int(pair[1]), 0) | bit
        if merged:
            mask_pos = np.asarray(sorted(merged), dtype=np.int64)
            mask_keep = np.asarray(
                [~np.uint64(merged[p]) for p in sorted(merged)],
                dtype=np.uint64,
            )

    reg = _obs.registry
    if reg is not None:
        reg.counter("bfs.bitparallel_sweeps").inc()
        reg.histogram("bfs.batch_width", SIZE_EDGES).observe(k)

    tier, kern = _kernels.resolve("bitparallel")
    if kern is not None:
        needed_arr = (
            None
            if needed is None
            else np.ascontiguousarray(needed, dtype=np.uint64)
        )
        settled = kern(
            indptr, indices, roots, mask_pos, mask_keep, needed_arr, dist
        )
        if reg is not None:
            reg.counter(f"kernels.bitparallel.{tier}").inc()
        return dist, settled

    remaining = None
    if needed is not None:
        remaining = needed.astype(np.uint64, copy=True)
        remaining &= ~visited
        if not remaining.any():
            return dist, settled

    if reg is not None:
        frontier_hist = reg.histogram("bfs.frontier_size", SIZE_EDGES)

    front_v, front_b = _scatter_bits(roots, lane_bit, n)
    level = 0
    while front_v.size:
        level += 1
        pos, counts = _expand(indptr, front_v)
        if pos.size == 0:
            break
        bits = np.repeat(front_b, counts)
        if mask_pos is not None:
            # Lanes whose failed edge sits at a gathered position drop
            # their bit there; other lanes flow through untouched.
            hit = np.searchsorted(mask_pos, pos)
            np.minimum(hit, len(mask_pos) - 1, out=hit)
            at_mask = mask_pos[hit] == pos
            if at_mask.any():
                bits = bits.copy()
                bits[at_mask] &= mask_keep[hit[at_mask]]
        vs, merged_bits = _scatter_bits(indices[pos].astype(np.int64), bits, n)
        new = merged_bits & ~visited[vs]
        nz = new != _ZERO
        vs = vs[nz]
        new = new[nz]
        if vs.size == 0:
            break
        visited[vs] |= new
        settled += _record_level(dist, vs, new, level)
        front_v = vs
        front_b = new
        if reg is not None:
            frontier_hist.observe(front_v.size)
        if remaining is not None:
            remaining[vs] &= ~new
            if not remaining.any():
                break
    return dist, settled
