"""Deterministic synthetic graph generators.

These substitute for the paper's six SNAP datasets (no network access in
this environment) — see DESIGN.md §2 for the mapping.  Every generator
takes an explicit ``seed`` and uses its own :class:`random.Random`
instance, so dataset generation is reproducible across runs and platforms.

All generators return simple undirected :class:`~repro.graph.graph.Graph`
objects (no self loops, no parallel edges).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.graph import Graph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


# ---------------------------------------------------------------------------
# Classic families
# ---------------------------------------------------------------------------


def path_graph(n: int) -> Graph:
    """Path ``0 - 1 - ... - n-1``."""
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n: int) -> Graph:
    """Star with center 0 and ``n - 1`` leaves."""
    return Graph(n, ((0, i) for i in range(1, n)))


def complete_graph(n: int) -> Graph:
    """Clique on ``n`` vertices."""
    return Graph(n, ((i, j) for i in range(n) for j in range(i + 1, n)))


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` 4-neighbor grid (vertex ``r * cols + c``)."""
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def random_tree(n: int, seed: Optional[int] = None) -> Graph:
    """Uniform-attachment random tree on ``n`` vertices."""
    rng = _rng(seed)
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    return g


# ---------------------------------------------------------------------------
# Random-graph families used by the dataset registry
# ---------------------------------------------------------------------------


def erdos_renyi_gnm(n: int, m: int, seed: Optional[int] = None) -> Graph:
    """Uniform random graph with exactly ``m`` distinct edges (G(n, m))."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"G(n={n}) has at most {max_edges} edges, asked for {m}")
    rng = _rng(seed)
    g = Graph(n)
    seen: Set[Tuple[int, int]] = set()
    while len(seen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        g.add_edge(*key)
    return g


def barabasi_albert(n: int, m: int, seed: Optional[int] = None) -> Graph:
    """Preferential-attachment graph: each new vertex attaches ``m`` edges.

    Implements the standard repeated-endpoint sampling scheme: targets are
    drawn from a list holding every edge endpoint, so a vertex's selection
    probability is proportional to its degree.
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = _rng(seed)
    g = Graph(n)
    # Seed clique of m+1 vertices so early degrees are nonzero.
    repeated: List[int] = []
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            g.add_edge(i, j)
            repeated.extend((i, j))
    for v in range(m + 1, n):
        targets: Set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            g.add_edge(v, t)
            repeated.extend((v, t))
    return g


def watts_strogatz(n: int, k: int, beta: float, seed: Optional[int] = None) -> Graph:
    """Small-world ring lattice with rewiring probability ``beta``.

    ``k`` (even) is the lattice degree; each "forward" lattice edge is
    rewired to a uniform non-duplicate endpoint with probability ``beta``.
    """
    if k % 2 or k < 2 or k >= n:
        raise GraphError(f"need even 2 <= k < n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise GraphError(f"beta must be in [0, 1], got {beta}")
    rng = _rng(seed)
    g = Graph(n)
    for v in range(n):
        for step in range(1, k // 2 + 1):
            w = (v + step) % n
            if not g.has_edge(v, w):
                g.add_edge(v, w)
    for v in range(n):
        for step in range(1, k // 2 + 1):
            w = (v + step) % n
            if rng.random() < beta and g.has_edge(v, w):
                candidates = [
                    x for x in range(n) if x != v and not g.has_edge(v, x)
                ]
                if candidates:
                    g.remove_edge(v, w)
                    g.add_edge(v, rng.choice(candidates))
    return g


def powerlaw_cluster(n: int, m: int, p: float, seed: Optional[int] = None) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but after each preferential attachment,
    with probability ``p`` the next link closes a triangle with a random
    neighbor of the previous target — producing the high clustering of
    social graphs (the Facebook analogue).
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    g = Graph(n)
    repeated: List[int] = []
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            g.add_edge(i, j)
            repeated.extend((i, j))
    for v in range(m + 1, n):
        added = 0
        last_target: Optional[int] = None
        guard = 0
        while added < m and guard < 50 * m:
            guard += 1
            target: Optional[int] = None
            if last_target is not None and rng.random() < p:
                # Triangle step: link to a neighbor of the previous target.
                nbrs = [w for w in g.neighbors(last_target) if w != v and not g.has_edge(v, w)]
                if nbrs:
                    target = rng.choice(nbrs)
            if target is None:
                cand = rng.choice(repeated)
                if cand == v or g.has_edge(v, cand):
                    continue
                target = cand
            g.add_edge(v, target)
            repeated.extend((v, target))
            last_target = target
            added += 1
    return g


def planted_partition(
    n: int,
    communities: int,
    p_in: float,
    p_out: float,
    seed: Optional[int] = None,
) -> Graph:
    """Community-structured random graph (collaboration-network analogue).

    Vertices are split round-robin into ``communities`` groups; each
    intra-group pair is linked with probability ``p_in`` and each
    inter-group pair with ``p_out``.
    """
    if communities < 1:
        raise GraphError(f"need communities >= 1, got {communities}")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"{name} must be in [0, 1], got {p}")
    rng = _rng(seed)
    group = [v % communities for v in range(n)]
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if group[u] == group[v] else p_out
            if p > 0 and rng.random() < p:
                g.add_edge(u, v)
    return g


def preferential_rewired(
    n: int,
    m: int,
    rewire_fraction: float = 0.15,
    seed: Optional[int] = None,
) -> Graph:
    """Erdős–Rényi base with a fraction of edges re-aimed at hubs.

    The Gnutella/P2P analogue: mostly random sparse topology with a light
    hub bias (supernodes).  ``rewire_fraction`` of edges get one endpoint
    replaced by a degree-proportional pick.
    """
    rng = _rng(seed)
    g = erdos_renyi_gnm(n, m, seed=rng.randrange(2**31))
    edges = list(g.edges())
    rng.shuffle(edges)
    to_rewire = edges[: int(len(edges) * rewire_fraction)]
    repeated = [v for u_v in g.edges() for v in u_v]
    for u, v in to_rewire:
        hub = rng.choice(repeated)
        if hub in (u, v) or g.has_edge(u, hub):
            continue
        g.remove_edge(u, v)
        g.add_edge(u, hub)
        repeated.extend((u, hub))
    return g


def attach_tail(graph: Graph, extra: int, seed: Optional[int] = None) -> Graph:
    """Append ``extra`` degree-1 vertices hanging off random old vertices.

    Used to give the Oregon/AS analogue its star-heavy fringe of stub
    autonomous systems.
    """
    rng = _rng(seed)
    old_n = graph.num_vertices
    g = Graph(old_n + extra)
    for u, v in graph.edges():
        g.add_edge(u, v)
    for v in range(old_n, old_n + extra):
        g.add_edge(v, rng.randrange(old_n))
    return g


def random_geometric(
    n: int, radius: float, seed: Optional[int] = None
) -> Graph:
    """Random geometric graph on the unit square (road-network-like).

    Vertices get uniform positions; two are linked when within
    ``radius``.  A grid hash keeps construction near-linear.  Useful for
    the transportation scenarios (§1 Scenario 2) where distances are
    spatially local and failures force genuine detours.
    """
    if radius <= 0:
        raise GraphError(f"radius must be > 0, got {radius}")
    rng = _rng(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    cell = radius
    buckets: dict = {}
    for i, (x, y) in enumerate(points):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(i)
    g = Graph(n)
    r2 = radius * radius
    for i, (x, y) in enumerate(points):
        cx, cy = int(x / cell), int(y / cell)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for j in buckets.get((cx + dx, cy + dy), ()):
                    if j <= i:
                        continue
                    px, py = points[j]
                    if (x - px) ** 2 + (y - py) ** 2 <= r2:
                        g.add_edge(i, j)
    return g


def compose_disjoint(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union of graphs (ids shifted), for multi-component tests."""
    total = sum(g.num_vertices for g in graphs)
    out = Graph(total)
    offset = 0
    for g in graphs:
        for u, v in g.edges():
            out.add_edge(u + offset, v + offset)
        offset += g.num_vertices
    return out
