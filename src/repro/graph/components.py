"""Connectivity: components and bridges.

Bridges matter to SIEF specifically: a failed edge that is a *bridge*
disconnects the graph, and the paper's Case-4 query must then return
infinity.  Tarjan's bridge algorithm lets tests and benchmarks construct
both bridge and non-bridge failure cases deliberately.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

from repro.graph.traversal import _adjacency


def connected_components(graph) -> List[List[int]]:
    """Vertex lists of each connected component, ordered by smallest member."""
    adj = _adjacency(graph)
    n = len(adj)
    comp = [-1] * n
    components: List[List[int]] = []
    for start in range(n):
        if comp[start] != -1:
            continue
        cid = len(components)
        members = [start]
        comp[start] = cid
        queue = deque((start,))
        while queue:
            v = queue.popleft()
            for w in adj[v]:
                if comp[w] == -1:
                    comp[w] = cid
                    members.append(w)
                    queue.append(w)
        components.append(sorted(members))
    return components


def component_ids(graph) -> List[int]:
    """Per-vertex component id (components numbered by smallest member)."""
    ids = [-1] * len(_adjacency(graph))
    for cid, members in enumerate(connected_components(graph)):
        for v in members:
            ids[v] = cid
    return ids


def is_connected(graph) -> bool:
    """Whether the graph has exactly one connected component.

    The empty graph is considered connected (vacuously).
    """
    adj = _adjacency(graph)
    n = len(adj)
    if n == 0:
        return True
    seen = [False] * n
    seen[0] = True
    count = 1
    queue = deque((0,))
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if not seen[w]:
                seen[w] = True
                count += 1
                queue.append(w)
    return count == n


def largest_component_subgraph(graph):
    """Induced subgraph of the largest component plus the id mapping.

    Benchmark datasets are restricted to their giant component, mirroring
    the paper's use of connected SNAP snapshots.
    """
    components = connected_components(graph)
    biggest = max(components, key=len)
    return graph.subgraph(biggest)


def bridges(graph) -> Set[Tuple[int, int]]:
    """All bridge edges as canonical ``(u, v)`` with ``u < v``.

    Iterative Tarjan low-link computation (recursion-free so large graphs
    don't hit Python's recursion limit).
    """
    adj = _adjacency(graph)
    n = len(adj)
    disc = [-1] * n
    low = [0] * n
    result: Set[Tuple[int, int]] = set()
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        # Each stack frame: (vertex, parent, iterator index, parent_edge_used)
        stack = [(root, -1, 0, False)]
        while stack:
            v, parent, i, skipped_parent = stack.pop()
            if i == 0:
                disc[v] = low[v] = timer
                timer += 1
            nbrs = adj[v]
            advanced = False
            while i < len(nbrs):
                w = nbrs[i]
                i += 1
                if w == parent and not skipped_parent:
                    # Skip exactly one parent occurrence (parallel edges are
                    # impossible in Graph, but keep the guard explicit).
                    skipped_parent = True
                    continue
                if disc[w] == -1:
                    stack.append((v, parent, i, skipped_parent))
                    stack.append((w, v, 0, False))
                    advanced = True
                    break
                low[v] = min(low[v], disc[w])
            if not advanced and i >= len(nbrs):
                # Post-order: propagate low-link to parent, decide bridge.
                if parent != -1:
                    low[parent] = min(low[parent], low[v])
                    if low[v] > disc[parent]:
                        result.add((parent, v) if parent < v else (v, parent))
    return result


def is_bridge(graph, u: int, v: int) -> bool:
    """Whether removing edge ``(u, v)`` disconnects its component."""
    key = (u, v) if u < v else (v, u)
    return key in bridges(graph)
