"""Descriptive graph statistics (Table 2 columns |V| and |E| plus context).

The summary object also carries the structural quantities DESIGN.md's
shape targets reason about — density, degree distribution, clustering,
component structure — so EXPERIMENTS.md can document *why* each synthetic
analogue behaves like its SNAP original.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.components import connected_components
from repro.graph.traversal import UNREACHED, bfs_distances


@dataclass(frozen=True)
class GraphStats:
    """Immutable bundle of descriptive statistics for one graph."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    avg_degree: float
    num_components: int
    largest_component_size: int
    clustering_coefficient: float
    diameter_estimate: int
    degree_histogram: Dict[int, int] = field(default_factory=dict, repr=False)

    @property
    def density(self) -> float:
        """Edges over possible edges ``m / (n choose 2)``."""
        n = self.num_vertices
        possible = n * (n - 1) / 2
        return self.num_edges / possible if possible else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for table rendering."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "avg_degree": self.avg_degree,
            "density": self.density,
            "num_components": self.num_components,
            "largest_component_size": self.largest_component_size,
            "clustering_coefficient": self.clustering_coefficient,
            "diameter_estimate": self.diameter_estimate,
        }


def average_clustering(graph, sample: Optional[int] = None, seed: int = 0) -> float:
    """Average local clustering coefficient (optionally vertex-sampled)."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    vertices: List[int] = list(range(n))
    if sample is not None and sample < n:
        vertices = random.Random(seed).sample(vertices, sample)
    total = 0.0
    for v in vertices:
        nbrs = list(graph.neighbors(v))
        k = len(nbrs)
        if k < 2:
            continue
        nbr_set = set(nbrs)
        links = sum(
            1
            for i, a in enumerate(nbrs)
            for b in nbrs[i + 1 :]
            if b in set(graph.neighbors(a)) & nbr_set
        )
        total += 2.0 * links / (k * (k - 1))
    return total / len(vertices) if vertices else 0.0


def estimate_diameter(graph, probes: int = 8, seed: int = 0) -> int:
    """Lower-bound diameter via repeated double-sweep BFS."""
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = random.Random(seed)
    best = 0
    start = rng.randrange(n)
    for _ in range(probes):
        dist = bfs_distances(graph, start)
        far, far_d = start, 0
        for v, d in enumerate(dist):
            if d != UNREACHED and d > far_d:
                far, far_d = v, d
        best = max(best, far_d)
        if far == start:
            start = rng.randrange(n)
        else:
            start = far
    return best


def compute_stats(graph, clustering_sample: Optional[int] = 400) -> GraphStats:
    """Compute a :class:`GraphStats` summary for ``graph``."""
    n = graph.num_vertices
    degrees = [graph.degree(v) for v in range(n)]
    histogram: Dict[int, int] = {}
    for d in degrees:
        histogram[d] = histogram.get(d, 0) + 1
    components = connected_components(graph)
    return GraphStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        avg_degree=(2.0 * graph.num_edges / n) if n else 0.0,
        num_components=len(components),
        largest_component_size=max((len(c) for c in components), default=0),
        clustering_coefficient=average_clustering(graph, sample=clustering_sample),
        diameter_estimate=estimate_diameter(graph),
        degree_histogram=histogram,
    )
