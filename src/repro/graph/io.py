"""Graph persistence: SNAP-style edge lists and JSON.

The edge-list reader accepts exactly the format of the SNAP datasets the
paper uses (``# comment`` header lines, one whitespace-separated vertex
pair per line, arbitrary sparse ids), so a user who *does* have the real
Gnutella/Facebook/... files can drop them in unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

from repro.exceptions import SerializationError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, directed_input: bool = False) -> Tuple[Graph, list]:
    """Parse a SNAP-style edge-list file into a dense undirected graph.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped.  Directed inputs (e.g. Wiki-Vote) collapse to undirected, as
    the paper does ("we treat all graphs as undirected, unweighted").

    Returns
    -------
    (graph, names):
        The graph over dense ids plus the dense-id -> original-id list.
    """
    builder = GraphBuilder()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise SerializationError(
                    f"{path}:{lineno}: expected two vertex ids, got {line!r}"
                )
            builder.add_edge(parts[0], parts[1])
    return builder.build(), builder.names()


def write_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write a graph as a SNAP-style edge list (dense integer ids)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")


def read_weighted_edge_list(path: PathLike) -> Tuple[WeightedGraph, list]:
    """Parse ``u v weight`` lines into a :class:`WeightedGraph`."""
    builder = GraphBuilder()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 3:
                raise SerializationError(
                    f"{path}:{lineno}: expected 'u v weight', got {line!r}"
                )
            try:
                weight = float(parts[2])
            except ValueError as exc:
                raise SerializationError(
                    f"{path}:{lineno}: bad weight {parts[2]!r}"
                ) from exc
            builder.add_edge(parts[0], parts[1], weight=weight)
    return builder.build_weighted(), builder.names()


def write_weighted_edge_list(graph: WeightedGraph, path: PathLike) -> None:
    """Write ``u v weight`` lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u}\t{v}\t{w!r}\n")


def graph_to_json(graph: Graph) -> str:
    """Serialize a graph to a compact JSON document."""
    return json.dumps(
        {"n": graph.num_vertices, "edges": [[u, v] for u, v in graph.edges()]},
        separators=(",", ":"),
    )


def graph_from_json(text: str) -> Graph:
    """Inverse of :func:`graph_to_json`."""
    try:
        doc = json.loads(text)
        n = doc["n"]
        edges = [(int(u), int(v)) for u, v in doc["edges"]]
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise SerializationError(f"bad graph JSON: {exc}") from exc
    return Graph(n, edges)


def save_graph_json(graph: Graph, path: PathLike) -> None:
    """Write :func:`graph_to_json` output to ``path``."""
    Path(path).write_text(graph_to_json(graph), encoding="utf-8")


def load_graph_json(path: PathLike) -> Graph:
    """Read a graph written by :func:`save_graph_json`."""
    return graph_from_json(Path(path).read_text(encoding="utf-8"))
