"""Command-line interface: build, query and inspect SIEF indexes.

Installed as ``sief`` (see pyproject) and runnable as ``python -m repro``.

Examples::

    sief generate --dataset gnutella -o gnutella.txt
    sief build gnutella.txt -o gnutella.sief --algorithm bfs_all
    sief query gnutella.sief --fail 3 17 --pair 0 42
    sief path gnutella.txt gnutella.sief --fail 3 17 --pair 0 42
    sief impact gnutella.txt gnutella.sief --top 10
    sief stats gnutella.sief
    sief validate gnutella.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.exceptions import ReproError


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.bench.datasets import DATASETS, load_dataset
    from repro.graph.io import write_edge_list

    if args.list:
        for name, spec in DATASETS.items():
            print(f"{name:12s} {spec.domain}")
        return 0
    graph = load_dataset(args.dataset)
    write_edge_list(graph, args.output, header=f"repro dataset: {args.dataset}")
    print(
        f"wrote {args.dataset} (n={graph.num_vertices}, m={graph.num_edges}) "
        f"to {args.output}"
    )
    return 0


def _resolve_algorithm(args: argparse.Namespace) -> str:
    """Combine ``--algorithm`` with the ``--batched``/``--no-batched`` pair.

    ``--batched`` selects the bit-parallel construction path regardless
    of ``--algorithm``; ``--no-batched`` forces a scalar path (falling
    back to ``bfs_all`` when ``--algorithm batched`` was also given).
    With neither flag, ``--algorithm`` stands as written.
    """
    if getattr(args, "batched", None) is True:
        return "batched"
    algorithm = args.algorithm
    if getattr(args, "batched", None) is False and algorithm == "batched":
        return "bfs_all"
    return algorithm


def _cmd_build(args: argparse.Namespace) -> int:
    import contextlib

    from repro.core.builder import SIEFBuilder
    from repro.core.serialize import save_index
    from repro.graph.io import read_edge_list
    from repro.labeling.pll import build_pll
    from repro.order.strategies import make_ordering

    graph, _names = read_edge_list(args.graph)
    print(f"loaded graph: n={graph.num_vertices}, m={graph.num_edges}")
    started = time.perf_counter()
    labeling = build_pll(graph, make_ordering(graph, args.ordering))
    print(
        f"PLL labeling: {labeling.total_entries()} entries "
        f"in {time.perf_counter() - started:.2f}s"
    )
    algorithm = _resolve_algorithm(args)
    prog = None
    if getattr(args, "progress", False):
        from repro.obs import ProgressReporter
        from repro.obs import hooks as obs_hooks

        prog = ProgressReporter(total=graph.num_edges, label="sief build")
        hook_ctx = obs_hooks.installed(report_progress=prog)
    else:
        hook_ctx = contextlib.nullcontext()
    if args.spill is not None:
        from repro.core.segstore import build_sief_sharded

        with hook_ctx:
            store_path, sreport = build_sief_sharded(
                graph,
                args.spill,
                labeling=labeling,
                algorithm=algorithm,
                shards=args.shards,
                jobs=args.jobs,
            )
        if prog is not None:
            prog.finish()
        print(
            f"SIEF out-of-core ({algorithm}, jobs={args.jobs}): "
            f"{sreport.num_cases} failure cases in {sreport.num_shards} "
            f"shards, {sreport.total_entries} supplemental entries, "
            f"{sreport.spilled_bytes} segment bytes, peak "
            f"{sreport.max_resident_cases} resident cases; "
            f"built in {sreport.build_seconds:.2f}s"
        )
        print(f"segment store written to {store_path}")
        return 0
    with hook_ctx:
        if args.jobs > 1:
            from repro.core.parallel import build_sief_parallel

            index, report = build_sief_parallel(
                graph, labeling, algorithm=algorithm, workers=args.jobs
            )
        else:
            builder = SIEFBuilder(graph, labeling, algorithm=algorithm)
            index, report = builder.build()
    if prog is not None:
        prog.finish()
    print(
        f"SIEF ({algorithm}, jobs={args.jobs}): "
        f"{index.num_cases} failure cases, "
        f"{index.total_supplemental_entries()} supplemental entries; "
        f"identify {report.identify_seconds:.2f}s, "
        f"relabel {report.relabel_seconds:.2f}s"
    )
    save_index(index, args.output)
    print(f"index written to {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core.query import SIEFQueryEngine
    from repro.core.serialize import load_index
    from repro.labeling.query import INF

    index = load_index(args.index)
    engine = SIEFQueryEngine(index)
    u, v = args.fail
    s, t = args.pair
    distance, case = engine.distance_with_case(s, t, (u, v))
    shown = "inf" if distance == INF else str(distance)
    print(f"d(G - ({u},{v}); {s}, {t}) = {shown}   [case {case.value}]")
    return 0


def _cmd_path(args: argparse.Namespace) -> int:
    from repro.core.query import SIEFQueryEngine
    from repro.core.serialize import load_index
    from repro.graph.io import read_edge_list
    from repro.labeling.paths import failure_shortest_path

    graph, _names = read_edge_list(args.graph)
    engine = SIEFQueryEngine(load_index(args.index))
    u, v = args.fail
    s, t = args.pair
    path = failure_shortest_path(graph, engine, s, t, (u, v))
    if path is None:
        print(f"no path: failing ({u},{v}) disconnects {s} from {t}")
        return 1
    print(" -> ".join(map(str, path)))
    print(f"length {len(path) - 1}, avoiding edge ({u},{v})")
    return 0


def _cmd_impact(args: argparse.Namespace) -> int:
    from repro.analysis.resilience import (
        failure_impact_histogram,
        resilience_profile,
    )
    from repro.core.serialize import load_index

    index = load_index(args.index)
    print(f"worst {args.top} failure cases by affected vertices:")
    for edge, impact in failure_impact_histogram(index, top=args.top):
        print(f"  edge {edge}: {impact} affected")
    profile = resilience_profile(
        index, num_queries=args.queries, seed=args.seed
    )
    print(
        f"\nresilience over {profile.queries} random (pair, failure) "
        "samples:"
    )
    print(f"  unchanged:    {profile.unchanged}")
    print(
        f"  stretched:    {profile.stretched} "
        f"(mean {profile.mean_stretch:.2f}x, max {profile.max_stretch:.2f}x)"
    )
    print(
        f"  disconnected: {profile.disconnected} "
        f"({profile.disconnect_rate:.1%})"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.serialize import load_index
    from repro.core.stats import sief_stats
    from repro.labeling.stats import labeling_stats

    index = load_index(args.index)
    original = labeling_stats(index.labeling)
    stats = sief_stats(index)
    print(f"vertices:               {stats.num_vertices}")
    print(f"failure cases:          {stats.num_cases}")
    print(f"original label entries: {stats.original_entries}")
    print(f"  avg per vertex (LN):  {original.avg_entries:.3f}")
    print(f"supplemental entries:   {stats.supplemental_entries}")
    print(f"  SLEN / OLEN:          {stats.slen_over_olen:.3f}")
    print(f"original index size:    {stats.original_megabytes:.3f} MB")
    print(f"supplemental size:      {stats.supplemental_megabytes:.3f} MB")
    print(f"avg affected / case:    {stats.avg_affected_per_case:.2f}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core.serialize import load_index
    from repro.core.verify import verify_index
    from repro.graph.io import read_edge_list

    graph, _names = read_edge_list(args.graph)
    index = load_index(args.index)
    problems = verify_index(
        index, graph, sample_cases=args.sample, seed=args.seed
    )
    if problems:
        for p in problems:
            print(f"PROBLEM: {p}")
        return 1
    print(
        f"ok: index consistent with graph "
        f"({index.num_cases} cases, sampled {args.sample})"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.serialize import load_index
    from repro.core.verify import VERIFY_LEVELS, verify_index
    from repro.graph.io import read_edge_list

    graph, _names = read_edge_list(args.graph)
    index = load_index(args.index)
    levels = args.level or list(VERIFY_LEVELS)
    problems = verify_index(
        index,
        graph,
        sample_cases=None if args.sample < 0 else args.sample,
        queries_per_case=args.queries,
        seed=args.seed,
        levels=levels,
    )
    if problems:
        for p in problems:
            print(f"PROBLEM: {p}")
        print(f"{len(problems)} problem(s) at levels {', '.join(levels)}")
        return 1
    print(
        f"ok: levels {', '.join(levels)} passed "
        f"({index.num_cases} cases, sampled "
        f"{'all' if args.sample < 0 else args.sample})"
    )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.testing import fuzz, parse_budget
    from repro.testing.fuzz import FuzzConfig

    try:
        config = FuzzConfig(
            seed=args.seed,
            budget_seconds=parse_budget(args.budget),
            adapters=args.adapter or None,
            generators=args.generator or None,
            corpus_dir=None if args.no_corpus else args.corpus,
            do_shrink=not args.no_shrink,
            max_counterexamples=args.max_counterexamples,
        )
        if args.metrics_out:
            from repro.obs import (
                MetricsRegistry,
                TraceRecorder,
                installed,
                write_json_lines,
            )

            registry = MetricsRegistry()
            recorder = TraceRecorder(capacity=4096)
            with installed(registry, recorder):
                report = fuzz(config)
            write_json_lines(registry, args.metrics_out, recorder)
            print(f"metrics sidecar written to {args.metrics_out}")
        else:
            report = fuzz(config)
    except ValueError as exc:  # unknown adapter/generator, bad budget
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    import random

    from repro.core.builder import SIEFBuilder
    from repro.core.query import SIEFQueryEngine
    from repro.graph import generators
    from repro.labeling.pll import build_pll
    from repro.obs import (
        MetricsRegistry,
        SpanProfiler,
        TraceRecorder,
        installed,
        to_chrome_trace_json,
        to_json_lines,
        to_prometheus_text,
    )

    if args.graph:
        from repro.graph.io import read_edge_list

        graph, _names = read_edge_list(args.graph)
    else:
        graph = generators.barabasi_albert(
            args.vertices, args.attach, seed=args.seed
        )
    print(
        f"workload graph: n={graph.num_vertices}, m={graph.num_edges}",
        file=sys.stderr,
    )

    rng = random.Random(args.seed)
    edges = sorted(graph.edges())
    cases = rng.sample(edges, min(args.cases, len(edges)))

    registry = MetricsRegistry()
    recorder = TraceRecorder(capacity=args.span_capacity)
    profiler = None
    if args.profile or args.folded_out:
        profiler = SpanProfiler(recorder, interval=args.profile_interval)
    algorithm = _resolve_algorithm(args)
    with installed(registry, recorder, profile=profiler):
        if profiler is not None:
            profiler.start()
        try:
            labeling = build_pll(graph)
            if args.jobs > 1:
                from repro.core.parallel import build_sief_parallel

                index, _report = build_sief_parallel(
                    graph,
                    labeling,
                    algorithm=algorithm,
                    workers=args.jobs,
                    edges=cases,
                )
            else:
                index, _report = SIEFBuilder(
                    graph, labeling, algorithm=algorithm
                ).build(edges=cases)
            engine = SIEFQueryEngine(index)
            n = graph.num_vertices
            per_case = max(1, args.queries // max(1, len(cases)))
            for edge in cases:
                pairs = [
                    (rng.randrange(n), rng.randrange(n))
                    for _ in range(per_case)
                ]
                engine.batch_query(edge, pairs)
                for s, t in pairs[: min(per_case, args.scalar_queries)]:
                    engine.distance(s, t, edge)
        finally:
            if profiler is not None:
                profiler.stop()
        recorder.sync_registry(registry)

    if not recorder.balanced:  # pragma: no cover - instrumentation bug
        print("warning: span stack unbalanced after workload", file=sys.stderr)
    if args.format == "prom":
        text = to_prometheus_text(registry, recorder)
    elif args.format == "chrome":
        text = to_chrome_trace_json(recorder, profiler)
    else:
        text = to_json_lines(registry, recorder)
    if args.out == "-":
        print(text, end="")
    else:
        from pathlib import Path

        Path(args.out).write_text(text, encoding="utf-8")
        print(f"metrics written to {args.out}", file=sys.stderr)
    if args.folded_out and profiler is not None:
        from pathlib import Path

        Path(args.folded_out).write_text(
            profiler.folded(), encoding="utf-8"
        )
        print(
            f"folded stacks written to {args.folded_out}", file=sys.stderr
        )
    if args.profile and profiler is not None:
        print(profiler.report(), file=sys.stderr)
    return 0


def _bench_workload_samples(args: argparse.Namespace) -> dict:
    """Time the smoke-scale build/query workloads; k samples each."""
    import random

    from repro.core.builder import SIEFBuilder
    from repro.core.query import SIEFQueryEngine
    from repro.graph import generators
    from repro.labeling.pll import build_pll

    workloads = args.workload or ["build", "query"]
    graph = generators.barabasi_albert(
        args.vertices, args.attach, seed=args.seed
    )
    rng = random.Random(args.seed)
    edges = sorted(graph.edges())
    cases = rng.sample(edges, min(args.cases, len(edges)))
    labeling = build_pll(graph)
    out: dict = {}
    if "build" in workloads:
        samples = []
        for _ in range(args.repeat):
            started = time.perf_counter()
            SIEFBuilder(graph, labeling, algorithm=args.algorithm).build(
                edges=cases
            )
            samples.append(time.perf_counter() - started)
        out["build"] = samples
    if "query" in workloads:
        index, _report = SIEFBuilder(
            graph, labeling, algorithm=args.algorithm
        ).build(edges=cases)
        engine = SIEFQueryEngine(index)
        n = graph.num_vertices
        pairs = [
            (rng.randrange(n), rng.randrange(n)) for _ in range(args.queries)
        ]
        samples = []
        for _ in range(args.repeat):
            started = time.perf_counter()
            for edge in cases:
                engine.batch_query(edge, pairs)
            samples.append(time.perf_counter() - started)
        out["query"] = samples
    return out


def _cmd_bench_record(args: argparse.Namespace) -> int:
    from repro.bench.history import (
        BenchHistory,
        BenchRun,
        default_run_label,
        env_metadata,
    )

    if args.sample and not args.bench_id:
        print("error: --sample requires --id", file=sys.stderr)
        return 2
    history = BenchHistory(args.history)
    run_label = args.run or default_run_label()
    meta = env_metadata()
    if args.sample:
        per_bench = {args.bench_id: list(args.sample)}
    else:
        per_bench = _bench_workload_samples(args)
    now = time.time()
    for bench_id, samples in sorted(per_bench.items()):
        samples = [s * args.scale for s in samples]
        rec = BenchRun(
            bench_id=bench_id,
            samples=tuple(samples),
            run=run_label,
            meta=meta,
            timestamp=now,
        )
        history.append(rec)
        print(
            f"recorded {bench_id} [{run_label}]: "
            f"min {min(samples):.6g}s over {len(samples)} samples"
        )
    print(f"history: {history.path}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench.history import (
        BenchHistory,
        CrossHostError,
        CrossTierError,
        compare_runs,
    )

    history = BenchHistory(args.history)
    baseline, candidate = args.baseline, args.candidate
    if baseline is None or candidate is None:
        labels = history.run_labels()
        if len(labels) < 2:
            print(
                f"error: need two recorded runs in {history.path} "
                f"(found {len(labels)}); pass --baseline/--candidate",
                file=sys.stderr,
            )
            return 2
        if baseline is None:
            baseline = labels[-2]
        if candidate is None:
            candidate = labels[-1]
    try:
        comparisons, missing = compare_runs(
            history,
            baseline,
            candidate,
            threshold=args.threshold,
            statistic=args.statistic,
            allow_cross_host=args.allow_cross_host,
            allow_cross_tier=args.allow_cross_tier,
        )
    except (CrossHostError, CrossTierError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"baseline={baseline}  candidate={candidate}")
    for comp in comparisons:
        print(comp.describe())
    for bench_id in missing:
        print(f"WARN {bench_id}: present in only one run")
    regressed = any(c.regressed for c in comparisons)
    if args.expect_regression:
        if regressed:
            print("expected regression detected")
            return 0
        print("error: expected a regression but every benchmark passed")
        return 1
    return 1 if regressed else 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from repro.bench.history import BenchHistory

    history = BenchHistory(args.history)
    records = history.load()
    if not records:
        print(f"(no records in {history.path})")
        return 0
    for label in history.run_labels():
        recs = [r for r in records if r.run == label]
        hosts = sorted({str(r.meta.get("hostname")) for r in recs})
        shas = sorted({str(r.meta.get("git_sha")) for r in recs})
        print(
            f"{label}: {len(recs)} benchmark(s) "
            f"[{', '.join(r.bench_id for r in recs)}] "
            f"host={','.join(hosts)} sha={','.join(shas)}"
        )
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.kernels import capability_report

    report = capability_report()
    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True, default=str))
        return 0 if report.get("effective") else 2
    print(f"requested tier: {report.get('requested')}")
    print(f"effective tier: {report.get('effective')}")
    if report.get("error"):
        print(f"error: {report['error']}", file=sys.stderr)
    print("backends:")
    for tier, info in report.get("backends", {}).items():
        status = "available" if info.get("available") else "unavailable"
        detail_keys = (
            "numba_version",
            "llvmlite_version",
            "numpy_version",
            "compiler",
            "library",
            "compile_cached",
            "error",
        )
        details = ", ".join(
            f"{k}={info[k]}" for k in detail_keys if info.get(k) is not None
        )
        print(f"  {tier:6s} {status}" + (f"  ({details})" if details else ""))
    kernels = report.get("kernels", {})
    if kernels:
        print("kernels:")
        for name, tier in kernels.items():
            print(f"  {name:12s} -> {tier}")
    return 0 if report.get("effective") else 2


def _cmd_freeze(args: argparse.Namespace) -> int:
    from repro.core.index import SIEFIndex

    index = SIEFIndex.load(args.index)
    index.freeze()
    if str(args.output).endswith(".siefseg"):
        from repro.core.segstore import SegmentWriter

        with SegmentWriter(args.output, index.labeling) as writer:
            for edge, si in index.iter_cases():
                writer.append_case(edge, si)
        print(
            f"segment store written to {writer.path}: "
            f"n={index.labeling.num_vertices}, cases={writer.num_cases}, "
            f"supplemental_entries={writer.total_entries}, "
            f"segment_bytes={writer.bytes_written}"
        )
        return 0
    index.save_npz(args.output, compress=args.compress)
    mode = "compressed" if args.compress else "uncompressed (mmap-ready)"
    print(
        f"frozen store written to {args.output} ({mode}): "
        f"n={index.labeling.num_vertices}, cases={index.num_cases}, "
        f"supplemental_entries={index.total_supplemental_entries()}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json
    import os
    import signal as _signal
    import socket

    from repro.core.index import SIEFIndex
    from repro.core.query import SIEFQueryEngine
    from repro.obs import hooks as obs_hooks
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.server import ServeConfig, run_server

    from repro.obs.events import EventLog

    events = None
    sample = args.trace_sample
    if args.event_log is not None or sample is not None:
        events = EventLog(
            sample=1.0 if sample is None else sample,
            slow_seconds=args.slow_threshold,
            sink=args.event_log,
        )

    registry = None
    if str(args.index).endswith(".siefseg"):
        # Demand-paged serving: mmap'd segment store behind an LRU of
        # hot failure cases — the index never fully resides in memory.
        # The server's /metrics registry doubles as the global hooks
        # registry so the paging counters are exposed too.
        from repro.core.lazy import PagedSIEFIndex
        from repro.core.segstore import SegmentStore

        store = SegmentStore(args.index)
        index = PagedSIEFIndex(store, capacity=args.cache_cases)
        registry = MetricsRegistry()
        obs_hooks.install(registry)
        print(
            f"loaded {args.index}: n={index.labeling.num_vertices}, "
            f"cases={index.num_cases} "
            f"(demand-paged, lru={args.cache_cases})",
            file=sys.stderr,
        )
    else:
        mmap_mode = None if args.no_mmap else "r"
        if not str(args.index).endswith(".npz"):
            mmap_mode = None
        index = SIEFIndex.load(args.index, mmap_mode=mmap_mode)
        index.freeze()
        print(
            f"loaded {args.index}: n={index.labeling.num_vertices}, "
            f"cases={index.num_cases}"
            + (" (mmap)" if mmap_mode else ""),
            file=sys.stderr,
        )
    engine = SIEFQueryEngine(index)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        registry=registry,
        events=events,
        slow_seconds=args.slow_threshold,
    )
    if args.access_log:
        config.access_log = lambda rec: print(
            _json.dumps(rec), file=sys.stderr, flush=True
        )

    # Bind in the (parent) process so the "serving on" line is printed
    # exactly once, before any fork; workers adopt the same socket.
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((args.host, args.port))
    sock.listen(256)
    host, port = sock.getsockname()[:2]
    print(f"serving on {host}:{port}", flush=True)

    if args.workers <= 1:
        asyncio.run(run_server(engine, config, sock=sock))
        return 0

    children = []
    for _ in range(args.workers):
        pid = os.fork()
        if pid == 0:
            try:
                asyncio.run(run_server(engine, config, sock=sock))
            finally:
                os._exit(0)
        children.append(pid)

    def _forward(signum, _frame):
        for child in children:
            try:
                os.kill(child, signum)
            except ProcessLookupError:
                pass

    _signal.signal(_signal.SIGTERM, _forward)
    _signal.signal(_signal.SIGINT, _forward)
    sock.close()
    for child in children:
        os.waitpid(child, 0)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient
    from repro.serve.top import run_top

    host, _, port_str = args.target.rpartition(":")
    if not host or not port_str.isdigit():
        print(f"sief top: target must be HOST:PORT, got {args.target!r}",
              file=sys.stderr)
        return 2
    client = ServeClient(host, int(port_str))
    try:
        return run_top(
            client.metrics_text,
            interval=args.interval,
            count=args.count,
            plain=args.plain,
        )
    finally:
        client.close()


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.graph.io import read_edge_list
    from repro.graph.validation import validate_graph

    graph, _names = read_edge_list(args.graph)
    problems = validate_graph(graph)
    if problems:
        for p in problems:
            print(f"INVALID: {p}")
        return 1
    print(
        f"ok: n={graph.num_vertices}, m={graph.num_edges}, "
        "all structural invariants hold"
    )
    return 0


def _add_build_path_flags(parser: argparse.ArgumentParser) -> None:
    """Construction-path flags shared by ``build`` and ``metrics``."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the build (1 = in-process serial)",
    )
    batched = parser.add_mutually_exclusive_group()
    batched.add_argument(
        "--batched",
        dest="batched",
        action="store_true",
        default=None,
        help="use the bit-parallel batched relabel (overrides --algorithm)",
    )
    batched.add_argument(
        "--no-batched",
        dest="batched",
        action="store_false",
        help="force a scalar relabel even if --algorithm batched was given",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="sief",
        description="SIEF: distance queries on graphs with edge failures",
    )
    parser.add_argument(
        "--kernels",
        choices=["auto", "numpy", "numba", "cext"],
        default=None,
        help=(
            "kernel tier for the hot loops (default: $SIEF_KERNELS or "
            "auto); an explicit unavailable tier is an error"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit a benchmark dataset edge list")
    gen.add_argument("--dataset", default="gnutella")
    gen.add_argument("--output", "-o", default="graph.txt")
    gen.add_argument("--list", action="store_true", help="list dataset names")
    gen.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build", help="build a SIEF index from an edge list")
    build.add_argument("graph")
    build.add_argument("--output", "-o", default="index.sief")
    build.add_argument(
        "--algorithm",
        choices=["bfs_aff", "bfs_all", "batched"],
        default="bfs_all",
    )
    build.add_argument("--ordering", default="degree")
    build.add_argument(
        "--progress",
        action="store_true",
        help="live cases/sec + ETA progress line on stderr",
    )
    build.add_argument(
        "--spill",
        metavar="STORE",
        default=None,
        help="out-of-core build: spill each finished shard's supplements "
        "to a .siefseg segment store at this path (peak memory becomes "
        "O(shard), not O(E)); --output is ignored",
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of build shards for --spill "
        "(default: ~4096 cases per shard)",
    )
    _add_build_path_flags(build)
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="answer one failure query")
    query.add_argument("index")
    query.add_argument(
        "--fail", nargs=2, type=int, required=True, metavar=("U", "V")
    )
    query.add_argument(
        "--pair", nargs=2, type=int, required=True, metavar=("S", "T")
    )
    query.set_defaults(func=_cmd_query)

    path = sub.add_parser(
        "path", help="print one replacement path avoiding a failed edge"
    )
    path.add_argument("graph")
    path.add_argument("index")
    path.add_argument(
        "--fail", nargs=2, type=int, required=True, metavar=("U", "V")
    )
    path.add_argument(
        "--pair", nargs=2, type=int, required=True, metavar=("S", "T")
    )
    path.set_defaults(func=_cmd_path)

    impact = sub.add_parser(
        "impact", help="rank failures by impact and profile resilience"
    )
    impact.add_argument("index")
    impact.add_argument("--top", type=int, default=10)
    impact.add_argument("--queries", type=int, default=500)
    impact.add_argument("--seed", type=int, default=0)
    impact.set_defaults(func=_cmd_impact)

    stats = sub.add_parser("stats", help="print index statistics")
    stats.add_argument("index")
    stats.set_defaults(func=_cmd_stats)

    check = sub.add_parser(
        "check", help="verify a SIEF index against its graph"
    )
    check.add_argument("graph")
    check.add_argument("index")
    check.add_argument("--sample", type=int, default=25)
    check.add_argument("--seed", type=int, default=0)
    check.set_defaults(func=_cmd_check)

    freeze = sub.add_parser(
        "freeze",
        help="convert an index to the frozen flat-array (npz) store",
    )
    freeze.add_argument("index", help="a .sief (or .npz) index file")
    freeze.add_argument(
        "--output",
        "-o",
        default="index.npz",
        help="output store; a .siefseg suffix writes the out-of-core "
        "segment store instead of a single npz archive",
    )
    freeze.add_argument(
        "--compress",
        action="store_true",
        help="zip-deflate the store (smaller, but not mmap-able)",
    )
    freeze.set_defaults(func=_cmd_freeze)

    serve = sub.add_parser(
        "serve",
        help="serve distance queries over HTTP (see docs/serving.md)",
    )
    serve.add_argument(
        "index",
        help="index file; .npz enables mmap loading, .siefseg serves "
        "demand-paged from the segment store",
    )
    serve.add_argument(
        "--cache-cases",
        type=int,
        default=256,
        metavar="N",
        help="LRU capacity (resident failure cases) for .siefseg "
        "demand-paged serving",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="forked worker processes sharing the socket and (with an "
        "npz index) one memory-mapped copy of the label arrays",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=512,
        help="flush the micro-batch at this many queued pairs",
    )
    serve.add_argument(
        "--max-delay",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="flush the micro-batch when the oldest request waited this long",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=8192,
        help="queued pairs before load-shedding with 429",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-request deadline; overruns answer 504",
    )
    serve.add_argument(
        "--no-mmap",
        action="store_true",
        help="copy the npz arrays into memory instead of mapping them",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="one JSON line per request on stderr",
    )
    serve.add_argument(
        "--event-log",
        metavar="PATH",
        default=None,
        help="append sampled structured request events as JSON lines "
        "(enables the event ring behind /debug even without a file)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="head-sampling rate in [0,1] for the event log; slow and "
        "error requests are always logged (default 1.0 when --event-log "
        "is set, off otherwise)",
    )
    serve.add_argument(
        "--slow-threshold",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="requests at or above this wall time bypass sampling and "
        "populate /debug/slow",
    )
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="live ops dashboard polling a server's /metrics",
    )
    top.add_argument(
        "target", metavar="HOST:PORT", help="a running sief serve instance"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="scrape interval",
    )
    top.add_argument(
        "--count",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: until interrupted)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="append frames instead of redrawing (log-file friendly)",
    )
    top.set_defaults(func=_cmd_top)

    validate = sub.add_parser("validate", help="check an edge-list file")
    validate.add_argument("graph")
    validate.set_defaults(func=_cmd_validate)

    kernels_p = sub.add_parser(
        "kernels",
        help="report detected kernel tiers and per-kernel backends",
    )
    kernels_p.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    kernels_p.set_defaults(func=_cmd_kernels)

    verify = sub.add_parser(
        "verify",
        help="run the structural/affected/queries verification levels",
    )
    verify.add_argument("graph")
    verify.add_argument("index")
    verify.add_argument(
        "--level",
        action="append",
        choices=["structural", "affected", "queries"],
        help="run only this level (repeatable; default: all three)",
    )
    verify.add_argument(
        "--sample",
        type=int,
        default=25,
        help="failure cases to sample per level (-1 = all)",
    )
    verify.add_argument("--queries", type=int, default=20)
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(func=_cmd_verify)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing of every query engine",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--budget", default="30s", help="time budget, e.g. 30s or 2m"
    )
    fuzz.add_argument(
        "--adapter",
        action="append",
        help="fuzz only this engine adapter (repeatable; default: all)",
    )
    fuzz.add_argument(
        "--generator",
        action="append",
        help="fuzz only this graph generator (repeatable; default: all)",
    )
    fuzz.add_argument(
        "--corpus",
        default="tests/corpus",
        help="directory for shrunk counterexamples (default: tests/corpus)",
    )
    fuzz.add_argument(
        "--no-corpus",
        action="store_true",
        help="report counterexamples without persisting them",
    )
    fuzz.add_argument("--no-shrink", action="store_true")
    fuzz.add_argument("--max-counterexamples", type=int, default=10)
    fuzz.add_argument(
        "--metrics-out",
        default=None,
        help="write a JSON-lines metrics sidecar for the whole run",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented workload and dump a metrics snapshot",
    )
    metrics.add_argument(
        "--graph",
        default=None,
        help="edge-list file to load (default: generated BA graph)",
    )
    metrics.add_argument("--vertices", type=int, default=400)
    metrics.add_argument("--attach", type=int, default=3)
    metrics.add_argument(
        "--cases", type=int, default=5, help="failure cases to build"
    )
    metrics.add_argument(
        "--queries", type=int, default=2000, help="total batch queries"
    )
    metrics.add_argument(
        "--scalar-queries",
        type=int,
        default=200,
        help="scalar queries per failure case (cap)",
    )
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--format",
        choices=["jsonl", "prom", "chrome"],
        default="jsonl",
        help=(
            "jsonl sidecar, Prometheus text exposition, or Chrome "
            "trace-event JSON (load in Perfetto / chrome://tracing)"
        ),
    )
    metrics.add_argument(
        "--out", "-o", default="-", help="output path ('-' = stdout)"
    )
    metrics.add_argument("--span-capacity", type=int, default=1024)
    metrics.add_argument(
        "--profile",
        action="store_true",
        help="run the span-attributed sampling profiler; print the rollup",
    )
    metrics.add_argument(
        "--profile-interval",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="profiler sampling period (default 5ms)",
    )
    metrics.add_argument(
        "--folded-out",
        default=None,
        metavar="PATH",
        help="write folded stacks (flamegraph input); implies --profile",
    )
    metrics.add_argument(
        "--algorithm",
        choices=["bfs_aff", "bfs_all", "batched"],
        default="bfs_all",
    )
    _add_build_path_flags(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    bench = sub.add_parser(
        "bench",
        help="record benchmark runs and detect perf regressions",
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)

    brec = bsub.add_parser(
        "record", help="time the smoke workloads and append to the history"
    )
    brec.add_argument(
        "--history",
        default="bench_history.jsonl",
        help="JSON-lines history file (appended; created if missing)",
    )
    brec.add_argument(
        "--run", default=None, help="run label (default: run-<millis>)"
    )
    brec.add_argument(
        "--id",
        dest="bench_id",
        default=None,
        help="benchmark id for injected --sample values",
    )
    brec.add_argument(
        "--sample",
        action="append",
        type=float,
        default=None,
        metavar="SECONDS",
        help="inject a sample instead of timing (repeatable; needs --id)",
    )
    brec.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply every sample (synthetic slowdowns for CI self-tests)",
    )
    brec.add_argument(
        "--workload",
        action="append",
        choices=["build", "query"],
        default=None,
        help="workload(s) to time (repeatable; default: both)",
    )
    brec.add_argument("--vertices", type=int, default=300)
    brec.add_argument("--attach", type=int, default=3)
    brec.add_argument("--cases", type=int, default=5)
    brec.add_argument("--queries", type=int, default=2000)
    brec.add_argument(
        "--repeat", type=int, default=3, help="samples per benchmark"
    )
    brec.add_argument("--seed", type=int, default=0)
    brec.add_argument(
        "--algorithm",
        choices=["bfs_aff", "bfs_all", "batched"],
        default="batched",
    )
    brec.set_defaults(func=_cmd_bench_record)

    bcmp = bsub.add_parser(
        "compare", help="regression verdict between two recorded runs"
    )
    bcmp.add_argument("--history", default="bench_history.jsonl")
    bcmp.add_argument(
        "--baseline", default=None, help="run label (default: second-newest)"
    )
    bcmp.add_argument(
        "--candidate", default=None, help="run label (default: newest)"
    )
    bcmp.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative slowdown tolerated before FAIL (default 0.10)",
    )
    bcmp.add_argument(
        "--statistic",
        choices=["min", "median", "mean"],
        default="min",
        help="per-run representative value (default: min-of-k)",
    )
    bcmp.add_argument(
        "--allow-cross-host",
        action="store_true",
        help="permit comparing runs recorded on different hosts",
    )
    bcmp.add_argument(
        "--allow-cross-tier",
        action="store_true",
        help="permit comparing runs recorded on different kernel tiers",
    )
    bcmp.add_argument(
        "--expect-regression",
        action="store_true",
        help="invert the exit code: succeed only if a regression is found",
    )
    bcmp.set_defaults(func=_cmd_bench_compare)

    bhist = bsub.add_parser("history", help="list recorded runs")
    bhist.add_argument("--history", default="bench_history.jsonl")
    bhist.set_defaults(func=_cmd_bench_history)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "kernels", None):
            from repro import kernels

            kernels.set_tier(args.kernels)
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
