"""SIEF construction driver: every single-edge failure case of a graph.

Implements the paper's overall build (§4.1–4.3) with its engineering
notes applied:

* the ``du`` distance vector is computed once per vertex and reused for
  all failed edges incident to it ("fix an end point of failed edges");
* ``G'`` is never materialized — BFS skips the failed edge inline;
* IDENTIFY and RELABEL are timed separately, feeding Table 5 and
  Figure 7 of the evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.affected import identify_affected, identify_affected_csr
from repro.core.batched import build_supplemental_batched
from repro.core.bfs_aff import build_supplemental_bfs_aff
from repro.core.bfs_all import build_supplemental_bfs_all
from repro.core.index import SIEFIndex
from repro.exceptions import IndexError_
from repro.graph.csr import CSRGraph
from repro.graph.frontier import bfs_bitparallel_csr, edge_positions
from repro.graph.graph import Graph, normalize_edge
from repro.graph.traversal import bfs_distances
from repro.labeling.label import Labeling
from repro.labeling.pll import build_pll
from repro.obs import hooks as _obs
from repro.obs.metrics import SIZE_EDGES

Edge = Tuple[int, int]

RELABEL_ALGORITHMS: Dict[str, Callable] = {
    "bfs_aff": build_supplemental_bfs_aff,
    "bfs_all": build_supplemental_bfs_all,
    "batched": build_supplemental_batched,
}

IDENTIFY_GROUP = 32
"""Failure cases identified per pair of bit-parallel sweeps in the
batched full build: each case contributes two roots (``u`` and ``v``),
so 32 cases fill the 64 lanes of one ``uint64`` sweep."""


def record_case_obs(reg, record: "EdgeBuildRecord") -> None:
    """Record one built failure case into a metrics registry.

    The single definition serves the serial builder, the lazy index and
    the parallel workers — which is what makes the parallel-vs-serial
    metrics-parity invariant (worker registries merged at join must sum
    to the serial totals) hold by construction for the deterministic
    counters.  Timing histograms are recorded too but are machine-
    dependent; parity is only promised for the counters.
    """
    reg.counter("sief.build.cases").inc()
    reg.counter("sief.build.relabel_invocations").inc()
    reg.counter("sief.build.affected_vertices").inc(record.affected_total)
    reg.counter("sief.build.supplemental_entries").inc(
        record.supplemental_entries
    )
    reg.counter("sief.build.relabel_expanded").inc(record.relabel_expanded)
    reg.histogram("sief.build.affected_per_case", SIZE_EDGES).observe(
        record.affected_total
    )
    reg.histogram("sief.build.entries_per_case", SIZE_EDGES).observe(
        record.supplemental_entries
    )
    reg.histogram("sief.build.identify_seconds").observe(
        record.identify_seconds
    )
    reg.histogram("sief.build.relabel_seconds").observe(
        record.relabel_seconds
    )


def build_one_case(
    graph,
    labeling,
    relabel: Callable,
    u: int,
    v: int,
    csr: Optional[CSRGraph] = None,
    dist_u=None,
    dist_v=None,
    dist_buf=None,
) -> Tuple[object, "EdgeBuildRecord"]:
    """IDENTIFY + RELABEL + measurement for one failed edge.

    The single case pipeline shared by the serial builder's
    :meth:`SIEFBuilder.build_case`, the lazy index and the parallel
    workers, so all four build paths stay bit-identical by construction.
    ``csr`` switches to the vectorized identify and is forwarded to the
    relabel callable (all registered algorithms accept it; the scalar
    ones ignore it).
    """
    t0 = time.perf_counter()
    if csr is not None:
        affected = identify_affected_csr(csr, u, v)
    else:
        affected = identify_affected(graph, u, v, dist_u=dist_u, dist_v=dist_v)
    t1 = time.perf_counter()
    si = relabel(graph, labeling, affected, dist_buf=dist_buf, csr=csr)
    t2 = time.perf_counter()
    record = EdgeBuildRecord(
        edge=normalize_edge(u, v),
        affected_u=len(affected.side_u),
        affected_v=len(affected.side_v),
        supplemental_entries=si.total_entries(),
        identify_seconds=t1 - t0,
        relabel_seconds=t2 - t1,
        relabel_expanded=si.search_expanded,
    )
    return si, record


@dataclass(frozen=True)
class EdgeBuildRecord:
    """Per-failure-case build measurements (one row of the raw data)."""

    edge: Edge
    affected_u: int
    affected_v: int
    supplemental_entries: int
    identify_seconds: float
    relabel_seconds: float
    relabel_expanded: int = 0

    @property
    def affected_total(self) -> int:
        """``|AV(u) ∪ AV(v)|`` for this case."""
        return self.affected_u + self.affected_v


@dataclass(frozen=True)
class BuildReport:
    """Aggregate of one full SIEF build."""

    algorithm: str
    records: Tuple[EdgeBuildRecord, ...]

    @property
    def num_cases(self) -> int:
        """Failure cases built."""
        return len(self.records)

    @property
    def identify_seconds(self) -> float:
        """Total IDENTIFY time (Table 5)."""
        return sum(r.identify_seconds for r in self.records)

    @property
    def relabel_seconds(self) -> float:
        """Total RELABEL time (Figure 7)."""
        return sum(r.relabel_seconds for r in self.records)

    @property
    def relabel_expanded(self) -> int:
        """Total vertices expanded by the RELABEL searches (Figure 7's
        machine-independent companion metric)."""
        return sum(r.relabel_expanded for r in self.records)

    @property
    def avg_affected(self) -> float:
        """Average ``|AU|`` per case (Table 3)."""
        if not self.records:
            return 0.0
        return sum(r.affected_total for r in self.records) / len(self.records)

    @property
    def avg_supplemental_entries(self) -> float:
        """Average SLEN per case (Table 3)."""
        if not self.records:
            return 0.0
        return sum(r.supplemental_entries for r in self.records) / len(self.records)

    @property
    def total_supplemental_entries(self) -> int:
        """Total supplemental entries (Figure 5)."""
        return sum(r.supplemental_entries for r in self.records)


class SIEFBuilder:
    """Builds a :class:`SIEFIndex` for a graph.

    Parameters
    ----------
    graph:
        Undirected, unweighted graph ``G``.
    labeling:
        Optional prebuilt well-ordered 2-hop cover; built with PLL
        (degree ordering) when omitted.
    algorithm:
        ``"bfs_all"`` (default, the paper's fastest) or ``"bfs_aff"``.
    """

    def __init__(
        self,
        graph: Graph,
        labeling: Optional[Labeling] = None,
        algorithm: str = "bfs_all",
    ) -> None:
        if algorithm not in RELABEL_ALGORITHMS:
            raise IndexError_(
                f"unknown relabel algorithm {algorithm!r}; "
                f"choose from {sorted(RELABEL_ALGORITHMS)}"
            )
        self.graph = graph
        self.labeling = labeling if labeling is not None else build_pll(graph)
        self.algorithm = algorithm
        self._relabel = RELABEL_ALGORITHMS[algorithm]
        self._csr_cache: Optional[CSRGraph] = None

    def _csr(self) -> CSRGraph:
        """CSR snapshot of the (immutable during a build) graph."""
        if self._csr_cache is None:
            self._csr_cache = CSRGraph.from_graph(self.graph)
        return self._csr_cache

    # -- single case --------------------------------------------------------

    def build_case(self, u: int, v: int) -> Tuple[object, EdgeBuildRecord]:
        """Build the supplemental index for one failed edge.

        Returns ``(SupplementalIndex, EdgeBuildRecord)``.
        """
        csr = self._csr() if self.algorithm == "batched" else None
        si, record = build_one_case(
            self.graph, self.labeling, self._relabel, u, v, csr=csr
        )
        reg = _obs.registry
        if reg is not None:
            record_case_obs(reg, record)
        return si, record

    # -- full build ----------------------------------------------------------

    def build(
        self, edges: Optional[Iterable[Edge]] = None
    ) -> Tuple[SIEFIndex, BuildReport]:
        """Build supplements for all edges (or a given subset).

        Edges are grouped by their smaller endpoint so that endpoint's
        distance vector is computed once and shared across the group.
        """
        if edges is None:
            edge_list: List[Edge] = list(self.graph.edges())
        else:
            edge_list = [normalize_edge(*e) for e in edges]
        edge_list.sort()

        index = SIEFIndex(self.labeling)
        records: List[EdgeBuildRecord] = []
        reg = _obs.registry
        with _obs.span("sief.build"):
            if self.algorithm == "batched":
                case_iter = self._iter_cases_batched(edge_list)
            else:
                case_iter = self._iter_cases_scalar(edge_list)
            for edge, si, record in case_iter:
                index.add_supplement(edge, si)
                records.append(record)
                if reg is not None:
                    record_case_obs(reg, record)
                prog = _obs.progress
                if prog is not None:
                    prog.advance()
        return index, BuildReport(self.algorithm, tuple(records))

    def _iter_cases_scalar(self, edge_list: Sequence[Edge]):
        """Per-case scalar pipeline (the seed's build loop, unchanged)."""
        dist_buf = [-1] * self.graph.num_vertices
        current_u = -1
        du: Optional[List[int]] = None
        for u, v in edge_list:
            with _obs.span("sief.build.case"):
                t0 = time.perf_counter()
                if u != current_u:
                    current_u = u
                    du = bfs_distances(self.graph, u)
                dv = bfs_distances(self.graph, v)
                affected = identify_affected(
                    self.graph, u, v, dist_u=du, dist_v=dv
                )
                t1 = time.perf_counter()
                si = self._relabel(
                    self.graph, self.labeling, affected, dist_buf=dist_buf
                )
                t2 = time.perf_counter()
                record = EdgeBuildRecord(
                    edge=(u, v),
                    affected_u=len(affected.side_u),
                    affected_v=len(affected.side_v),
                    supplemental_entries=si.total_entries(),
                    identify_seconds=t1 - t0,
                    relabel_seconds=t2 - t1,
                    relabel_expanded=si.search_expanded,
                )
            yield (u, v), si, record

    def _iter_cases_batched(self, edge_list: Sequence[Edge]):
        """Cross-case IDENTIFY batching + bit-parallel RELABEL.

        Groups :data:`IDENTIFY_GROUP` failure cases per iteration.  Each
        case needs four distance rows (``du``, ``dv`` on ``G`` and
        ``d'u``, ``d'v`` on ``G'``); packing the ``(u, v)`` roots of the
        whole group into the 64 lanes of two bit-parallel sweeps — one
        unmasked, one with a per-lane mask on that lane's failed edge —
        amortizes the frontier bookkeeping across the group.  The sweep
        time is split evenly across the group's records so per-case
        ``identify_seconds`` still sums to the true total.
        """
        csr = self._csr()
        indptr, indices = csr.indptr, csr.indices
        for g0 in range(0, len(edge_list), IDENTIFY_GROUP):
            group = edge_list[g0 : g0 + IDENTIFY_GROUP]
            t0 = time.perf_counter()
            with _obs.span("sief.build.identify_sweep"):
                pairs = [
                    edge_positions(indptr, indices, u, v) for u, v in group
                ]
                roots: List[int] = []
                for u, v in group:
                    roots.append(u)
                    roots.append(v)
                base, _ = bfs_bitparallel_csr(indptr, indices, roots)
                avoid = [pairs[i // 2] for i in range(len(roots))]
                prime, _ = bfs_bitparallel_csr(
                    indptr, indices, roots, avoid_positions=avoid
                )
            sweep_share = (time.perf_counter() - t0) / len(group)
            for ci, (u, v) in enumerate(group):
                with _obs.span("sief.build.case"):
                    t1 = time.perf_counter()
                    affected = identify_affected_csr(
                        csr,
                        u,
                        v,
                        du=base[2 * ci],
                        dv=base[2 * ci + 1],
                        du_new=prime[2 * ci],
                        dv_new=prime[2 * ci + 1],
                    )
                    t2 = time.perf_counter()
                    si = self._relabel(
                        self.graph, self.labeling, affected, csr=csr
                    )
                    t3 = time.perf_counter()
                record = EdgeBuildRecord(
                    edge=(u, v),
                    affected_u=len(affected.side_u),
                    affected_v=len(affected.side_v),
                    supplemental_entries=si.total_entries(),
                    identify_seconds=sweep_share + (t2 - t1),
                    relabel_seconds=t3 - t2,
                    relabel_expanded=si.search_expanded,
                )
                yield (u, v), si, record


def build_sief(
    graph: Graph,
    labeling: Optional[Labeling] = None,
    algorithm: str = "bfs_all",
    edges: Optional[Sequence[Edge]] = None,
) -> SIEFIndex:
    """One-call convenience: PLL (if needed) + full SIEF build."""
    index, _ = SIEFBuilder(graph, labeling, algorithm).build(edges)
    return index
