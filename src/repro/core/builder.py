"""SIEF construction driver: every single-edge failure case of a graph.

Implements the paper's overall build (§4.1–4.3) with its engineering
notes applied:

* the ``du`` distance vector is computed once per vertex and reused for
  all failed edges incident to it ("fix an end point of failed edges");
* ``G'`` is never materialized — BFS skips the failed edge inline;
* IDENTIFY and RELABEL are timed separately, feeding Table 5 and
  Figure 7 of the evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.affected import identify_affected
from repro.core.bfs_aff import build_supplemental_bfs_aff
from repro.core.bfs_all import build_supplemental_bfs_all
from repro.core.index import SIEFIndex
from repro.exceptions import IndexError_
from repro.graph.graph import Graph, normalize_edge
from repro.graph.traversal import bfs_distances
from repro.labeling.label import Labeling
from repro.labeling.pll import build_pll
from repro.obs import hooks as _obs
from repro.obs.metrics import SIZE_EDGES

Edge = Tuple[int, int]

RELABEL_ALGORITHMS: Dict[str, Callable] = {
    "bfs_aff": build_supplemental_bfs_aff,
    "bfs_all": build_supplemental_bfs_all,
}


def record_case_obs(reg, record: "EdgeBuildRecord") -> None:
    """Record one built failure case into a metrics registry.

    The single definition serves the serial builder, the lazy index and
    the parallel workers — which is what makes the parallel-vs-serial
    metrics-parity invariant (worker registries merged at join must sum
    to the serial totals) hold by construction for the deterministic
    counters.  Timing histograms are recorded too but are machine-
    dependent; parity is only promised for the counters.
    """
    reg.counter("sief.build.cases").inc()
    reg.counter("sief.build.relabel_invocations").inc()
    reg.counter("sief.build.affected_vertices").inc(record.affected_total)
    reg.counter("sief.build.supplemental_entries").inc(
        record.supplemental_entries
    )
    reg.counter("sief.build.relabel_expanded").inc(record.relabel_expanded)
    reg.histogram("sief.build.affected_per_case", SIZE_EDGES).observe(
        record.affected_total
    )
    reg.histogram("sief.build.entries_per_case", SIZE_EDGES).observe(
        record.supplemental_entries
    )
    reg.histogram("sief.build.identify_seconds").observe(
        record.identify_seconds
    )
    reg.histogram("sief.build.relabel_seconds").observe(
        record.relabel_seconds
    )


@dataclass(frozen=True)
class EdgeBuildRecord:
    """Per-failure-case build measurements (one row of the raw data)."""

    edge: Edge
    affected_u: int
    affected_v: int
    supplemental_entries: int
    identify_seconds: float
    relabel_seconds: float
    relabel_expanded: int = 0

    @property
    def affected_total(self) -> int:
        """``|AV(u) ∪ AV(v)|`` for this case."""
        return self.affected_u + self.affected_v


@dataclass(frozen=True)
class BuildReport:
    """Aggregate of one full SIEF build."""

    algorithm: str
    records: Tuple[EdgeBuildRecord, ...]

    @property
    def num_cases(self) -> int:
        """Failure cases built."""
        return len(self.records)

    @property
    def identify_seconds(self) -> float:
        """Total IDENTIFY time (Table 5)."""
        return sum(r.identify_seconds for r in self.records)

    @property
    def relabel_seconds(self) -> float:
        """Total RELABEL time (Figure 7)."""
        return sum(r.relabel_seconds for r in self.records)

    @property
    def relabel_expanded(self) -> int:
        """Total vertices expanded by the RELABEL searches (Figure 7's
        machine-independent companion metric)."""
        return sum(r.relabel_expanded for r in self.records)

    @property
    def avg_affected(self) -> float:
        """Average ``|AU|`` per case (Table 3)."""
        if not self.records:
            return 0.0
        return sum(r.affected_total for r in self.records) / len(self.records)

    @property
    def avg_supplemental_entries(self) -> float:
        """Average SLEN per case (Table 3)."""
        if not self.records:
            return 0.0
        return sum(r.supplemental_entries for r in self.records) / len(self.records)

    @property
    def total_supplemental_entries(self) -> int:
        """Total supplemental entries (Figure 5)."""
        return sum(r.supplemental_entries for r in self.records)


class SIEFBuilder:
    """Builds a :class:`SIEFIndex` for a graph.

    Parameters
    ----------
    graph:
        Undirected, unweighted graph ``G``.
    labeling:
        Optional prebuilt well-ordered 2-hop cover; built with PLL
        (degree ordering) when omitted.
    algorithm:
        ``"bfs_all"`` (default, the paper's fastest) or ``"bfs_aff"``.
    """

    def __init__(
        self,
        graph: Graph,
        labeling: Optional[Labeling] = None,
        algorithm: str = "bfs_all",
    ) -> None:
        if algorithm not in RELABEL_ALGORITHMS:
            raise IndexError_(
                f"unknown relabel algorithm {algorithm!r}; "
                f"choose from {sorted(RELABEL_ALGORITHMS)}"
            )
        self.graph = graph
        self.labeling = labeling if labeling is not None else build_pll(graph)
        self.algorithm = algorithm
        self._relabel = RELABEL_ALGORITHMS[algorithm]

    # -- single case --------------------------------------------------------

    def build_case(self, u: int, v: int) -> Tuple[object, EdgeBuildRecord]:
        """Build the supplemental index for one failed edge.

        Returns ``(SupplementalIndex, EdgeBuildRecord)``.
        """
        t0 = time.perf_counter()
        affected = identify_affected(self.graph, u, v)
        t1 = time.perf_counter()
        si = self._relabel(self.graph, self.labeling, affected)
        t2 = time.perf_counter()
        record = EdgeBuildRecord(
            edge=normalize_edge(u, v),
            affected_u=len(affected.side_u),
            affected_v=len(affected.side_v),
            supplemental_entries=si.total_entries(),
            identify_seconds=t1 - t0,
            relabel_seconds=t2 - t1,
            relabel_expanded=si.search_expanded,
        )
        reg = _obs.registry
        if reg is not None:
            record_case_obs(reg, record)
        return si, record

    # -- full build ----------------------------------------------------------

    def build(
        self, edges: Optional[Iterable[Edge]] = None
    ) -> Tuple[SIEFIndex, BuildReport]:
        """Build supplements for all edges (or a given subset).

        Edges are grouped by their smaller endpoint so that endpoint's
        distance vector is computed once and shared across the group.
        """
        if edges is None:
            edge_list: List[Edge] = list(self.graph.edges())
        else:
            edge_list = [normalize_edge(*e) for e in edges]
        edge_list.sort()

        index = SIEFIndex(self.labeling)
        records: List[EdgeBuildRecord] = []
        dist_buf = [-1] * self.graph.num_vertices

        reg = _obs.registry
        current_u = -1
        du: Optional[List[int]] = None
        with _obs.span("sief.build"):
            for u, v in edge_list:
                t0 = time.perf_counter()
                if u != current_u:
                    current_u = u
                    du = bfs_distances(self.graph, u)
                dv = bfs_distances(self.graph, v)
                affected = identify_affected(
                    self.graph, u, v, dist_u=du, dist_v=dv
                )
                t1 = time.perf_counter()
                si = self._relabel(
                    self.graph, self.labeling, affected, dist_buf=dist_buf
                )
                t2 = time.perf_counter()
                index.add_supplement((u, v), si)
                record = EdgeBuildRecord(
                    edge=(u, v),
                    affected_u=len(affected.side_u),
                    affected_v=len(affected.side_v),
                    supplemental_entries=si.total_entries(),
                    identify_seconds=t1 - t0,
                    relabel_seconds=t2 - t1,
                    relabel_expanded=si.search_expanded,
                )
                records.append(record)
                if reg is not None:
                    record_case_obs(reg, record)
        return index, BuildReport(self.algorithm, tuple(records))


def build_sief(
    graph: Graph,
    labeling: Optional[Labeling] = None,
    algorithm: str = "bfs_all",
    edges: Optional[Sequence[Edge]] = None,
) -> SIEFIndex:
    """One-call convenience: PLL (if needed) + full SIEF build."""
    index, _ = SIEFBuilder(graph, labeling, algorithm).build(edges)
    return index
