"""IDENTIFY stage: affected vertices of a single-edge failure (Algorithm 1).

For a failed edge ``(u, v)``, a vertex is *affected* iff its distance to
some other vertex changes in ``G' = G - (u, v)`` (Definition 2).  §4.2
proves the affected set splits into two disjoint sides:

* ``AV(u)`` — vertices whose distance **to v** changed (their shortest
  paths to ``v`` all crossed the failed edge, ending at the ``u`` side);
* ``AV(v)`` — symmetrically, vertices whose distance **to u** changed.

Lemma 7 gives the membership test ``d_G(w, v) == d_G(w, u) + 1`` combined
with "distance to ``v`` actually changed", and Lemma 8 shows each side is
reachable from its root through affected vertices only — so one BFS from
``u`` (resp. ``v``) restricted to vertices passing the test finds the
whole side.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EdgeNotFound, GraphError
from repro.graph.frontier import (
    bfs_bitparallel_csr,
    bfs_distances_csr,
    edge_positions,
)
from repro.graph.traversal import (
    UNREACHED,
    bfs_distances,
    bfs_distances_avoiding_edge,
)


@dataclass(frozen=True)
class AffectedVertices:
    """The two affected sides of one failed edge, each sorted ascending.

    ``side_u``/``side_v`` are the paper's ``AV(u,v)(u)`` and
    ``AV(u,v)(v)``.  The sets are disjoint (proved after Lemma 8); both
    always contain their own root.

    ``disconnected`` is True when the failed edge is a *bridge*: ``G'``
    separates the two sides, every cross-side distance is infinite, and
    the supplemental index is empty by construction — the relabel
    algorithms skip all search work for such cases instead of running
    one doomed BFS per affected root.
    """

    u: int
    v: int
    side_u: Tuple[int, ...]
    side_v: Tuple[int, ...]
    disconnected: bool = False

    @property
    def total(self) -> int:
        """``|AV(u) ∪ AV(v)|`` — the paper's ``|AU|`` statistic."""
        return len(self.side_u) + len(self.side_v)

    def contains(self, vertex: int) -> Optional[str]:
        """Which side holds ``vertex``: ``'u'``, ``'v'``, or ``None``.

        Binary search on the sorted sides, exactly the membership test the
        paper's query evaluation describes (§5.2.4).
        """
        if _sorted_member(self.side_u, vertex):
            return "u"
        if _sorted_member(self.side_v, vertex):
            return "v"
        return None


def _sorted_member(arr: Sequence[int], x: int) -> bool:
    i = bisect.bisect_left(arr, x)
    return i < len(arr) and arr[i] == x


def _grow_side(
    adj,
    root: int,
    d_near: List[int],
    d_far: List[int],
    d_far_new: List[int],
) -> List[int]:
    """BFS over ``G`` from ``root`` collecting one affected side.

    ``d_near`` holds distances (in ``G``) to the root's endpoint,
    ``d_far`` to the opposite endpoint, ``d_far_new`` the same in ``G'``.
    A neighbor ``r`` joins iff Lemma 7's equation holds **and** its
    distance to the far endpoint changed:

    ``d_far[r] == d_near[r] + 1  and  d_far_new[r] != d_near[r] + 1``
    """
    member = [False] * len(adj)
    member[root] = True
    side = [root]
    queue = deque((root,))
    while queue:
        t = queue.popleft()
        for r in adj[t]:
            if member[r]:
                continue
            near = d_near[r]
            if near == UNREACHED:
                continue
            if d_far[r] == near + 1 and d_far_new[r] != near + 1:
                member[r] = True
                side.append(r)
                queue.append(r)
    side.sort()
    return side


def identify_affected(
    graph,
    u: int,
    v: int,
    dist_u: Optional[List[int]] = None,
    dist_v: Optional[List[int]] = None,
) -> AffectedVertices:
    """Algorithm 1: compute ``AV(u)`` and ``AV(v)`` for failed edge ``(u, v)``.

    Parameters
    ----------
    graph:
        The original graph ``G``; must contain the edge.
    u, v:
        The failed edge's endpoints.
    dist_u, dist_v:
        Optional precomputed BFS distance vectors from ``u`` and ``v`` on
        ``G`` — the builder reuses ``dist_u`` across all edges incident to
        ``u`` ("we will fix an end point of failed edges", §4.2).

    Notes
    -----
    Four BFS passes at most: ``du``, ``dv`` on ``G`` and ``d'u``, ``d'v``
    on ``G'``.  ``G'`` is never materialized — the failed edge is skipped
    inline.
    """
    if not graph.has_edge(u, v):
        raise EdgeNotFound(u, v)
    adj = graph.adjacency()
    du = dist_u if dist_u is not None else bfs_distances(graph, u)
    dv = dist_v if dist_v is not None else bfs_distances(graph, v)
    du_new = bfs_distances_avoiding_edge(graph, u, (u, v))
    dv_new = bfs_distances_avoiding_edge(graph, v, (u, v))

    side_u = _grow_side(adj, u, du, dv, dv_new)
    side_v = _grow_side(adj, v, dv, du, du_new)
    return AffectedVertices(
        u=u,
        v=v,
        side_u=tuple(side_u),
        side_v=tuple(side_v),
        disconnected=du_new[v] == UNREACHED,
    )


def identify_affected_csr(
    csr,
    u: int,
    v: int,
    du: Optional[np.ndarray] = None,
    dv: Optional[np.ndarray] = None,
    du_new: Optional[np.ndarray] = None,
    dv_new: Optional[np.ndarray] = None,
) -> AffectedVertices:
    """Algorithm 1 on the vectorized frontier kernels — same output.

    Parameters
    ----------
    csr:
        A :class:`~repro.graph.csr.CSRGraph` snapshot of ``G``.
    u, v:
        The failed edge's endpoints; must exist in ``csr``.
    du, dv, du_new, dv_new:
        Optional precomputed ``int32`` distance rows (from ``u`` and
        ``v``, on ``G`` and on ``G' = G - (u, v)`` respectively).  The
        batched builder computes these 32 cases at a time with two
        bit-parallel sweeps and passes them in; when omitted they are
        computed here with the same kernels (two 2-lane sweeps).

    The Lemma 7 membership test becomes one vectorized boolean
    expression per side, and the Lemma 8 side growth is the masked
    single-source kernel (:func:`repro.graph.frontier.bfs_distances_csr`
    with ``allowed=``).  Output is exactly
    :func:`identify_affected`'s — Python-int sorted side tuples — which
    the parity suite asserts.
    """
    indptr = csr.indptr
    indices = csr.indices
    try:
        pair = edge_positions(indptr, indices, u, v)
    except GraphError:
        raise EdgeNotFound(u, v) from None
    if du is None or dv is None:
        base, _ = bfs_bitparallel_csr(indptr, indices, (u, v))
        du, dv = base[0], base[1]
    if du_new is None or dv_new is None:
        prime, _ = bfs_bitparallel_csr(
            indptr, indices, (u, v), avoid_positions=pair
        )
        du_new, dv_new = prime[0], prime[1]

    # Lemma 7 per side, vectorized; the root joins unconditionally via
    # the BFS source exemption in the masked kernel.
    near_ok = du != UNREACHED
    elig_u = near_ok & (dv == du + 1) & (dv_new != du + 1)
    near_ok_v = dv != UNREACHED
    elig_v = near_ok_v & (du == dv + 1) & (du_new != dv + 1)

    side_u_dist = bfs_distances_csr(indptr, indices, u, allowed=elig_u)
    side_v_dist = bfs_distances_csr(indptr, indices, v, allowed=elig_v)
    side_u = tuple(map(int, np.flatnonzero(side_u_dist != UNREACHED)))
    side_v = tuple(map(int, np.flatnonzero(side_v_dist != UNREACHED)))
    return AffectedVertices(
        u=u,
        v=v,
        side_u=side_u,
        side_v=side_v,
        disconnected=int(du_new[v]) == UNREACHED,
    )


def affected_by_definition(graph, u: int, v: int) -> Tuple[List[int], List[int]]:
    """Brute-force affected sides straight from Definition 2 (test oracle).

    Compares all-pairs distances of ``G`` and ``G'`` (``O(n·m)``); returns
    the vertices whose distance *to v* (resp. *to u*) changed — which §4.2
    shows is exactly the ``AV(u)`` / ``AV(v)`` split.
    """
    side_u: List[int] = []
    side_v: List[int] = []
    dv_old = bfs_distances(graph, v)
    dv_new = bfs_distances_avoiding_edge(graph, v, (u, v))
    du_old = bfs_distances(graph, u)
    du_new = bfs_distances_avoiding_edge(graph, u, (u, v))
    for w in range(graph.num_vertices):
        if dv_old[w] != dv_new[w]:
            side_u.append(w)
        if du_old[w] != du_new[w]:
            side_v.append(w)
    return side_u, side_v
