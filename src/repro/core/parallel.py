"""Parallel SIEF construction.

Failure cases are independent — the per-edge IDENTIFY + RELABEL pipeline
reads the graph and labeling and writes only its own supplement — so the
full build parallelizes embarrassingly across processes.  The paper ran
on a 32-core Xeon without exploiting this; in CPython (GIL) processes
are the only way to.

Two transport modes hand workers the (read-only) build inputs:

* **shared memory** (default when a pool is used): the parent publishes
  one :mod:`repro.core.shm` arena — CSR arrays, frozen labeling arrays,
  ordering permutation — and each worker attaches zero-copy read-only
  views.  Startup cost is independent of index size; the parent
  guarantees ``close()``/``unlink()`` in a ``finally`` so no ``/dev/shm``
  segment survives success, a worker exception, or ``KeyboardInterrupt``.
* **pickle** (``shared_memory=False``): the legacy one-time pickling of
  the graph and labeling into the pool initializer; kept as the
  reference transport for the three-way parity tests.

Either way each worker returns its chunk's supplemental indexes, which
the parent merges into a normal :class:`~repro.core.index.SIEFIndex` —
bit-identical to a serial build (asserted in tests).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro.core.builder import (
    RELABEL_ALGORITHMS,
    BuildReport,
    EdgeBuildRecord,
    build_one_case,
    record_case_obs,
)
from repro.core.index import SIEFIndex
from repro.core.shm import attach_build_inputs, publish_build_inputs
from repro.exceptions import IndexError_
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph, normalize_edge
from repro.labeling.label import Labeling
from repro.labeling.pll import build_pll
from repro.obs import hooks as _obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SpanProfiler
from repro.obs.trace import TraceRecorder

Edge = Tuple[int, int]

_WORKER_SPAN_CAPACITY = 4096
"""Ring capacity of each worker chunk's private trace recorder."""

# Worker-global state, installed once per process by an initializer.
_STATE: dict = {}


def _init_worker(
    graph: Graph,
    labeling: Labeling,
    algorithm: str,
    obs: bool = False,
    trace: bool = False,
    profile: bool = False,
) -> None:
    """Legacy transport: inputs arrive pickled (or fork-copied)."""
    _STATE.clear()
    _STATE["graph"] = graph
    _STATE["labeling"] = labeling
    _STATE["algorithm"] = algorithm
    _STATE["relabel"] = RELABEL_ALGORITHMS[algorithm]
    _STATE["obs"] = obs
    _STATE["trace"] = trace
    _STATE["profile"] = profile
    _STATE["csr"] = None


def _init_worker_shm(
    spec: dict,
    algorithm: str,
    obs: bool = False,
    trace: bool = False,
    profile: bool = False,
) -> None:
    """Shared-memory transport: attach read-only views from the spec."""
    _STATE.clear()
    arena, csr, labeling = attach_build_inputs(spec)
    _STATE["arena"] = arena  # keeps the mapping alive for the views
    _STATE["csr"] = csr
    _STATE["labeling"] = labeling
    _STATE["graph"] = None  # materialized lazily for scalar algorithms
    _STATE["algorithm"] = algorithm
    _STATE["relabel"] = RELABEL_ALGORITHMS[algorithm]
    _STATE["obs"] = obs
    _STATE["trace"] = trace
    _STATE["profile"] = profile
    _STATE["attached"] = True


def _worker_graph() -> Graph:
    """The worker's Graph, rebuilding it from shared CSR on first use.

    Only the scalar relabel algorithms walk adjacency lists; the batched
    algorithm runs straight off the shared CSR arrays, so shm workers
    with ``algorithm="batched"`` never pay this materialization.
    """
    graph = _STATE.get("graph")
    if graph is None:
        graph = Graph.from_sorted_adjacency(_STATE["csr"].to_adjacency())
        _STATE["graph"] = graph
    return graph


def _build_chunk(edges: Sequence[Edge]):
    """Build every case in the chunk.

    Returns ``(pairs, metrics_snapshot, obs_extra)`` where ``pairs`` is
    the list of ``(si, record)`` tuples, ``metrics_snapshot`` is the
    chunk-local registry's snapshot (or ``None`` when observability is
    off), and ``obs_extra`` carries the chunk's trace spans and profile
    counts (or ``None`` when neither is on).  Each chunk gets its
    **own** registry/tracer/profiler — worker processes never write the
    parent's — and the parent merges everything at join, so parallel
    builds report exactly the counters a serial build would, plus one
    trace track per worker pid.
    """
    labeling = _STATE["labeling"]
    relabel = _STATE["relabel"]
    chunk_reg = MetricsRegistry() if _STATE.get("obs") else None
    chunk_tracer = (
        TraceRecorder(capacity=_WORKER_SPAN_CAPACITY)
        if _STATE.get("trace")
        else None
    )
    chunk_profiler = None
    if _STATE.get("profile") and chunk_tracer is not None:
        chunk_profiler = SpanProfiler(chunk_tracer)
        chunk_profiler.start()
    if chunk_reg is not None and _STATE.pop("attached", False):
        chunk_reg.counter("sief.shm.worker_attaches").inc()
    if _STATE["algorithm"] == "batched":
        csr = _STATE.get("csr")
        if csr is None:
            csr = CSRGraph.from_graph(_STATE["graph"])
            _STATE["csr"] = csr
        graph = _STATE.get("graph")  # unused by the batched pipeline
    else:
        csr = None
        graph = _worker_graph()
    out = []
    try:
        for u, v in edges:
            if chunk_tracer is not None:
                with chunk_tracer.span("sief.build.case"):
                    si, record = build_one_case(
                        graph, labeling, relabel, u, v, csr=csr
                    )
            else:
                si, record = build_one_case(
                    graph, labeling, relabel, u, v, csr=csr
                )
            if chunk_reg is not None:
                record_case_obs(chunk_reg, record)
            out.append((si, record))
    finally:
        if chunk_profiler is not None:
            chunk_profiler.stop()
    obs_extra = None
    if chunk_tracer is not None:
        if chunk_reg is not None:
            chunk_tracer.sync_registry(chunk_reg)
        obs_extra = {
            "pid": os.getpid(),
            "spans": chunk_tracer.records(),
            "profile": dict(chunk_profiler.counts)
            if chunk_profiler is not None
            else None,
        }
    snapshot = chunk_reg.snapshot() if chunk_reg is not None else None
    return out, snapshot, obs_extra


def _chunks(items: List[Edge], count: int) -> List[List[Edge]]:
    """Split ``items`` into at most ``count`` contiguous balanced chunks.

    Sizes differ by at most one (remainder spread over the leading
    chunks), so no worker idles on a stub chunk near the end of a build;
    no chunk is ever empty.
    """
    if not items:
        return []
    count = min(count, len(items))
    base, rem = divmod(len(items), count)
    out: List[List[Edge]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < rem else 0)
        out.append(items[start : start + size])
        start += size
    return out


def build_sief_parallel(
    graph: Graph,
    labeling: Optional[Labeling] = None,
    algorithm: str = "bfs_all",
    workers: Optional[int] = None,
    edges: Optional[Sequence[Edge]] = None,
    shared_memory: Optional[bool] = None,
) -> Tuple[SIEFIndex, BuildReport]:
    """Build a SIEF index using a pool of worker processes.

    Parameters mirror :class:`~repro.core.builder.SIEFBuilder` plus
    ``workers`` (default: CPU count) and ``shared_memory`` (default:
    use the shm transport whenever a pool is actually spawned; pass
    ``False`` to force the legacy pickle transport).  With one worker
    everything runs in-process (no pool), which keeps small builds and
    tests cheap.
    """
    if algorithm not in RELABEL_ALGORITHMS:
        raise IndexError_(
            f"unknown relabel algorithm {algorithm!r}; "
            f"choose from {sorted(RELABEL_ALGORITHMS)}"
        )
    if labeling is None:
        labeling = build_pll(graph)
    if edges is None:
        edge_list = sorted(graph.edges())
    else:
        edge_list = sorted(normalize_edge(*e) for e in edges)
    if workers is None:
        workers = multiprocessing.cpu_count()

    index = SIEFIndex(labeling)
    records: List[EdgeBuildRecord] = []
    parent_reg = _obs.registry
    parent_tracer = _obs.tracer
    parent_profiler = _obs.profiler
    obs_enabled = parent_reg is not None
    use_pool = workers > 1 and len(edge_list) >= 4
    if shared_memory is None:
        shared_memory = use_pool
    # Worker-side tracing/profiling only makes sense with a real pool:
    # the in-process path already runs under the parent's hooks, so
    # giving it a second tracer would double-record every case span.
    trace_enabled = use_pool and parent_tracer is not None
    profile_enabled = trace_enabled and parent_profiler is not None

    def _drain(iterable):
        """Collect chunk results, ticking live progress per chunk."""
        prog = _obs.progress
        results = []
        for res in iterable:
            if prog is not None:
                prog.advance(len(res[0]))
            results.append(res)
        return results

    with _obs.span("sief.build.parallel"):
        if not use_pool:
            _init_worker(graph, labeling, algorithm, obs=obs_enabled)
            results = _drain([_build_chunk(edge_list)])
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context("spawn")
            chunks = _chunks(edge_list, workers * 4)
            if shared_memory:
                csr = CSRGraph.from_graph(graph)
                labeling.freeze()
                arena = publish_build_inputs(csr, labeling)
                try:
                    with ctx.Pool(
                        processes=workers,
                        initializer=_init_worker_shm,
                        initargs=(
                            arena.spec(),
                            algorithm,
                            obs_enabled,
                            trace_enabled,
                            profile_enabled,
                        ),
                    ) as pool:
                        # imap_unordered so completed chunks surface as
                        # they finish (live progress); merge order does
                        # not matter — records are sorted below and the
                        # metric merges are commutative.
                        results = _drain(
                            pool.imap_unordered(_build_chunk, chunks)
                        )
                finally:
                    # Runs on success, worker exception, and
                    # KeyboardInterrupt alike; the Pool context manager
                    # has already terminated the children, so no worker
                    # still maps the segment.
                    arena.close()
                    arena.unlink()
            else:
                with ctx.Pool(
                    processes=workers,
                    initializer=_init_worker,
                    initargs=(
                        graph,
                        labeling,
                        algorithm,
                        obs_enabled,
                        trace_enabled,
                        profile_enabled,
                    ),
                ) as pool:
                    results = _drain(
                        pool.imap_unordered(_build_chunk, chunks)
                    )

        worker_spans: dict = {}
        for chunk, snapshot, obs_extra in results:
            if snapshot is not None and parent_reg is not None:
                parent_reg.merge_snapshot(snapshot)
            if obs_extra is not None:
                worker_spans.setdefault(obs_extra["pid"], []).extend(
                    obs_extra["spans"]
                )
                counts = obs_extra.get("profile")
                if counts and parent_profiler is not None:
                    parent_profiler.merge(counts)
            for si, record in chunk:
                index.add_supplement(record.edge, si)
                records.append(record)
        if parent_tracer is not None:
            for pid in sorted(worker_spans):
                parent_tracer.add_track(
                    f"worker-{pid}", worker_spans[pid]
                )
    records.sort(key=lambda r: r.edge)
    return index, BuildReport(algorithm, tuple(records))
