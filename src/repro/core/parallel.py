"""Parallel SIEF construction.

Failure cases are independent — the per-edge IDENTIFY + RELABEL pipeline
reads the graph and labeling and writes only its own supplement — so the
full build parallelizes embarrassingly across processes.  The paper ran
on a 32-core Xeon without exploiting this; in CPython (GIL) processes
are the only way to.

Workers inherit the graph and labeling via the process-start copy (fork)
or one-time pickling (spawn); each returns its chunk's supplemental
indexes, which the parent merges into a normal
:class:`~repro.core.index.SIEFIndex` — bit-identical to a serial build
(asserted in tests).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional, Sequence, Tuple

from repro.core.affected import identify_affected
from repro.core.builder import (
    RELABEL_ALGORITHMS,
    BuildReport,
    EdgeBuildRecord,
    record_case_obs,
)
from repro.core.index import SIEFIndex
from repro.exceptions import IndexError_
from repro.graph.graph import Graph, normalize_edge
from repro.labeling.label import Labeling
from repro.labeling.pll import build_pll
from repro.obs import hooks as _obs
from repro.obs.metrics import MetricsRegistry

Edge = Tuple[int, int]

# Worker-global state, installed once per process by _init_worker.
_STATE: dict = {}


def _init_worker(
    graph: Graph, labeling: Labeling, algorithm: str, obs: bool = False
) -> None:
    _STATE["graph"] = graph
    _STATE["labeling"] = labeling
    _STATE["relabel"] = RELABEL_ALGORITHMS[algorithm]
    _STATE["obs"] = obs


def _build_chunk(edges: Sequence[Edge]):
    """Build every case in the chunk.

    Returns ``(triples, metrics_snapshot)`` where ``triples`` is the
    list of ``(si, record)`` pairs and ``metrics_snapshot`` is the
    chunk-local registry's snapshot (or ``None`` when observability is
    off).  Each chunk gets its **own** registry — worker processes never
    write the parent's — and the parent merges the snapshots at join,
    so parallel builds report exactly the counters a serial build would.
    """
    graph = _STATE["graph"]
    labeling = _STATE["labeling"]
    relabel = _STATE["relabel"]
    chunk_reg = MetricsRegistry() if _STATE.get("obs") else None
    out = []
    for u, v in edges:
        t0 = time.perf_counter()
        affected = identify_affected(graph, u, v)
        t1 = time.perf_counter()
        si = relabel(graph, labeling, affected)
        t2 = time.perf_counter()
        record = EdgeBuildRecord(
            edge=(u, v),
            affected_u=len(affected.side_u),
            affected_v=len(affected.side_v),
            supplemental_entries=si.total_entries(),
            identify_seconds=t1 - t0,
            relabel_seconds=t2 - t1,
            relabel_expanded=si.search_expanded,
        )
        if chunk_reg is not None:
            record_case_obs(chunk_reg, record)
        out.append((si, record))
    return out, (chunk_reg.snapshot() if chunk_reg is not None else None)


def _chunks(items: List[Edge], count: int) -> List[List[Edge]]:
    """Split ``items`` into at most ``count`` contiguous balanced chunks.

    Sizes differ by at most one (remainder spread over the leading
    chunks), so no worker idles on a stub chunk near the end of a build;
    no chunk is ever empty.
    """
    if not items:
        return []
    count = min(count, len(items))
    base, rem = divmod(len(items), count)
    out: List[List[Edge]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < rem else 0)
        out.append(items[start : start + size])
        start += size
    return out


def build_sief_parallel(
    graph: Graph,
    labeling: Optional[Labeling] = None,
    algorithm: str = "bfs_all",
    workers: Optional[int] = None,
    edges: Optional[Sequence[Edge]] = None,
) -> Tuple[SIEFIndex, BuildReport]:
    """Build a SIEF index using a pool of worker processes.

    Parameters mirror :class:`~repro.core.builder.SIEFBuilder` plus
    ``workers`` (default: CPU count).  With one worker everything runs
    in-process (no pool), which keeps small builds and tests cheap.
    """
    if algorithm not in RELABEL_ALGORITHMS:
        raise IndexError_(
            f"unknown relabel algorithm {algorithm!r}; "
            f"choose from {sorted(RELABEL_ALGORITHMS)}"
        )
    if labeling is None:
        labeling = build_pll(graph)
    if edges is None:
        edge_list = sorted(graph.edges())
    else:
        edge_list = sorted(normalize_edge(*e) for e in edges)
    if workers is None:
        workers = multiprocessing.cpu_count()

    index = SIEFIndex(labeling)
    records: List[EdgeBuildRecord] = []
    parent_reg = _obs.registry
    obs_enabled = parent_reg is not None

    with _obs.span("sief.build.parallel"):
        if workers <= 1 or len(edge_list) < 4:
            _init_worker(graph, labeling, algorithm, obs=obs_enabled)
            results = [_build_chunk(edge_list)]
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context("spawn")
            with ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(graph, labeling, algorithm, obs_enabled),
            ) as pool:
                results = pool.map(
                    _build_chunk, _chunks(edge_list, workers * 4)
                )

        for chunk, snapshot in results:
            if snapshot is not None and parent_reg is not None:
                parent_reg.merge_snapshot(snapshot)
            for si, record in chunk:
                index.add_supplement(record.edge, si)
                records.append(record)
    records.sort(key=lambda r: r.edge)
    return index, BuildReport(algorithm, tuple(records))
