"""Batched RELABEL: bit-parallel multi-root BFS + the scalar late filter.

The scalar relabel algorithms (:mod:`repro.core.bfs_aff`,
:mod:`repro.core.bfs_all`) run one interpreted BFS per affected hub.
This module replaces that loop with the Akiba-style bit-parallel kernel
(:func:`repro.graph.frontier.bfs_bitparallel_csr`): up to 64 roots of
one affected side share a single level-synchronous sweep over the CSR
arrays, each owning one bit lane of a ``uint64`` visited mask, all
avoiding the same failed edge.  A ``needed`` bitmask (which lanes still
owe which cross-side targets a distance) stops the sweep as soon as
every required ``(root, target)`` pair is settled — the vectorized
equivalent of Algorithm 2's "stop when all targets are assigned".

**Bit-identity with the scalar path.**  The kernel computes the *exact*
``d_{G'}(r, t)`` for every pair the scalar BFS would compute (plain BFS,
no pruning), and the late redundancy filter is the very same
:func:`repro.core._relabel.is_redundant` applied in the very same order:
sides in ``(AV(u) → AV(v))`` then ``(AV(v) → AV(u))`` direction, roots
ascending rank, targets ascending rank, a fresh per-root ``via`` cache.
Every append therefore lands with the same ``(rank, dist)`` in the same
sequence, so the produced :class:`SupplementalIndex` equals BFS AFF's —
and, by the Algorithm 2/3 equivalence, BFS ALL's.  The parity suite and
the conformance harness assert this on the fuzz corpus.  The only
permitted difference is ``search_expanded`` (settlement counting differs
between one shared sweep and per-root searches), which is excluded from
index equality by design.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence

import numpy as np

from repro import kernels as _kernels
from repro.core._relabel import is_redundant, order_side_by_rank
from repro.core.affected import AffectedVertices
from repro.core.supplemental import SupplementalIndex
from repro.graph.csr import CSRGraph
from repro.graph.frontier import WORD_BITS, bfs_bitparallel_csr, edge_positions
from repro.labeling.label import Labeling
from repro.obs import hooks as _obs

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)


def _relabel_side_batched(
    indptr: np.ndarray,
    indices: np.ndarray,
    avoid_pair,
    labeling: Labeling,
    roots: Sequence[int],
    targets: List[int],
    si: SupplementalIndex,
) -> None:
    """One direction (roots side A, targets side B), 64 roots per sweep."""
    rank = labeling.ordering.rank
    n = len(indptr) - 1
    target_ranks = [rank(t) for t in targets]  # ascending (pre-sorted)
    target_arr = np.asarray(targets, dtype=np.int64)
    target_rank_arr = np.asarray(target_ranks, dtype=np.int64)
    max_rank = target_ranks[-1] if target_ranks else -1
    # Roots ranked above every target have no work; roots are ascending
    # by rank so the live prefix is contiguous.
    root_ranks = [rank(r) for r in roots]
    live = bisect_right(root_ranks, max_rank - 1) if max_rank >= 0 else 0
    expanded = 0

    # Whole-pass compiled kernel: profiling puts most of the direction
    # pass in the redundancy filter, not the sweep, so the accelerated
    # tier runs sweeps *and* filter in one call and streams back the
    # exact append sequence (same roots-ascending, targets-ascending
    # order, same via cache semantics).  Only the integral frozen-label
    # case is compiled; weighted labelings use the numpy path below.
    tier, kern = _kernels.resolve("relabel")
    if (
        kern is not None
        and labeling.dists_flat is not None
        and labeling.dists_flat.dtype in _kernels.RELABEL_DTYPES
    ):
        if live:
            # The full side goes in (not just the live prefix): the
            # numpy loop's roots[b0 : b0 + 64] slice is unclamped, so a
            # batch straddling the live boundary sweeps dead roots too,
            # and search_expanded must match that count bit-for-bit.
            out_t, out_rank, out_dist, settled = kern(
                indptr,
                indices,
                int(avoid_pair[0]),
                int(avoid_pair[1]),
                np.asarray(roots, dtype=np.int64),
                np.asarray(root_ranks, dtype=np.int64),
                live,
                target_arr,
                target_rank_arr,
                labeling.offsets,
                labeling.hubs_flat,
                labeling.dists_flat,
                labeling.ordering.vertex_array(),
            )
            for t, r_rank, d in zip(
                out_t.tolist(), out_rank.tolist(), out_dist.tolist()
            ):
                si.label_of(t).append(r_rank, d)
            si.search_expanded += settled
            reg = _obs.registry
            if reg is not None:
                reg.counter(f"kernels.relabel.{tier}").inc()
        return

    for b0 in range(0, live, WORD_BITS):
        batch = roots[b0 : b0 + WORD_BITS]
        branks = root_ranks[b0 : b0 + WORD_BITS]
        k = len(batch)
        # Lanes a target still needs: exactly the batch roots ranked
        # below it.  Ranks ascend within the batch, so that is a prefix
        # of lanes — one searchsorted gives the prefix length, and the
        # mask is (1 << count) - 1 (count == 64 → all-ones, computed
        # shift-safely).
        cnt = np.searchsorted(
            np.asarray(branks, dtype=np.int64), target_rank_arr, side="left"
        ).astype(np.uint64)
        masks = np.where(
            cnt >= np.uint64(WORD_BITS),
            _FULL,
            (_ONE << (cnt % np.uint64(WORD_BITS))) - _ONE,
        )
        needed = np.zeros(n, dtype=np.uint64)
        needed[target_arr] = masks
        dist, settled = bfs_bitparallel_csr(
            indptr, indices, batch, avoid_positions=avoid_pair, needed=needed
        )
        expanded += settled

        for i in range(k):
            r = batch[i]
            r_rank = branks[i]
            # Targets ranked above this root: a suffix of the ascending
            # target list.
            p = bisect_right(target_ranks, r_rank)
            if p >= len(targets):
                continue
            dvals = dist[i][target_arr[p:]].tolist()
            via_cache: dict = {}
            for t, d in zip(targets[p:], dvals):
                if d < 0:
                    continue  # failure disconnected r from t
                sl = si.label_of(t)
                if not is_redundant(
                    labeling, sl.ranks, sl.dists, r, d, via_cache
                ):
                    sl.append(r_rank, d)
    si.search_expanded += expanded


def build_supplemental_batched(
    graph,
    labeling: Labeling,
    affected: AffectedVertices,
    dist_buf: Optional[List[int]] = None,
    csr: Optional[CSRGraph] = None,
) -> SupplementalIndex:
    """Bit-parallel RELABEL for one failed edge — same index as BFS AFF.

    Parameters
    ----------
    graph:
        The original graph ``G``; only used to snapshot a CSR when
        ``csr`` is not supplied, so callers building many cases should
        pass the snapshot explicitly (the builder, lazy index and
        parallel workers all do).
    labeling:
        The original 2-hop cover.  Frozen in place on first use when
        thawed (mirroring :func:`repro.labeling.query.batch_dist_query`)
        so the redundancy filter's label queries run on the fast flat
        backend; freezing never changes query results.
    affected:
        Output of :func:`repro.core.affected.identify_affected` (either
        variant).
    dist_buf:
        Accepted for relabel-interface compatibility; unused.
    csr:
        Optional prebuilt :class:`~repro.graph.csr.CSRGraph` of ``G``.
    """
    del dist_buf
    si = SupplementalIndex(affected)
    if affected.disconnected:
        # Bridge failure: no cross-side path survives, SI stays empty.
        return si
    if csr is None:
        csr = CSRGraph.from_graph(graph)
    if not labeling.frozen:
        labeling.freeze()
    side_u = order_side_by_rank(affected.side_u, labeling)
    side_v = order_side_by_rank(affected.side_v, labeling)
    indptr, indices = csr.indptr, csr.indices
    pair = edge_positions(indptr, indices, affected.u, affected.v)
    reg = _obs.registry
    if reg is not None:
        reg.counter("sief.relabel.batched_cases").inc()
    _relabel_side_batched(indptr, indices, pair, labeling, side_u, side_v, si)
    _relabel_side_batched(indptr, indices, pair, labeling, side_v, side_u, si)
    si.drop_empty()
    return si
