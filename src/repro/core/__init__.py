"""SIEF — the paper's contribution: supplemental indexes for edge failures.

Pipeline (§4 of the paper):

1. **IDENTIFY** (:mod:`repro.core.affected`): for a failed edge ``(u, v)``
   find the two affected-vertex trees ``AV(u)`` and ``AV(v)``
   (Algorithm 1, justified by Lemmas 5–8).
2. **RELABEL** (:mod:`repro.core.bfs_aff`, :mod:`repro.core.bfs_all`):
   build the supplemental index ``SI(u,v)`` holding only the changed
   distances, with late (BFS AFF, Algorithm 2) or early (BFS ALL,
   Algorithm 3) label pruning.  Both produce identical indexes.
3. **QUERY** (:mod:`repro.core.query`): answer
   ``d_{G-(u,v)}(s, t)`` via the Case 1–4 analysis of §4.4, combining the
   original PLL labeling with the supplemental labels.

:class:`~repro.core.builder.SIEFBuilder` drives steps 1–2 for every edge
of the graph (the paper's "all single-edge failure cases") and returns a
:class:`~repro.core.index.SIEFIndex`.
"""

from repro.core.affected import AffectedVertices, identify_affected
from repro.core.supplemental import SupplementalIndex, SupplementalLabels
from repro.core.bfs_aff import build_supplemental_bfs_aff
from repro.core.bfs_all import build_supplemental_bfs_all
from repro.core.index import SIEFIndex
from repro.core.builder import SIEFBuilder, BuildReport, EdgeBuildRecord
from repro.core.query import SIEFQueryEngine, QueryCase
from repro.core.stats import SIEFStats, sief_stats
from repro.core.lazy import LazySIEFIndex
from repro.core.parallel import build_sief_parallel
from repro.core.verify import verify_index
from repro.core import serialize

__all__ = [
    "AffectedVertices",
    "identify_affected",
    "SupplementalIndex",
    "SupplementalLabels",
    "build_supplemental_bfs_aff",
    "build_supplemental_bfs_all",
    "SIEFIndex",
    "SIEFBuilder",
    "BuildReport",
    "EdgeBuildRecord",
    "SIEFQueryEngine",
    "QueryCase",
    "SIEFStats",
    "sief_stats",
    "serialize",
    "LazySIEFIndex",
    "build_sief_parallel",
    "verify_index",
]
