"""SIEF index statistics — the quantities Tables 3/5 and Figures 5/6 plot.

Reuses the byte model of :mod:`repro.labeling.stats` (8 B per entry) for
supplemental entries, plus per-case overhead for the two sorted
affected-vertex arrays (4 B per member) that the query engine binary
searches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.builder import BuildReport
from repro.core.index import SIEFIndex
from repro.labeling.stats import (
    BYTES_PER_ENTRY,
    labeling_bytes,
    labeling_stats,
)

BYTES_PER_AFFECTED_VERTEX = 4
"""Modelled bytes per member of a stored affected-side array."""


@dataclass(frozen=True)
class SIEFStats:
    """Size/shape summary of one SIEF index (plus its original labeling)."""

    num_vertices: int
    num_cases: int
    original_entries: int
    supplemental_entries: int
    affected_members: int
    original_bytes: int
    supplemental_bytes: int
    avg_affected_per_case: float
    avg_supplemental_entries_per_case: float

    @property
    def total_bytes(self) -> int:
        """Original + supplemental modelled bytes (Figure 6's stacked bar)."""
        return self.original_bytes + self.supplemental_bytes

    @property
    def slen_over_olen(self) -> float:
        """Figure 5's headline ratio: supplemental over original entries."""
        if not self.original_entries:
            return 0.0
        return self.supplemental_entries / self.original_entries

    @property
    def original_megabytes(self) -> float:
        """Original index size in MB (10^6 bytes)."""
        return self.original_bytes / 1_000_000

    @property
    def supplemental_megabytes(self) -> float:
        """Supplemental index size in MB (10^6 bytes)."""
        return self.supplemental_bytes / 1_000_000

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for table rendering."""
        return {
            "num_vertices": self.num_vertices,
            "num_cases": self.num_cases,
            "original_entries": self.original_entries,
            "supplemental_entries": self.supplemental_entries,
            "slen_over_olen": self.slen_over_olen,
            "original_bytes": self.original_bytes,
            "supplemental_bytes": self.supplemental_bytes,
            "total_bytes": self.total_bytes,
            "avg_affected_per_case": self.avg_affected_per_case,
            "avg_supplemental_entries_per_case": (
                self.avg_supplemental_entries_per_case
            ),
        }


def supplemental_bytes(index: SIEFIndex) -> int:
    """Modelled byte size of all supplements (entries + affected arrays)."""
    entries = index.total_supplemental_entries()
    members = sum(si.affected.total for si in index.supplements.values())
    return entries * BYTES_PER_ENTRY + members * BYTES_PER_AFFECTED_VERTEX


def sief_stats(index: SIEFIndex, report: Optional[BuildReport] = None) -> SIEFStats:
    """Compute :class:`SIEFStats`; pass the build report for per-case averages."""
    original = labeling_stats(index.labeling)
    members = sum(si.affected.total for si in index.supplements.values())
    cases = index.num_cases
    supplemental_entries = index.total_supplemental_entries()
    if report is not None:
        avg_affected = report.avg_affected
        avg_entries = report.avg_supplemental_entries
    else:
        avg_affected = members / cases if cases else 0.0
        avg_entries = supplemental_entries / cases if cases else 0.0
    return SIEFStats(
        num_vertices=index.labeling.num_vertices,
        num_cases=cases,
        original_entries=original.total_entries,
        supplemental_entries=supplemental_entries,
        affected_members=members,
        original_bytes=labeling_bytes(
            original.total_entries, original.num_vertices
        ),
        supplemental_bytes=supplemental_bytes(index),
        avg_affected_per_case=avg_affected,
        avg_supplemental_entries_per_case=avg_entries,
    )
