"""Shared machinery for the two RELABEL algorithms.

Both BFS AFF and BFS ALL walk the same double loop — for each side
``A ∈ {AV(u), AV(v)}``, process roots ``r ∈ A`` in ascending rank and
consider cross-side targets ``t`` with ``σ[t] > σ[r]`` — and share the
*late* redundancy test of Algorithm 2/3:

    candidate ``(r, d)`` for ``SL(t)`` is redundant iff
    ``min over (h, δ) ∈ SL(t) of dist(r, h, L) + δ <= d``.

``r`` and every stored hub ``h`` lie on the same side as ``r``, where
distances are unchanged by the failure (Case 3), so evaluating
``dist(r, h, L)`` on the *original* labeling is valid in ``G'``.

The ``<=`` comparison (rather than the paper's literal ``=``) matters for
BFS ALL: its pruned searches can reach a target along a detour with an
overestimated distance, and the proof that both algorithms emit the same
index hinges on such candidates being covered — hence rejected — by
earlier entries.  For exact candidates the two comparisons coincide,
because every ``dist(r,h,L) + δ`` term is a valid ``G'`` path length and
therefore never undercuts ``d_{G'}(r, t)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.labeling.label import Labeling
from repro.labeling.query import dist_query

Distance = Union[int, float]


def order_side_by_rank(side: Sequence[int], labeling: Labeling) -> List[int]:
    """Sort one affected side ascending by ordering rank."""
    rank = labeling.ordering.rank
    return sorted(side, key=rank)


def is_redundant(
    labeling: Labeling,
    sl_ranks: List[int],
    sl_dists: List[int],
    r: int,
    candidate_dist: int,
    via_cache: Dict[int, Distance],
) -> bool:
    """The late redundancy test described in the module docstring.

    ``via_cache`` memoizes ``dist(r, hub, L)`` by hub rank for the current
    root ``r`` — every hub appearing in any ``SL(t)`` this root examines
    is one of the (few) earlier roots of the same side, so the cache turns
    the dominant ``O(cross pairs × SL size)`` label merges into
    ``O(roots²)`` of them.
    """
    vertex = labeling.ordering.vertex
    for h_rank, delta in zip(sl_ranks, sl_dists):
        via = via_cache.get(h_rank)
        if via is None:
            via = dist_query(labeling, r, vertex(h_rank))
            via_cache[h_rank] = via
        if via + delta <= candidate_dist:
            return True
    return False


def cross_pairs_processed(
    side_a: Sequence[int], side_b: Sequence[int], labeling: Labeling
) -> List[Tuple[int, int]]:
    """All ``(root, target)`` pairs one relabel pass handles (test helper)."""
    rank = labeling.ordering.rank
    pairs = []
    for r in side_a:
        for t in side_b:
            if rank(t) > rank(r):
                pairs.append((r, t))
    return pairs
