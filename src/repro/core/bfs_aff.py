"""BFS AFF — Algorithm 2: relabeling with the *late* pruning strategy.

For every affected root ``r`` (ascending rank, per side) run a **plain**
BFS on ``G' = G - (u, v)``, stopping as soon as every cross-side target
ranked above ``r`` has been assigned a distance (the paper's "the BFS
process ... will stop at distance 2"), then apply the late redundancy
test before appending each ``(r, d_{G'}(r, t))`` entry to ``SL(t)``.

Memory-lean (no temporary labels) but a full unpruned search per root
makes it the slower strategy when affected sets are large and spread out
— the trade-off the paper's Figure 7 measures.

Distances are kept in a per-root dict rather than a length-``n`` array:
early termination keeps the explored ball small, and skipping the
``O(n)`` array reset per root dominates everything else in CPython.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.core._relabel import is_redundant, order_side_by_rank
from repro.core.affected import AffectedVertices
from repro.core.supplemental import SupplementalIndex
from repro.labeling.label import Labeling


def _relabel_side(
    adj,
    failed: tuple,
    labeling: Labeling,
    roots: Sequence[int],
    targets_by_rank: List[int],
    si: SupplementalIndex,
) -> None:
    """One direction of Algorithm 2 (roots from side A, targets side B)."""
    rank = labeling.ordering.rank
    a, b = failed
    expanded = 0
    for r in roots:
        r_rank = rank(r)
        # Targets ranked above the root, ascending, so SL appends stay sorted.
        targets = [t for t in targets_by_rank if rank(t) > r_rank]
        if not targets:
            continue
        remaining = len(targets)
        target_set = set(targets)
        via_cache: dict = {}

        dist: Dict[int, int] = {r: 0}
        if r in target_set:  # cannot happen (sides disjoint), stay safe
            remaining -= 1
        queue = deque((r,))
        while queue and remaining:
            v = queue.popleft()
            expanded += 1
            d = dist[v] + 1
            for w in adj[v]:
                if w in dist or (v == a and w == b) or (v == b and w == a):
                    continue
                dist[w] = d
                queue.append(w)
                if w in target_set:
                    remaining -= 1
                    if not remaining:
                        break

        for t in targets:
            d = dist.get(t)
            if d is None:
                continue  # failure disconnected r from t: nothing to store
            sl = si.label_of(t)
            if not is_redundant(labeling, sl.ranks, sl.dists, r, d, via_cache):
                sl.append(r_rank, d)
    si.search_expanded += expanded


def build_supplemental_bfs_aff(
    graph,
    labeling: Labeling,
    affected: AffectedVertices,
    dist_buf: Optional[List[int]] = None,
    csr=None,
) -> SupplementalIndex:
    """Algorithm 2: build ``SI(u,v)`` with plain BFS + late pruning.

    Parameters
    ----------
    graph:
        The original graph ``G`` (the failed edge is skipped inline).
    labeling:
        The original well-ordered 2-hop cover ``L``.
    affected:
        Output of :func:`repro.core.affected.identify_affected`.
    dist_buf:
        Accepted for interface compatibility with the builder; unused
        (the search keeps per-root dict frontiers).
    csr:
        Accepted for interface compatibility with the batched relabel;
        unused (this algorithm walks the adjacency lists).
    """
    del dist_buf, csr
    adj = graph.adjacency()
    si = SupplementalIndex(affected)
    if affected.disconnected:
        # Bridge failure: no cross-side path survives, SI stays empty.
        return si
    side_u = order_side_by_rank(affected.side_u, labeling)
    side_v = order_side_by_rank(affected.side_v, labeling)
    failed = (affected.u, affected.v)
    _relabel_side(adj, failed, labeling, side_u, side_v, si)
    _relabel_side(adj, failed, labeling, side_v, side_u, si)
    si.drop_empty()
    return si
