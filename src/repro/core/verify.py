"""SIEF index integrity verification.

A SIEF index loaded from disk (or received from elsewhere) should be
checkable against the graph it claims to cover before being trusted —
the moral equivalent of a checksum, but semantic.  Three levels, each
exposed as its own function so callers (the ``sief verify`` CLI, the
conformance harness in :mod:`repro.testing`) can run them selectively:

* :func:`structural_problems` — the labeling validates, every
  supplement's edge exists in the graph, affected arrays are
  sorted/disjoint, supplemental hubs respect well-ordering and sit on
  the opposite side;
* :func:`affected_problems` — recompute Algorithm 1 for sampled cases
  and compare against the stored affected sets;
* :func:`query_problems` — sample (s, t) per sampled case and compare
  engine answers against BFS on ``G - e``.

:func:`verify_index` runs all three (or a chosen subset) and returns a
report of problems (empty means the index is consistent with the graph
at the checked sample).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.affected import identify_affected
from repro.core.index import SIEFIndex
from repro.graph.graph import Graph
from repro.graph.traversal import UNREACHED, bfs_distances_avoiding_edge
from repro.labeling.query import INF

VERIFY_LEVELS: Tuple[str, ...] = ("structural", "affected", "queries")
"""The three verification levels, cheapest first."""


def _sampled_cases(
    index: SIEFIndex, sample_cases: Optional[int], seed: int
) -> List[Tuple[int, int]]:
    cases = [edge for edge, _ in index.iter_cases()]
    if sample_cases is not None and sample_cases < len(cases):
        cases = random.Random(seed).sample(cases, sample_cases)
    return cases


def structural_problems(index: SIEFIndex, graph: Graph) -> List[str]:
    """Level 1: internal consistency of the index against the graph."""
    problems: List[str] = []
    labeling = index.labeling
    if labeling.num_vertices != graph.num_vertices:
        problems.append(
            f"labeling covers {labeling.num_vertices} vertices, "
            f"graph has {graph.num_vertices}"
        )
        return problems
    problems.extend(labeling.validate())
    rank = labeling.ordering.rank
    for edge, si in index.iter_cases():
        u, v = edge
        if not graph.has_edge(u, v):
            problems.append(f"case {edge}: edge not in graph")
            continue
        affected = si.affected
        if set(affected.side_u) & set(affected.side_v):
            problems.append(f"case {edge}: affected sides overlap")
        for side in (affected.side_u, affected.side_v):
            if list(side) != sorted(set(side)):
                problems.append(f"case {edge}: affected side not sorted")
        for t, sl in si.iter_labels():
            where_t = affected.contains(t)
            if where_t is None:
                problems.append(
                    f"case {edge}: labeled vertex {t} is not affected"
                )
                continue
            for h_rank in sl.ranks:
                if h_rank >= rank(t):
                    problems.append(
                        f"case {edge}: SL({t}) hub rank {h_rank} violates "
                        "well-ordering"
                    )
                h = labeling.ordering.vertex(h_rank)
                where_h = affected.contains(h)
                if where_h is None or where_h == where_t:
                    problems.append(
                        f"case {edge}: SL({t}) hub {h} is not on the "
                        "opposite affected side"
                    )
    return problems


def affected_problems(
    index: SIEFIndex,
    graph: Graph,
    sample_cases: Optional[int] = 25,
    seed: int = 0,
) -> List[str]:
    """Level 2: stored affected sets vs a fresh Algorithm 1 run.

    ``sample_cases=None`` checks every indexed case.
    """
    problems: List[str] = []
    for edge in _sampled_cases(index, sample_cases, seed):
        si = index.supplement(*edge)
        recomputed = identify_affected(graph, *edge)
        if (
            recomputed.side_u != si.affected.side_u
            or recomputed.side_v != si.affected.side_v
        ):
            problems.append(
                f"case {edge}: stored affected sets disagree with "
                "Algorithm 1"
            )
    return problems


def query_problems(
    index: SIEFIndex,
    graph: Graph,
    sample_cases: Optional[int] = 25,
    queries_per_case: int = 20,
    seed: int = 0,
) -> List[str]:
    """Level 3: sampled engine answers vs BFS on ``G - e``.

    Supplements only answer cross-side (Case 4) pairs, so those are
    checked deliberately — exhaustively when the side product is small
    enough — padded with uniform pairs for the other cases.
    """
    from repro.core.query import SIEFQueryEngine

    problems: List[str] = []
    rng = random.Random(seed)
    engine = SIEFQueryEngine(index)
    n = graph.num_vertices
    for edge in _sampled_cases(index, sample_cases, seed):
        si = index.supplement(*edge)
        side_u, side_v = si.affected.side_u, si.affected.side_v
        cross_total = len(side_u) * len(side_v)
        pairs = []
        if 0 < cross_total <= queries_per_case:
            pairs.extend((s, t) for s in side_u for t in side_v)
        elif cross_total:
            for _ in range(queries_per_case // 2):
                pairs.append((rng.choice(side_u), rng.choice(side_v)))
        while len(pairs) < queries_per_case:
            pairs.append((rng.randrange(n), rng.randrange(n)))
        for s, t in pairs:
            truth_vec = bfs_distances_avoiding_edge(graph, s, edge)
            truth = truth_vec[t] if truth_vec[t] != UNREACHED else INF
            got = engine.distance(s, t, edge)
            if got != truth:
                problems.append(
                    f"case {edge}: query ({s}, {t}) answered {got}, "
                    f"BFS says {truth}"
                )
                break
    return problems


def verify_index(
    index: SIEFIndex,
    graph: Graph,
    sample_cases: Optional[int] = 25,
    queries_per_case: int = 20,
    seed: int = 0,
    levels: Sequence[str] = VERIFY_LEVELS,
) -> List[str]:
    """Run the requested verification levels; returns problems (empty = ok).

    Levels run cheapest-first; structural problems short-circuit the
    deeper levels (an index that fails level 1 produces noise, not
    signal, at levels 2–3).  ``sample_cases=None`` checks every indexed
    case (exhaustive but proportionally slower).
    """
    unknown = [lv for lv in levels if lv not in VERIFY_LEVELS]
    if unknown:
        raise ValueError(
            f"unknown verify levels {unknown}; choose from {VERIFY_LEVELS}"
        )
    problems: List[str] = []
    if "structural" in levels:
        problems = structural_problems(index, graph)
        if problems:
            return problems
    if "affected" in levels:
        problems.extend(affected_problems(index, graph, sample_cases, seed))
    if "queries" in levels:
        problems.extend(
            query_problems(index, graph, sample_cases, queries_per_case, seed)
        )
    return problems
