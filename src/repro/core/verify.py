"""SIEF index integrity verification.

A SIEF index loaded from disk (or received from elsewhere) should be
checkable against the graph it claims to cover before being trusted —
the moral equivalent of a checksum, but semantic.  Three levels:

* **structural** — the labeling validates, every supplement's edge
  exists in the graph, affected arrays are sorted/disjoint, supplemental
  hubs respect well-ordering and sit on the opposite side;
* **affected** — recompute Algorithm 1 for sampled cases and compare;
* **queries** — sample (s, t) per sampled case and compare against BFS.

`verify_index` runs all three and returns a report of problems (empty
means the index is consistent with the graph at the checked sample).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.affected import identify_affected
from repro.core.index import SIEFIndex
from repro.graph.graph import Graph
from repro.graph.traversal import UNREACHED, bfs_distances_avoiding_edge
from repro.labeling.query import INF, dist_query


def structural_problems(index: SIEFIndex, graph: Graph) -> List[str]:
    """Level 1: internal consistency of the index against the graph."""
    problems: List[str] = []
    labeling = index.labeling
    if labeling.num_vertices != graph.num_vertices:
        problems.append(
            f"labeling covers {labeling.num_vertices} vertices, "
            f"graph has {graph.num_vertices}"
        )
        return problems
    problems.extend(labeling.validate())
    rank = labeling.ordering.rank
    for edge, si in index.iter_cases():
        u, v = edge
        if not graph.has_edge(u, v):
            problems.append(f"case {edge}: edge not in graph")
            continue
        affected = si.affected
        if set(affected.side_u) & set(affected.side_v):
            problems.append(f"case {edge}: affected sides overlap")
        for side in (affected.side_u, affected.side_v):
            if list(side) != sorted(set(side)):
                problems.append(f"case {edge}: affected side not sorted")
        for t, sl in si.iter_labels():
            where_t = affected.contains(t)
            if where_t is None:
                problems.append(
                    f"case {edge}: labeled vertex {t} is not affected"
                )
                continue
            for h_rank in sl.ranks:
                if h_rank >= rank(t):
                    problems.append(
                        f"case {edge}: SL({t}) hub rank {h_rank} violates "
                        "well-ordering"
                    )
                h = labeling.ordering.vertex(h_rank)
                where_h = affected.contains(h)
                if where_h is None or where_h == where_t:
                    problems.append(
                        f"case {edge}: SL({t}) hub {h} is not on the "
                        "opposite affected side"
                    )
    return problems


def verify_index(
    index: SIEFIndex,
    graph: Graph,
    sample_cases: Optional[int] = 25,
    queries_per_case: int = 20,
    seed: int = 0,
) -> List[str]:
    """Run all three verification levels; returns problems (empty = ok).

    ``sample_cases=None`` checks every indexed case (exhaustive but
    proportionally slower).
    """
    problems = structural_problems(index, graph)
    if problems:
        return problems

    rng = random.Random(seed)
    cases = [edge for edge, _ in index.iter_cases()]
    if sample_cases is not None and sample_cases < len(cases):
        cases = rng.sample(cases, sample_cases)

    n = graph.num_vertices
    for edge in cases:
        si = index.supplement(*edge)
        recomputed = identify_affected(graph, *edge)
        if (
            recomputed.side_u != si.affected.side_u
            or recomputed.side_v != si.affected.side_v
        ):
            problems.append(
                f"case {edge}: stored affected sets disagree with "
                "Algorithm 1"
            )
            continue
        from repro.core.query import SIEFQueryEngine

        engine = SIEFQueryEngine(index)
        # Supplements only answer cross-side (Case 4) pairs, so check
        # those deliberately — exhaustively when the side product is
        # small enough — and pad with uniform pairs for the other cases.
        side_u, side_v = si.affected.side_u, si.affected.side_v
        cross_total = len(side_u) * len(side_v)
        pairs = []
        if 0 < cross_total <= queries_per_case:
            pairs.extend((s, t) for s in side_u for t in side_v)
        elif cross_total:
            for _ in range(queries_per_case // 2):
                pairs.append((rng.choice(side_u), rng.choice(side_v)))
        while len(pairs) < queries_per_case:
            pairs.append((rng.randrange(n), rng.randrange(n)))
        for s, t in pairs:
            truth_vec = bfs_distances_avoiding_edge(graph, s, edge)
            truth = truth_vec[t] if truth_vec[t] != UNREACHED else INF
            got = engine.distance(s, t, edge)
            if got != truth:
                problems.append(
                    f"case {edge}: query ({s}, {t}) answered {got}, "
                    f"BFS says {truth}"
                )
                break
    return problems
