"""SIEF index persistence.

Binary layout after the 8-byte magic reuses the labeling blob
(:mod:`repro.labeling.serialize`) followed by a JSON-encoded supplement
section — supplements are ragged, per-edge, and comparatively small, so
a self-describing encoding beats a hand-rolled one; the original labeling
(the bulk of the bytes) stays in the compact numpy form.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Union

from repro.core.affected import AffectedVertices
from repro.core.index import SIEFIndex
from repro.core.supplemental import SupplementalIndex, SupplementalLabels
from repro.exceptions import SerializationError
from repro.labeling.serialize import labeling_from_bytes, labeling_to_bytes

MAGIC = b"SIEFIDX1"
PathLike = Union[str, Path]


def index_to_bytes(index: SIEFIndex) -> bytes:
    """Serialize a full SIEF index."""
    label_blob = labeling_to_bytes(index.labeling)
    cases = []
    for (u, v), si in index.iter_cases():
        cases.append(
            {
                "e": [int(u), int(v)],
                "au": [int(x) for x in si.affected.side_u],
                "av": [int(x) for x in si.affected.side_v],
                "disc": si.affected.disconnected,
                "sl": {
                    # int() guards against numpy scalars reaching the
                    # JSON encoder when labels were built from arrays.
                    str(w): [
                        [int(r) for r in sl.ranks],
                        [int(d) for d in sl.dists],
                    ]
                    for w, sl in si.iter_labels()
                },
            }
        )
    sup_blob = json.dumps({"cases": cases}, separators=(",", ":")).encode("utf-8")
    return (
        MAGIC
        + struct.pack("<qq", len(label_blob), len(sup_blob))
        + label_blob
        + sup_blob
    )


def index_from_bytes(data: bytes) -> SIEFIndex:
    """Inverse of :func:`index_to_bytes`."""
    if data[: len(MAGIC)] != MAGIC:
        raise SerializationError("bad magic: not a SIEF index blob")
    header_end = len(MAGIC) + 16
    try:
        label_len, sup_len = struct.unpack(
            "<qq", data[len(MAGIC) : header_end]
        )
        label_blob = data[header_end : header_end + label_len]
        sup_blob = data[header_end + label_len : header_end + label_len + sup_len]
        if len(label_blob) != label_len or len(sup_blob) != sup_len:
            raise SerializationError("truncated SIEF index blob")
        labeling = labeling_from_bytes(bytes(label_blob))
        doc = json.loads(sup_blob.decode("utf-8"))
        index = SIEFIndex(labeling)
        for case in doc["cases"]:
            u, v = case["e"]
            affected = AffectedVertices(
                u=u,
                v=v,
                side_u=tuple(case["au"]),
                side_v=tuple(case["av"]),
                disconnected=bool(case.get("disc", False)),
            )
            si = SupplementalIndex(affected)
            for key, (ranks, dists) in case["sl"].items():
                si.labels[int(key)] = SupplementalLabels(
                    [int(r) for r in ranks], [int(d) for d in dists]
                )
            index.add_supplement((u, v), si)
    except (KeyError, TypeError, ValueError, struct.error) as exc:
        raise SerializationError(f"bad SIEF index blob: {exc}") from exc
    return index


def save_index(index: SIEFIndex, path: PathLike) -> None:
    """Write the binary format to ``path``."""
    Path(path).write_bytes(index_to_bytes(index))


def load_index(path: PathLike) -> SIEFIndex:
    """Read an index written by :func:`save_index`."""
    return index_from_bytes(Path(path).read_bytes())
