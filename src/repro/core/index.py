"""The complete SIEF index: original labeling + one supplement per edge.

This is the object a downstream user holds: build once (via
:class:`repro.core.builder.SIEFBuilder`), then answer any
``distance(s, t, failed_edge)`` query in microseconds through
:class:`repro.core.query.SIEFQueryEngine`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core.supplemental import SupplementalIndex
from repro.exceptions import FailureCaseNotIndexed, IndexError_
from repro.graph.graph import normalize_edge
from repro.labeling.label import Labeling

Edge = Tuple[int, int]


class SIEFIndex:
    """Original 2-hop labeling plus per-edge supplemental indexes.

    Attributes
    ----------
    labeling:
        The well-ordered 2-hop distance cover of the original graph.
    supplements:
        Mapping of canonical failed edge -> :class:`SupplementalIndex`.
    """

    __slots__ = ("labeling", "supplements")

    def __init__(
        self,
        labeling: Labeling,
        supplements: Optional[Dict[Edge, SupplementalIndex]] = None,
    ) -> None:
        self.labeling = labeling
        self.supplements: Dict[Edge, SupplementalIndex] = {}
        if supplements:
            for edge, si in supplements.items():
                self.add_supplement(edge, si)

    def freeze(self) -> "SIEFIndex":
        """Switch the whole index to the flat numpy query backend.

        Freezes the labeling in place and prebuilds every supplement's
        :class:`~repro.core.supplemental.FlatSupplement` view, so the
        first batch query pays no conversion cost.  Idempotent; returns
        ``self``.  (The batch paths also freeze lazily on first use —
        this is for callers who want the conversion off the query path.)
        """
        self.labeling.freeze()
        for si in self.supplements.values():
            si.flat()
        return self

    def save_npz(
        self, path: Union[str, "Path"], compress: bool = False
    ) -> None:
        """Write the frozen flat-array (npz) store — the serving format.

        See :mod:`repro.core.npzstore`; saved uncompressed by default so
        :meth:`load` with ``mmap_mode="r"`` maps it without copies.
        """
        from repro.core.npzstore import save_index_npz

        save_index_npz(self, path, compress=compress)

    @classmethod
    def load(
        cls, path: Union[str, "Path"], mmap_mode: Optional[str] = None
    ) -> "SIEFIndex":
        """Load an index from either on-disk format.

        ``.npz`` paths route through :mod:`repro.core.npzstore`;
        ``mmap_mode="r"`` maps the label arrays read-only straight out
        of the file (zero copy, one physical copy across processes).
        ``.siefseg`` directories (the out-of-core segment store) rebuild
        a fully-resident index whose supplements stay views of the
        segment mmap — for demand-paged serving use
        :class:`~repro.core.lazy.PagedSIEFIndex` instead.
        Any other path loads the legacy binary format, for which
        ``mmap_mode`` must be ``None``.
        """
        p = Path(path)
        if p.suffix == ".npz":
            from repro.core.npzstore import load_index_npz

            return load_index_npz(p, mmap_mode=mmap_mode)
        if p.suffix == ".siefseg":
            from repro.core.segstore import SegmentStore

            return SegmentStore(p).to_index()
        if mmap_mode is not None:
            raise ValueError(
                "mmap_mode is only supported for .npz stores; convert "
                "with `sief freeze` first"
            )
        from repro.core.serialize import load_index

        return load_index(p)

    def add_supplement(self, edge: Edge, si: SupplementalIndex) -> None:
        """Register the supplemental index for one failed-edge case."""
        key = normalize_edge(*edge)
        if normalize_edge(*si.edge) != key:
            raise IndexError_(
                f"supplement built for edge {si.edge}, registered under {edge}"
            )
        self.supplements[key] = si

    def supplement(self, u: int, v: int) -> SupplementalIndex:
        """The supplemental index for failed edge ``(u, v)``.

        Raises
        ------
        FailureCaseNotIndexed
            If that edge was never indexed (e.g. not an edge of ``G``).
        """
        key = normalize_edge(u, v)
        try:
            return self.supplements[key]
        except KeyError:
            raise FailureCaseNotIndexed(u, v) from None

    def has_case(self, u: int, v: int) -> bool:
        """Whether failed edge ``(u, v)`` is covered by this index."""
        return normalize_edge(u, v) in self.supplements

    @property
    def num_cases(self) -> int:
        """Number of indexed single-edge failure cases (should equal m)."""
        return len(self.supplements)

    def iter_cases(self) -> Iterator[Tuple[Edge, SupplementalIndex]]:
        """Iterate ``(edge, supplement)`` pairs in canonical edge order."""
        for edge in sorted(self.supplements):
            yield edge, self.supplements[edge]

    def total_supplemental_entries(self) -> int:
        """Total supplemental label entries — the paper's SLEN numerator."""
        return sum(si.total_entries() for si in self.supplements.values())

    def __repr__(self) -> str:
        return (
            f"SIEFIndex(n={self.labeling.num_vertices}, "
            f"cases={self.num_cases}, "
            f"supplemental_entries={self.total_supplemental_entries()})"
        )
