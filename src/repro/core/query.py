"""Distance query evaluation on a SIEF index (§4.4 of the paper).

Given a failed edge ``(u, v)`` and a pair ``(s, t)``, classify the query
by affected-side membership (binary search on the sorted sides):

* **Case 1** — neither endpoint affected: answer from the original index.
* **Case 2** — exactly one endpoint affected: distances between an
  affected and an unaffected vertex never change (Lemma 6); original
  index.
* **Case 3** — both endpoints on the *same* side: same-side distances are
  unchanged; original index.
* **Case 4** — endpoints on *opposite* sides: the only changed distances.
  With ``σ[s] < σ[t]``, every relevant hub lives in ``SL(t)`` on ``s``'s
  side, so ``d_{G'}(s, t) = min over (h, δ) ∈ SL(t) of dist(s, h, L) + δ``
  (``∞`` when the supplement holds no usable hub — the failure
  disconnected the pair).
"""

from __future__ import annotations

import enum
import time
from typing import Sequence, Tuple, Union

import numpy as np

from repro.core.index import SIEFIndex
from repro.core.supplemental import SupplementalLabels
from repro.labeling.query import (
    INF,
    _ragged_gather,
    batch_dist_query,
    dist_query,
    validate_pairs,
)
from repro.obs import hooks as _obs
from repro.obs.metrics import SIZE_EDGES

Distance = Union[int, float]


def _member_sorted(sorted_arr: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Vectorized membership of ``vals`` in a sorted unique array."""
    out = np.zeros(vals.shape, dtype=bool)
    if sorted_arr.size == 0:
        return out
    pos = np.searchsorted(sorted_arr, vals)
    inb = pos < sorted_arr.size
    out[inb] = sorted_arr[pos[inb]] == vals[inb]
    return out


class QueryCase(enum.Enum):
    """Which of the paper's four §4.4 cases a query fell into."""

    UNAFFECTED_PAIR = 1
    ONE_AFFECTED = 2
    SAME_SIDE = 3
    CROSS_SIDES = 4


class SIEFQueryEngine:
    """Answers ``d_{G - e}(s, t)`` from a :class:`SIEFIndex`.

    Stateless apart from the index reference; safe to share.
    """

    __slots__ = ("index",)

    def __init__(self, index: SIEFIndex) -> None:
        self.index = index

    def distance(self, s: int, t: int, failed_edge: Tuple[int, int]) -> Distance:
        """Shortest-path distance between ``s`` and ``t`` avoiding one edge.

        Same answer as :meth:`distance_with_case` without the case report
        — this is the latency-critical entry point Table 4 measures, so
        it avoids the tuple allocation and duplicate branching.  With no
        metrics registry installed the only instrumentation cost is the
        ``is None`` test below.
        """
        reg = _obs.registry
        if reg is not None:
            return self._distance_instrumented(s, t, failed_edge, reg)
        index = self.index
        si = index.supplement(*failed_edge)
        affected = si.affected
        side_s = affected.contains(s)
        if side_s is not None:
            side_t = affected.contains(t)
            if side_t is not None and side_t != side_s:
                if s == t:
                    return 0
                labeling = index.labeling
                if labeling.ordering.precedes(s, t):
                    return _case4_eval(labeling, si.get(t), s)
                return _case4_eval(labeling, si.get(s), t)
        return dist_query(index.labeling, s, t)

    def _distance_instrumented(
        self, s: int, t: int, failed_edge: Tuple[int, int], reg
    ) -> Distance:
        """:meth:`distance` with per-query metrics (registry installed).

        Mirrors the classification in :meth:`distance` exactly; the
        conformance harness's instrumented adapters assert metrics-on
        answers equal metrics-off answers, which pins the two bodies
        together.
        """
        t0 = time.perf_counter()
        index = self.index
        si = index.supplement(*failed_edge)
        affected = si.affected
        side_s = affected.contains(s)
        cross = False
        if side_s is not None:
            side_t = affected.contains(t)
            cross = side_t is not None and side_t != side_s
        if not cross:
            result = dist_query(index.labeling, s, t)
        elif s == t:
            result = 0
        else:
            labeling = index.labeling
            if labeling.ordering.precedes(s, t):
                sl, low = si.get(t), s
            else:
                sl, low = si.get(s), t
            reg.histogram("sief.query.case4_hubs", SIZE_EDGES).observe(
                len(sl.ranks)
            )
            result = _case4_eval(labeling, sl, low)
        if cross:
            reg.counter("sief.query.cross_side").inc()
        reg.counter("sief.query.scalar").inc()
        reg.histogram("sief.query.scalar_seconds").observe(
            time.perf_counter() - t0
        )
        return result

    def batch_query(
        self,
        failed_edge: Tuple[int, int],
        pairs: Sequence[Tuple[int, int]],
    ) -> np.ndarray:
        """Vectorized ``d_{G - e}(s, t)`` for many pairs under one failure.

        The §4.4 classification runs as array operations: sorted-side
        membership is one ``searchsorted`` per side, Case 1–3 pairs are
        answered in a single :func:`batch_dist_query` pass over the
        original labeling, and only the Case 4 (cross-side) pairs touch
        the supplemental labels — their ``SL(high)`` slices are gathered
        from the flat supplement and folded through one more batch label
        query.  The labeling is frozen in place on first use.

        Returns a ``float64`` array (``numpy.inf`` for disconnected
        pairs) with exactly the values :meth:`distance` returns pairwise.
        """
        reg = _obs.registry
        t_start = time.perf_counter() if reg is not None else 0.0
        index = self.index
        p = validate_pairs(pairs, index.labeling.num_vertices)
        if p.size == 0:
            return np.zeros(0, dtype=np.float64)
        labeling = index.labeling
        if labeling.offsets is None:
            labeling.freeze()
        si = index.supplement(*failed_edge)
        with _obs.span("sief.query.batch"):
            s = p[:, 0]
            t = p[:, 1]

            side_u = np.asarray(si.affected.side_u, dtype=np.int64)
            side_v = np.asarray(si.affected.side_v, dtype=np.int64)
            s_in_u = _member_sorted(side_u, s)
            s_in_v = _member_sorted(side_v, s)
            t_in_u = _member_sorted(side_u, t)
            t_in_v = _member_sorted(side_v, t)
            cross = ((s_in_u & t_in_v) | (s_in_v & t_in_u)) & (s != t)

            out = np.empty(len(p), dtype=np.float64)
            if not cross.all():
                out[~cross] = batch_dist_query(labeling, p[~cross])
            if cross.any():
                out[cross] = self._batch_case4(si, s[cross], t[cross])
        if reg is not None:
            reg.counter("sief.query.batch_calls").inc()
            reg.counter("sief.query.batch_pairs").inc(len(p))
            reg.counter("sief.query.cross_side").inc(int(cross.sum()))
            reg.histogram("sief.query.batch_size", SIZE_EDGES).observe(len(p))
            reg.histogram("sief.query.batch_seconds").observe(
                time.perf_counter() - t_start
            )
        return out

    def _batch_case4(
        self, si, s: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """Case 4 evaluation for cross-side pairs, fully vectorized.

        For each pair the lower-ranked endpoint reads the higher-ranked
        one's supplemental label: gather every ``SL(high)`` slice from
        the flat supplement, answer ``dist(low, h, L)`` for all hubs in
        one batch label query, add the supplemental ``δ`` and min-reduce
        per pair.
        """
        labeling = self.index.labeling
        ordering = labeling.ordering
        rank_of = ordering.rank_array()
        vertex_at = ordering.vertex_array()

        swap = rank_of[s] > rank_of[t]
        low = np.where(swap, t, s)
        high = np.where(swap, s, t)

        flat = si.flat()
        result = np.full(len(s), np.inf, dtype=np.float64)
        if flat.vertices.size == 0:
            return result
        pos = np.searchsorted(flat.vertices, high)
        inb = pos < flat.vertices.size
        has = np.zeros(len(high), dtype=bool)
        has[inb] = flat.vertices[pos[inb]] == high[inb]
        if not has.any():
            return result
        # Ragged-gather the stored SL slices of the pairs that have one.
        slot = pos[has]
        pseudo_offsets = flat.offsets
        idx, pid_local = _ragged_gather(pseudo_offsets, slot)
        if idx.size == 0:
            return result
        pair_ids = np.nonzero(has)[0][pid_local]
        hub_vertices = vertex_at[flat.ranks[idx]]
        qpairs = np.stack([low[pair_ids], hub_vertices], axis=1)
        via = batch_dist_query(labeling, qpairs)
        totals = via + flat.dists[idx]
        np.minimum.at(result, pair_ids, totals)
        return result

    def distance_with_case(
        self, s: int, t: int, failed_edge: Tuple[int, int]
    ) -> Tuple[Distance, QueryCase]:
        """Like :meth:`distance` but also reports the §4.4 case taken."""
        result = self._distance_with_case_impl(s, t, failed_edge)
        reg = _obs.registry
        if reg is not None:
            reg.counter(
                f"sief.query.case.{result[1].name.lower()}"
            ).inc()
        return result

    def _distance_with_case_impl(
        self, s: int, t: int, failed_edge: Tuple[int, int]
    ) -> Tuple[Distance, QueryCase]:
        labeling = self.index.labeling
        si = self.index.supplement(*failed_edge)
        affected = si.affected
        side_s = affected.contains(s)
        side_t = affected.contains(t)

        if side_s is None and side_t is None:
            return dist_query(labeling, s, t), QueryCase.UNAFFECTED_PAIR
        if side_s is None or side_t is None:
            return dist_query(labeling, s, t), QueryCase.ONE_AFFECTED
        if side_s == side_t:
            return dist_query(labeling, s, t), QueryCase.SAME_SIDE

        if s == t:  # cannot happen across disjoint sides, but be explicit
            return 0, QueryCase.CROSS_SIDES
        # Case 4: the lower-ranked endpoint reads the higher-ranked one's
        # supplemental label.
        if labeling.ordering.precedes(s, t):
            low, high = s, t
        else:
            low, high = t, s
        return (
            _case4_eval(labeling, si.get(high), low),
            QueryCase.CROSS_SIDES,
        )


def _case4_eval(labeling, sl: SupplementalLabels, low: int) -> Distance:
    """``min over (h, δ) ∈ SL(high) of dist(low, h, L) + δ``.

    Exactness: when the pair ``(low, high)`` was processed during
    construction, either its exact entry was appended to ``SL(high)`` or
    the redundancy test certified that entries already present achieve
    the exact value; entries are never removed afterwards.  Hubs share
    ``low``'s side, so ``dist(low, h, L)`` is valid in ``G'``.
    """
    vertex = labeling.ordering.vertex
    best: Distance = INF
    for h_rank, delta in zip(sl.ranks, sl.dists):
        via = dist_query(labeling, low, vertex(h_rank))
        total = via + delta
        if total < best:
            best = total
    return best
