"""Distance query evaluation on a SIEF index (§4.4 of the paper).

Given a failed edge ``(u, v)`` and a pair ``(s, t)``, classify the query
by affected-side membership (binary search on the sorted sides):

* **Case 1** — neither endpoint affected: answer from the original index.
* **Case 2** — exactly one endpoint affected: distances between an
  affected and an unaffected vertex never change (Lemma 6); original
  index.
* **Case 3** — both endpoints on the *same* side: same-side distances are
  unchanged; original index.
* **Case 4** — endpoints on *opposite* sides: the only changed distances.
  With ``σ[s] < σ[t]``, every relevant hub lives in ``SL(t)`` on ``s``'s
  side, so ``d_{G'}(s, t) = min over (h, δ) ∈ SL(t) of dist(s, h, L) + δ``
  (``∞`` when the supplement holds no usable hub — the failure
  disconnected the pair).
"""

from __future__ import annotations

import enum
from typing import Tuple, Union

from repro.core.index import SIEFIndex
from repro.core.supplemental import SupplementalLabels
from repro.labeling.query import INF, dist_query

Distance = Union[int, float]


class QueryCase(enum.Enum):
    """Which of the paper's four §4.4 cases a query fell into."""

    UNAFFECTED_PAIR = 1
    ONE_AFFECTED = 2
    SAME_SIDE = 3
    CROSS_SIDES = 4


class SIEFQueryEngine:
    """Answers ``d_{G - e}(s, t)`` from a :class:`SIEFIndex`.

    Stateless apart from the index reference; safe to share.
    """

    __slots__ = ("index",)

    def __init__(self, index: SIEFIndex) -> None:
        self.index = index

    def distance(self, s: int, t: int, failed_edge: Tuple[int, int]) -> Distance:
        """Shortest-path distance between ``s`` and ``t`` avoiding one edge.

        Same answer as :meth:`distance_with_case` without the case report
        — this is the latency-critical entry point Table 4 measures, so
        it avoids the tuple allocation and duplicate branching.
        """
        index = self.index
        si = index.supplement(*failed_edge)
        affected = si.affected
        side_s = affected.contains(s)
        if side_s is not None:
            side_t = affected.contains(t)
            if side_t is not None and side_t != side_s:
                if s == t:
                    return 0
                labeling = index.labeling
                if labeling.ordering.precedes(s, t):
                    return _case4_eval(labeling, si.get(t), s)
                return _case4_eval(labeling, si.get(s), t)
        return dist_query(index.labeling, s, t)

    def distance_with_case(
        self, s: int, t: int, failed_edge: Tuple[int, int]
    ) -> Tuple[Distance, QueryCase]:
        """Like :meth:`distance` but also reports the §4.4 case taken."""
        labeling = self.index.labeling
        si = self.index.supplement(*failed_edge)
        affected = si.affected
        side_s = affected.contains(s)
        side_t = affected.contains(t)

        if side_s is None and side_t is None:
            return dist_query(labeling, s, t), QueryCase.UNAFFECTED_PAIR
        if side_s is None or side_t is None:
            return dist_query(labeling, s, t), QueryCase.ONE_AFFECTED
        if side_s == side_t:
            return dist_query(labeling, s, t), QueryCase.SAME_SIDE

        if s == t:  # cannot happen across disjoint sides, but be explicit
            return 0, QueryCase.CROSS_SIDES
        # Case 4: the lower-ranked endpoint reads the higher-ranked one's
        # supplemental label.
        if labeling.ordering.precedes(s, t):
            low, high = s, t
        else:
            low, high = t, s
        return (
            _case4_eval(labeling, si.get(high), low),
            QueryCase.CROSS_SIDES,
        )


def _case4_eval(labeling, sl: SupplementalLabels, low: int) -> Distance:
    """``min over (h, δ) ∈ SL(high) of dist(low, h, L) + δ``.

    Exactness: when the pair ``(low, high)`` was processed during
    construction, either its exact entry was appended to ``SL(high)`` or
    the redundancy test certified that entries already present achieve
    the exact value; entries are never removed afterwards.  Hubs share
    ``low``'s side, so ``dist(low, h, L)`` is valid in ``G'``.
    """
    vertex = labeling.ordering.vertex
    best: Distance = INF
    for h_rank, delta in zip(sl.ranks, sl.dists):
        via = dist_query(labeling, low, vertex(h_rank))
        total = via + delta
        if total < best:
            best = total
    return best
