"""Frozen SIEF index storage: flat-array npz with true memory-mapped loads.

The legacy binary format (:mod:`repro.core.serialize`) reconstructs
per-vertex Python lists on load — fine for CLI round-trips, hopeless for
a serving daemon that wants N worker processes sharing one read-only
copy of a multi-gigabyte index.  This module stores the *frozen* form of
a :class:`~repro.core.index.SIEFIndex` as a dict of flat numpy arrays:

* the labeling's CSR triplet (``offsets``/``hubs``/``dists``) plus the
  ordering permutation ``vertex_at`` — deliberately the same array names
  as the PR 4 shared-memory build spec (:mod:`repro.core.shm`), so the
  same packed dict publishes to a :class:`~repro.core.shm.SharedArena`
  unchanged;
* every per-edge supplement concatenated into one global CSR-of-CSRs:
  ``sup_case_offsets`` slices ``sup_vertices``/``sup_entry_offsets`` per
  failure case, and ``sup_entry_offsets`` slices ``sup_ranks``/
  ``sup_dists`` per affected vertex;
* the affected sides likewise (``side_u_offsets``/``side_u`` etc.).

Three transports share :func:`pack_index` / :func:`unpack_index`:

* :func:`save_index_npz` / :func:`load_index_npz` — a standard ``.npz``
  file.  Saved **uncompressed** by default, which is what makes
  ``mmap_mode="r"`` possible: npz members are stored contiguously inside
  the zip, so the loader maps each array straight out of the file with
  :class:`numpy.memmap` (zero copy, page-cache shared across processes)
  instead of reading it through :func:`numpy.load`.
* :func:`publish_index` / :func:`attach_index` — the index over a named
  POSIX shared-memory segment, for workers serving an index that was
  built in memory and never touched disk.

Loads produce :class:`MappedSupplement` views — duck-typed stand-ins for
:class:`~repro.core.supplemental.SupplementalIndex` whose label arrays
slice the backing buffer directly and whose affected-side tuples
materialize lazily on first query.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.affected import AffectedVertices
from repro.core.supplemental import FlatSupplement, SupplementalLabels
from repro.exceptions import SerializationError
from repro.labeling.label import Labeling
from repro.order.ordering import VertexOrdering

PathLike = Union[str, Path]

NPZ_INDEX_FORMAT_VERSION = 1
"""Version stamped into every packed store (checked on unpack)."""


# ---------------------------------------------------------------------------
# Mapped supplement: SupplementalIndex duck type over packed arrays
# ---------------------------------------------------------------------------


class MappedSupplement:
    """Read-only ``SI(u, v)`` view over slices of a packed store.

    Implements the surface :class:`~repro.core.query.SIEFQueryEngine`
    and :mod:`repro.core.serialize` touch — ``affected``, ``get``,
    ``flat``, ``edge``, ``labels``/``iter_labels``, ``total_entries`` —
    without ever copying the rank/dist arrays: ``flat()`` returns views
    into the backing buffer (file mmap, shm segment, or in-memory
    arrays).  The affected-side tuples and the per-vertex ``labels``
    dict are built lazily and cached; for batch-path serving they are
    never needed at all beyond the sides.
    """

    __slots__ = (
        "_u", "_v", "_disc", "_side_u", "_side_v",
        "_vertices", "_entry_offsets", "_ranks", "_dists",
        "_affected", "_flat", "_labels", "search_expanded",
    )

    def __init__(
        self,
        u: int,
        v: int,
        disconnected: bool,
        side_u: np.ndarray,
        side_v: np.ndarray,
        vertices: np.ndarray,
        entry_offsets: np.ndarray,
        ranks: np.ndarray,
        dists: np.ndarray,
    ) -> None:
        self._u = u
        self._v = v
        self._disc = disconnected
        self._side_u = side_u
        self._side_v = side_v
        self._vertices = vertices
        self._entry_offsets = entry_offsets
        self._ranks = ranks
        self._dists = dists
        self._affected: Optional[AffectedVertices] = None
        self._flat: Optional[FlatSupplement] = None
        self._labels: Optional[Dict[int, SupplementalLabels]] = None
        self.search_expanded = 0

    # -- SupplementalIndex surface ----------------------------------------

    @property
    def edge(self) -> Tuple[int, int]:
        return (self._u, self._v)

    @property
    def affected(self) -> AffectedVertices:
        av = self._affected
        if av is None:
            av = AffectedVertices(
                u=self._u,
                v=self._v,
                side_u=tuple(int(x) for x in self._side_u),
                side_v=tuple(int(x) for x in self._side_v),
                disconnected=self._disc,
            )
            self._affected = av
        return av

    def flat(self) -> FlatSupplement:
        flat = self._flat
        if flat is None:
            # Rebase the entry offsets to this case's slice.  Only the
            # (small) offsets array is rewritten; ranks/dists stay views
            # of the backing buffer.
            offsets = np.asarray(self._entry_offsets, dtype=np.int64)
            offsets = offsets - offsets[0] if offsets.size else offsets
            flat = FlatSupplement(
                np.asarray(self._vertices, dtype=np.int64),
                offsets,
                self._ranks,
                self._dists,
            )
            self._flat = flat
        return flat

    def get(self, vertex: int) -> SupplementalLabels:
        flat = self.flat()
        pos = int(np.searchsorted(flat.vertices, vertex))
        if pos >= flat.vertices.size or flat.vertices[pos] != vertex:
            return _EMPTY
        lo, hi = int(flat.offsets[pos]), int(flat.offsets[pos + 1])
        return SupplementalLabels(flat.ranks[lo:hi], flat.dists[lo:hi])

    @property
    def labels(self) -> Dict[int, SupplementalLabels]:
        """Materialized per-vertex labels (built once, on first access)."""
        labels = self._labels
        if labels is None:
            flat = self.flat()
            labels = {}
            for i, vertex in enumerate(flat.vertices):
                lo, hi = int(flat.offsets[i]), int(flat.offsets[i + 1])
                labels[int(vertex)] = SupplementalLabels(
                    [int(r) for r in flat.ranks[lo:hi]],
                    [int(d) for d in flat.dists[lo:hi]],
                )
            self._labels = labels
        return labels

    def iter_labels(self) -> Iterator[Tuple[int, SupplementalLabels]]:
        labels = self.labels
        for vertex in sorted(labels):
            yield vertex, labels[vertex]

    def total_entries(self) -> int:
        return int(len(self._ranks))

    def __repr__(self) -> str:
        return (
            f"MappedSupplement(edge={self.edge}, "
            f"entries={self.total_entries()})"
        )


_EMPTY = SupplementalLabels([], [])


# ---------------------------------------------------------------------------
# Pack / unpack
# ---------------------------------------------------------------------------


def pack_index(index) -> Dict[str, np.ndarray]:
    """Flatten a frozen :class:`SIEFIndex` into named flat arrays.

    The labeling keys (``vertex_at``/``offsets``/``hubs``/``dists``)
    match the PR 4 shm build spec so the packed dict doubles as a
    :meth:`SharedArena.publish` payload.
    """
    labeling = index.labeling
    if labeling.offsets is None:
        labeling.freeze()
    cases = list(index.iter_cases())
    m = len(cases)

    case_edges = np.zeros((m, 2), dtype=np.int64)
    case_disc = np.zeros(m, dtype=np.uint8)
    side_u_offsets = np.zeros(m + 1, dtype=np.int64)
    side_v_offsets = np.zeros(m + 1, dtype=np.int64)
    sup_case_offsets = np.zeros(m + 1, dtype=np.int64)

    side_u_parts: List[np.ndarray] = []
    side_v_parts: List[np.ndarray] = []
    sup_vertices_parts: List[np.ndarray] = []
    entry_sizes: List[int] = []
    ranks_parts: List[np.ndarray] = []
    dists_parts: List[np.ndarray] = []

    for i, (edge, si) in enumerate(cases):
        flat = si.flat()
        case_edges[i] = edge
        case_disc[i] = 1 if si.affected.disconnected else 0
        side_u_parts.append(np.asarray(si.affected.side_u, dtype=np.int64))
        side_v_parts.append(np.asarray(si.affected.side_v, dtype=np.int64))
        side_u_offsets[i + 1] = side_u_offsets[i] + len(si.affected.side_u)
        side_v_offsets[i + 1] = side_v_offsets[i] + len(si.affected.side_v)
        sup_vertices_parts.append(flat.vertices)
        sup_case_offsets[i + 1] = sup_case_offsets[i] + len(flat.vertices)
        entry_sizes.extend(
            int(flat.offsets[j + 1] - flat.offsets[j])
            for j in range(len(flat.vertices))
        )
        ranks_parts.append(flat.ranks)
        dists_parts.append(flat.dists)

    entry_offsets = np.zeros(len(entry_sizes) + 1, dtype=np.int64)
    if entry_sizes:
        np.cumsum(np.asarray(entry_sizes, dtype=np.int64), out=entry_offsets[1:])

    def _cat(parts: List[np.ndarray], dtype) -> np.ndarray:
        if not parts:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(parts).astype(dtype, copy=False)

    return {
        "format_version": np.int64(NPZ_INDEX_FORMAT_VERSION),
        # -- labeling (same keys as the shm build-input spec) --
        "vertex_at": np.asarray(
            labeling.ordering.sequence(), dtype=np.int32
        ),
        "offsets": np.asarray(labeling.offsets, dtype=np.int64),
        "hubs": np.asarray(labeling.hubs_flat, dtype=np.int32),
        "dists": np.asarray(labeling.dists_flat, dtype=np.int32),
        # -- failure cases --
        "case_edges": case_edges,
        "case_disc": case_disc,
        "side_u_offsets": side_u_offsets,
        "side_u": _cat(side_u_parts, np.int64),
        "side_v_offsets": side_v_offsets,
        "side_v": _cat(side_v_parts, np.int64),
        # -- supplements (CSR-of-CSRs) --
        "sup_case_offsets": sup_case_offsets,
        "sup_vertices": _cat(sup_vertices_parts, np.int64),
        "sup_entry_offsets": entry_offsets,
        "sup_ranks": _cat(ranks_parts, np.int32),
        "sup_dists": _cat(dists_parts, np.int32),
    }


_REQUIRED_KEYS = (
    "format_version", "vertex_at", "offsets", "hubs", "dists",
    "case_edges", "case_disc", "side_u_offsets", "side_u",
    "side_v_offsets", "side_v", "sup_case_offsets", "sup_vertices",
    "sup_entry_offsets", "sup_ranks", "sup_dists",
)


def unpack_index(arrays: Mapping[str, np.ndarray]):
    """Rebuild a :class:`SIEFIndex` over packed arrays — zero label copies.

    ``arrays`` may come from :func:`numpy.load`, the mmap loader, or a
    :meth:`SharedArena.arrays` dict; the returned index's supplement
    rank/dist arrays are views into whatever buffers back it.
    """
    from repro.core.index import SIEFIndex

    missing = [k for k in _REQUIRED_KEYS if k not in arrays]
    if missing:
        raise SerializationError(
            f"packed SIEF store is missing arrays: {missing}"
        )
    version = int(np.asarray(arrays["format_version"]).reshape(()))
    if version != NPZ_INDEX_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported SIEF npz format version {version}"
        )
    try:
        ordering = VertexOrdering([int(v) for v in arrays["vertex_at"]])
        labeling = Labeling.from_flat(
            ordering, arrays["offsets"], arrays["hubs"], arrays["dists"]
        )
        index = SIEFIndex(labeling)
        case_edges = arrays["case_edges"]
        case_disc = arrays["case_disc"]
        suo, su = arrays["side_u_offsets"], arrays["side_u"]
        svo, sv = arrays["side_v_offsets"], arrays["side_v"]
        sco = arrays["sup_case_offsets"]
        sup_vertices = arrays["sup_vertices"]
        seo = arrays["sup_entry_offsets"]
        sup_ranks, sup_dists = arrays["sup_ranks"], arrays["sup_dists"]
        for i in range(len(case_edges)):
            u, v = int(case_edges[i, 0]), int(case_edges[i, 1])
            vlo, vhi = int(sco[i]), int(sco[i + 1])
            # Entry offsets for this case's vertices: slice of length
            # vhi - vlo + 1 (empty-vertex cases take the degenerate
            # one-element slice at vlo).
            entry_off = seo[vlo : vhi + 1]
            elo = int(entry_off[0]) if entry_off.size else 0
            ehi = int(entry_off[-1]) if entry_off.size else 0
            index.supplements[(u, v)] = MappedSupplement(
                u, v,
                bool(case_disc[i]),
                su[int(suo[i]) : int(suo[i + 1])],
                sv[int(svo[i]) : int(svo[i + 1])],
                sup_vertices[vlo:vhi],
                entry_off,
                sup_ranks[elo:ehi],
                sup_dists[elo:ehi],
            )
    except (KeyError, ValueError, IndexError) as exc:
        raise SerializationError(f"bad packed SIEF store: {exc}") from exc
    return index


# ---------------------------------------------------------------------------
# npz file transport
# ---------------------------------------------------------------------------


def save_index_npz(index, path: PathLike, compress: bool = False) -> None:
    """Write the packed store to ``path`` as an npz archive.

    Uncompressed by default — compressed members cannot be memory-mapped
    (the loader would have to inflate them into private pages, defeating
    the one-physical-copy property).  Pass ``compress=True`` for archival
    copies that will only ever be loaded with ``mmap_mode=None``.
    """
    arrays = pack_index(index)
    if compress:
        np.savez_compressed(str(path), **arrays)
    else:
        np.savez(str(path), **arrays)


def _memmap_npz(path: Path, mode: str) -> Dict[str, np.ndarray]:
    """Map every member of an *uncompressed* npz straight from the file.

    npz is a zip; stored (not deflated) members sit contiguously, so each
    array is a :class:`numpy.memmap` at ``local header + npy header``
    into the archive itself.  Compressed members raise — re-save with
    ``compress=False``.
    """
    out: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf:
        for info in zf.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            if info.compress_type != zipfile.ZIP_STORED:
                raise SerializationError(
                    f"npz member {info.filename!r} is compressed and cannot "
                    "be memory-mapped; re-save with compress=False or load "
                    "with mmap_mode=None"
                )
            with zf.open(info) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = (
                        np.lib.format.read_array_header_1_0(member)
                    )
                elif version == (2, 0):
                    shape, fortran, dtype = (
                        np.lib.format.read_array_header_2_0(member)
                    )
                else:  # pragma: no cover - numpy only writes 1.0/2.0
                    raise SerializationError(
                        f"unsupported npy header version {version} "
                        f"in member {info.filename!r}"
                    )
                header_len = member.tell()
            if int(np.prod(shape)) == 0 or shape == ():
                # mmap cannot express zero-length (or 0-d) windows; these
                # arrays are bytes-sized, so a plain read loses nothing.
                with zf.open(info) as member:
                    out[name] = np.lib.format.read_array(member)
                continue
            # Absolute data offset: zip local file header (30 bytes +
            # name + extra) then the npy header we just parsed.
            with open(path, "rb") as fh:
                fh.seek(info.header_offset)
                lh = fh.read(30)
            if lh[:4] != b"PK\x03\x04":
                raise SerializationError(
                    f"corrupt zip local header for {info.filename!r}"
                )
            name_len, extra_len = struct.unpack("<HH", lh[26:30])
            data_offset = (
                info.header_offset + 30 + name_len + extra_len + header_len
            )
            out[name] = np.memmap(
                path,
                dtype=dtype,
                mode=mode,
                offset=data_offset,
                shape=shape,
                order="F" if fortran else "C",
            )
    return out


def load_index_npz(path: PathLike, mmap_mode: Optional[str] = None):
    """Load an index written by :func:`save_index_npz`.

    With ``mmap_mode="r"`` every non-trivial array is a read-only
    :class:`numpy.memmap` into the archive: nothing is copied at load
    time, and N processes loading the same file share one physical copy
    through the page cache.  With ``mmap_mode=None`` arrays are read
    into process-private memory (works for compressed archives too).
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such SIEF npz store: {path}")
    if mmap_mode is not None:
        if mmap_mode != "r":
            raise ValueError(
                f"mmap_mode must be 'r' or None, got {mmap_mode!r} "
                "(the packed store is read-only by design)"
            )
        try:
            arrays = _memmap_npz(path, mmap_mode)
        except zipfile.BadZipFile as exc:
            raise SerializationError(f"bad npz archive {path}: {exc}") from exc
        return unpack_index(arrays)
    try:
        with np.load(str(path)) as doc:
            arrays = {k: doc[k] for k in doc.files}
    except (OSError, zipfile.BadZipFile, ValueError) as exc:
        raise SerializationError(f"bad npz archive {path}: {exc}") from exc
    return unpack_index(arrays)


# ---------------------------------------------------------------------------
# Shared-memory transport (PR 4 segment spec)
# ---------------------------------------------------------------------------


def publish_index(index):
    """Publish a frozen index into one POSIX shared-memory segment.

    Returns the owning :class:`~repro.core.shm.SharedArena`; its
    :meth:`~repro.core.shm.SharedArena.spec` is the tiny picklable
    handle serving workers attach from.  The caller owns the segment's
    lifetime exactly as in the PR 4 parallel build.
    """
    from repro.core.shm import SharedArena

    arrays = pack_index(index)
    # 0-d arrays don't survive the arena layout round-trip; lift the
    # version scalar to shape (1,).
    arrays["format_version"] = np.asarray(
        [int(arrays["format_version"])], dtype=np.int64
    )
    return SharedArena.publish(arrays)


def attach_index(spec: dict):
    """Rebuild ``(arena, index)`` from a published spec — zero copies.

    The index's arrays are read-only views into the shared segment; keep
    the arena referenced (and ``close()`` it) for as long as the index
    is in use.
    """
    from repro.core.shm import SharedArena

    arena = SharedArena.attach(spec)
    arrays = dict(arena.arrays())
    return arena, unpack_index(arrays)
