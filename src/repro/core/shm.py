"""Zero-copy publication of build inputs over POSIX shared memory.

The legacy parallel build ships the graph and labeling to every worker by
pickling them into the pool initializer — ``O(workers × index size)``
serialization that dwarfs small builds and doubles peak memory on large
ones.  This module replaces that with one named
:class:`multiprocessing.shared_memory.SharedMemory` segment:

* the parent packs the six numpy arrays that fully describe the build
  inputs — CSR ``indptr``/``indices``, frozen labeling
  ``offsets``/``hubs``/``dists``, and the ordering's ``vertex_at``
  permutation — into a single segment at 64-byte aligned offsets;
* workers receive only a tiny picklable *spec* (segment name + per-array
  dtype/shape/offset), attach, and wrap zero-copy read-only views;
* the parent owns the segment's lifetime: ``close()`` + ``unlink()`` run
  in a ``finally`` so the segment disappears on success, worker
  exception, and ``KeyboardInterrupt`` alike.

Resource-tracker interplay: Python ≤3.12 registers shared memory on
*attach* as well as create, but pool children (fork *and* spawn) inherit
the parent's tracker process, so those registrations land in the same
name set the parent's ``create`` already populated — idempotent adds.
The parent's ``unlink()`` unregisters once, leaving the tracker clean;
workers must **not** unregister themselves (the first would strip the
parent's registration and the rest would crash the tracker with
``KeyError``).  If the parent is killed outright, the surviving tracker
unlinks the segment at shutdown — the backstop against leaks.

Segment names carry a ``sief-`` prefix so tests (and operators) can audit
``/dev/shm`` for leaks with a simple glob.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.labeling.label import Labeling
from repro.obs import hooks as _obs
from repro.order.ordering import VertexOrdering

_ALIGN = 64
"""Array offsets are rounded up to cache-line multiples."""

SEGMENT_PREFIX = "sief"
"""All segments are named ``sief-<pid>-<hex>`` — greppable in /dev/shm."""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArena:
    """One named shared-memory segment holding several aligned arrays.

    Create with :meth:`publish` (parent, owns the segment) or
    :meth:`attach` (worker, borrows it).  ``arrays()`` returns zero-copy
    read-only numpy views into the segment's buffer; they stay valid
    until :meth:`close`.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        layout: List[Tuple[str, str, Tuple[int, ...], int]],
        owner: bool,
    ) -> None:
        self._segment = segment
        self._layout = layout
        self._owner = owner
        self._closed = False

    # -- creation ----------------------------------------------------------

    @classmethod
    def publish(cls, arrays: Dict[str, np.ndarray]) -> "SharedArena":
        """Copy ``arrays`` into one fresh segment owned by the caller."""
        layout: List[Tuple[str, str, Tuple[int, ...], int]] = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _aligned(offset)
            layout.append((key, arr.dtype.str, arr.shape, offset))
            offset += arr.nbytes
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{os.urandom(4).hex()}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(offset, 1)
        )
        arena = cls(segment, layout, owner=True)
        for (key, dtype, shape, off), arr in zip(layout, arrays.values()):
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=off
            )
            view[...] = arr
        reg = _obs.registry
        if reg is not None:
            reg.counter("sief.shm.segments_published").inc()
            reg.gauge("sief.shm.bytes").set(segment.size)
        return arena

    @classmethod
    def attach(cls, spec: dict) -> "SharedArena":
        """Attach to a published arena from its picklable :meth:`spec`.

        Attaching re-registers the name with the (shared) resource
        tracker, which is an idempotent set-add; only the publisher's
        ``unlink()`` unregisters (see module docstring).
        """
        segment = shared_memory.SharedMemory(name=spec["name"], create=False)
        reg = _obs.registry
        if reg is not None:
            reg.counter("sief.shm.attaches").inc()
        return cls(segment, list(spec["arrays"]), owner=False)

    # -- access ------------------------------------------------------------

    def spec(self) -> dict:
        """A small picklable description workers attach from."""
        return {"name": self._segment.name, "arrays": list(self._layout)}

    @property
    def name(self) -> str:
        """The segment's name (its /dev/shm filename)."""
        return self._segment.name

    @property
    def nbytes(self) -> int:
        """Size of the backing segment in bytes."""
        return self._segment.size

    def arrays(self) -> Dict[str, np.ndarray]:
        """Zero-copy read-only views of every packed array."""
        out: Dict[str, np.ndarray] = {}
        for key, dtype, shape, off in self._layout:
            view = np.ndarray(
                tuple(shape),
                dtype=np.dtype(dtype),
                buffer=self._segment.buf,
                offset=off,
            )
            view.flags.writeable = False
            out[key] = view
        return out

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if not self._closed:
            self._closed = True
            self._segment.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner only, idempotent)."""
        if self._owner:
            self._owner = False
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


# -- build-input packing ----------------------------------------------------


def publish_build_inputs(csr: CSRGraph, labeling: Labeling) -> SharedArena:
    """Publish everything a build worker needs as one shared segment.

    ``labeling`` must be frozen (the caller freezes it; freezing is
    idempotent, in place, and never changes query results).
    """
    if not labeling.frozen:
        raise ValueError("labeling must be frozen before shm publication")
    return SharedArena.publish(
        {
            "indptr": csr.indptr,
            "indices": csr.indices,
            "offsets": labeling.offsets,
            "hubs": labeling.hubs_flat,
            "dists": labeling.dists_flat,
            "vertex_at": labeling.ordering.vertex_array(),
        }
    )


def attach_build_inputs(
    spec: dict,
) -> Tuple[SharedArena, CSRGraph, Labeling]:
    """Rebuild ``(arena, csr, labeling)`` from a published spec.

    The CSR and labeling wrap the shared buffers directly — no copies.
    The returned arena must stay referenced (and eventually closed) for
    as long as the views are in use.
    """
    arena = SharedArena.attach(spec)
    arrays = arena.arrays()
    csr = CSRGraph(arrays["indptr"], arrays["indices"])
    ordering = VertexOrdering(arrays["vertex_at"].tolist())
    labeling = Labeling.from_flat(
        ordering, arrays["offsets"], arrays["hubs"], arrays["dists"]
    )
    return arena, csr, labeling


def list_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live shared segments with our prefix (POSIX /dev/shm).

    The leak-check oracle for tests: after any build — successful,
    crashed, or interrupted — this must not list segments the finished
    build published.  Returns ``[]`` on platforms without /dev/shm.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-POSIX
        return []
    return sorted(e for e in entries if e.startswith(prefix + "-"))
