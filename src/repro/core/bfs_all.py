"""BFS ALL — Algorithm 3: relabeling with the *early* pruning strategy.

Identical double loop to BFS AFF, but the searches of one side share a
growing set of *temporary labels* ``TL``: every vertex the BFS from root
``r`` settles (and does not prune) remembers ``(rank(r), d)``.  A later
root ``r2`` dequeuing vertex ``w`` at distance ``d`` prunes ``w`` — skips
its neighbors entirely — whenever an earlier root already covers it:

    ``min over (r', d') ∈ TL(w) of dist(r2, r', L) + d' <= d``

(``r'`` and ``r2`` share a side, so the original-index distance is valid
in ``G'``).  This is PLL's pruning idea replayed inside each failure
case: it costs memory (``TL``) but cuts the later searches' exploration,
which is how the paper's Figure 7 has BFS ALL winning.

The produced index is *identical* to BFS AFF's.  Pruning can leave a
target unreached or reached along a detour with an overestimated
distance — but any such target is provably already covered by earlier
supplemental entries, so the shared late redundancy test (``<=``, see
:mod:`repro.core._relabel`) rejects exactly the candidates BFS AFF would
have rejected.  That argument also means pruned *targets* need no special
bookkeeping: the late test subsumes it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core._relabel import is_redundant, order_side_by_rank
from repro.core.affected import AffectedVertices
from repro.core.supplemental import SupplementalIndex
from repro.labeling.label import Labeling
from repro.labeling.query import dist_query

TL_CAP = 16
"""Maximum temporary-label entries kept per vertex.

Pruning power comes overwhelmingly from the first few (lowest-ranked)
roots that touched a vertex; capping the list bounds the per-visit test
cost at a negligible loss of pruning (measured: cap 16 retains ~4.5× of
the ~5.4× exploration reduction on the benchmark datasets).
"""


def _relabel_side_early(
    adj,
    failed: tuple,
    labeling: Labeling,
    roots: Sequence[int],
    targets_by_rank: List[int],
    si: SupplementalIndex,
    tl_cap: int = TL_CAP,
) -> None:
    """One direction of Algorithm 3 (roots side A, targets side B)."""
    rank = labeling.ordering.rank
    vertex = labeling.ordering.vertex
    a, b = failed
    expanded = 0
    # Temporary labels: vertex -> ([root ranks], [dists]), this side only.
    tl: Dict[int, Tuple[List[int], List[int]]] = {}

    for r in roots:
        r_rank = rank(r)
        targets = [t for t in targets_by_rank if rank(t) > r_rank]
        if not targets:
            continue
        remaining = len(targets)
        target_set = set(targets)
        # dist(r, r') for earlier roots r', keyed by rank; shared between
        # the TL prune test and the late redundancy test (supplemental
        # hubs *are* earlier roots).
        root_dist: Dict[int, float] = {}

        dist: Dict[int, int] = {r: 0}
        queue = deque((r,))
        while queue and remaining:
            v = queue.popleft()
            d = dist[v]
            # Early prune test against temporary labels of earlier roots.
            entry = tl.get(v)
            if entry is not None:
                ranks_v, dists_v = entry
                covered = False
                for i in range(len(ranks_v)):
                    rr = ranks_v[i]
                    via = root_dist.get(rr)
                    if via is None:
                        via = dist_query(labeling, r, vertex(rr))
                        root_dist[rr] = via
                    if via + dists_v[i] <= d:
                        covered = True
                        break
                if covered:
                    continue
                if len(ranks_v) < tl_cap:
                    ranks_v.append(r_rank)
                    dists_v.append(d)
            else:
                tl[v] = ([r_rank], [d])
            expanded += 1
            nd = d + 1
            for w in adj[v]:
                if w in dist or (v == a and w == b) or (v == b and w == a):
                    continue
                dist[w] = nd
                queue.append(w)
                if w in target_set:
                    remaining -= 1
                    if not remaining:
                        break

        for t in targets:
            d = dist.get(t)
            if d is None:
                continue  # unreached: disconnected, or pruned away (and
                #           then provably redundant anyway)
            sl = si.label_of(t)
            if not is_redundant(labeling, sl.ranks, sl.dists, r, d, root_dist):
                sl.append(r_rank, d)
    si.search_expanded += expanded


def build_supplemental_bfs_all(
    graph,
    labeling: Labeling,
    affected: AffectedVertices,
    dist_buf: Optional[List[int]] = None,
    csr=None,
) -> SupplementalIndex:
    """Algorithm 3: build ``SI(u,v)`` with TL-pruned BFS (early pruning).

    Same signature and output as
    :func:`repro.core.bfs_aff.build_supplemental_bfs_aff`; the temporary
    labels live only for the duration of one side's loop, matching the
    paper's per-failure-case ``TL`` reset.
    """
    del dist_buf, csr
    adj = graph.adjacency()
    si = SupplementalIndex(affected)
    if affected.disconnected:
        # Bridge failure: no cross-side path survives, SI stays empty.
        return si
    side_u = order_side_by_rank(affected.side_u, labeling)
    side_v = order_side_by_rank(affected.side_v, labeling)
    failed = (affected.u, affected.v)
    _relabel_side_early(adj, failed, labeling, side_u, side_v, si)
    _relabel_side_early(adj, failed, labeling, side_v, side_u, si)
    si.drop_empty()
    return si
