"""Out-of-core SIEF storage: append-only segments + flat offset index.

The npz store (:mod:`repro.core.npzstore`) packs the whole index into
one archive — perfect for serving an index that already fit in RAM, but
useless for *building* one that never will: ``pack_index`` wants every
supplement resident at once.  This module is the spill target of the
sharded build: each finished shard's supplements append to a single
segment file, the in-RAM shard is dropped, and peak build memory becomes
O(shard) instead of O(E).

A store is a directory ``<name>.siefseg/`` holding three files:

``labeling.npz``
    The frozen labeling's flat arrays (``vertex_at``/``offsets``/
    ``hubs``/``dists`` — the npzstore key names), saved uncompressed so
    :func:`repro.core.npzstore._memmap_npz` maps them without copies.
``segments.bin``
    One record per failure case, appended in canonical edge order.  A
    record is seven little-endian ``int64`` header words ``(u, v,
    n_side_u, n_side_v, n_vertices, n_entries, disconnected)`` followed
    by ``side_u``/``side_v``/``vertices`` (``int64``), the rebased
    ``entry_offsets`` (``int64``, length ``n_vertices + 1``) and the
    concatenated ``ranks``/``dists`` (``int32``).  Every field is a
    multiple of 8 bytes, so records stay 8-aligned and all views are
    zero-copy slices of the mmap.
``toc.npz``
    The flat offset index: per-case byte offsets/lengths into
    ``segments.bin`` plus the sorted ``uint64`` edge keys
    (``u << 32 | v``) a query resolves with one ``searchsorted``.

:class:`SegmentStore` verifies the table of contents against the
segment file on every access and raises
:class:`~repro.exceptions.StoreError` on any disagreement — a corrupt
store refuses to answer rather than return wrong distances.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.npzstore import MappedSupplement, _memmap_npz
from repro.exceptions import FailureCaseNotIndexed, StoreError
from repro.graph.graph import Graph, normalize_edge
from repro.labeling.label import Labeling
from repro.obs import hooks as _obs
from repro.order.ordering import VertexOrdering

Edge = Tuple[int, int]
PathLike = Union[str, Path]

SEGSTORE_FORMAT_VERSION = 1
"""Version stamped into ``toc.npz`` (checked on open)."""

STORE_SUFFIX = ".siefseg"
"""Directory suffix :meth:`repro.core.index.SIEFIndex.load` routes on."""

LABELING_FILE = "labeling.npz"
SEGMENTS_FILE = "segments.bin"
TOC_FILE = "toc.npz"

_HEADER_WORDS = 7
_HEADER_BYTES = _HEADER_WORDS * 8

DEFAULT_SHARD_CASES = 4096
"""Default failure cases per build shard (~a few MB of supplements)."""


def _edge_key(u: int, v: int) -> int:
    """Canonical ``uint64`` TOC key of a normalized edge."""
    return (u << 32) | v


def encode_case(edge: Edge, si) -> bytes:
    """Serialize one supplemental index to its segment record."""
    u, v = edge
    affected = si.affected
    flat = si.flat()
    vertices = np.ascontiguousarray(flat.vertices, dtype="<i8")
    offsets = np.ascontiguousarray(flat.offsets, dtype="<i8")
    if offsets.size:
        offsets = offsets - offsets[0]
    else:
        offsets = np.zeros(1, dtype="<i8")
    ranks = np.ascontiguousarray(flat.ranks, dtype="<i4")
    dists = np.ascontiguousarray(flat.dists, dtype="<i4")
    side_u = np.asarray(affected.side_u, dtype="<i8")
    side_v = np.asarray(affected.side_v, dtype="<i8")
    header = np.array(
        [
            u,
            v,
            len(side_u),
            len(side_v),
            len(vertices),
            len(ranks),
            1 if affected.disconnected else 0,
        ],
        dtype="<i8",
    )
    return b"".join(
        a.tobytes()
        for a in (header, side_u, side_v, vertices, offsets, ranks, dists)
    )


def _record_nbytes(
    n_side_u: int, n_side_v: int, n_vertices: int, n_entries: int
) -> int:
    return (
        _HEADER_BYTES
        + 8 * (n_side_u + n_side_v + n_vertices + n_vertices + 1)
        + 8 * n_entries  # int32 ranks + int32 dists
    )


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class SegmentWriter:
    """Builds a ``.siefseg`` store: labeling up front, cases appended.

    Cases must arrive in ascending canonical edge order (the sharded
    build's global edge sort guarantees this); the TOC is written by
    :meth:`finalize` (or context-manager exit).
    """

    def __init__(self, path: PathLike, labeling: Labeling) -> None:
        self.path = Path(path)
        if self.path.suffix != STORE_SUFFIX:
            self.path = self.path.with_name(self.path.name + STORE_SUFFIX)
        self.path.mkdir(parents=True, exist_ok=True)
        labeling.freeze()
        np.savez(
            str(self.path / LABELING_FILE),
            format_version=np.int64(SEGSTORE_FORMAT_VERSION),
            vertex_at=np.asarray(
                labeling.ordering.sequence(), dtype=np.int32
            ),
            offsets=np.asarray(labeling.offsets, dtype=np.int64),
            hubs=np.asarray(labeling.hubs_flat, dtype=np.int32),
            dists=np.asarray(labeling.dists_flat, dtype=np.int32),
        )
        self.num_vertices = labeling.num_vertices
        self._seg = open(self.path / SEGMENTS_FILE, "wb")
        self._pos = 0
        self._keys: List[int] = []
        self._edges: List[Edge] = []
        self._offsets: List[int] = []
        self._lengths: List[int] = []
        self.total_entries = 0
        self._finalized = False

    def append_case(self, edge: Edge, si) -> int:
        """Spill one supplement; returns the record's byte length."""
        key = normalize_edge(*edge)
        if self._keys and _edge_key(*key) <= self._keys[-1]:
            raise StoreError(
                f"case {key} appended out of canonical edge order"
            )
        blob = encode_case(key, si)
        self._seg.write(blob)
        self._keys.append(_edge_key(*key))
        self._edges.append(key)
        self._offsets.append(self._pos)
        self._lengths.append(len(blob))
        self._pos += len(blob)
        self.total_entries += si.total_entries()
        return len(blob)

    @property
    def num_cases(self) -> int:
        return len(self._keys)

    @property
    def bytes_written(self) -> int:
        return self._pos

    def finalize(self) -> Path:
        """Flush the segment file and write the TOC; idempotent."""
        if self._finalized:
            return self.path
        self._seg.flush()
        os.fsync(self._seg.fileno())
        self._seg.close()
        np.savez(
            str(self.path / TOC_FILE),
            format_version=np.int64(SEGSTORE_FORMAT_VERSION),
            num_vertices=np.int64(self.num_vertices),
            case_keys=np.asarray(self._keys, dtype=np.uint64),
            case_edges=np.asarray(
                self._edges, dtype=np.int64
            ).reshape(len(self._edges), 2),
            case_offsets=np.asarray(self._offsets, dtype=np.int64),
            case_lengths=np.asarray(self._lengths, dtype=np.int64),
            total_entries=np.int64(self.total_entries),
            segment_bytes=np.int64(self._pos),
        )
        self._finalized = True
        return self.path

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        elif not self._seg.closed:
            self._seg.close()


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

_TOC_KEYS = (
    "format_version", "num_vertices", "case_keys", "case_edges",
    "case_offsets", "case_lengths", "total_entries", "segment_bytes",
)


class SegmentStore:
    """Read side of a ``.siefseg`` directory: mmap'd, validated access.

    ``load_case`` decodes one record into a
    :class:`~repro.core.npzstore.MappedSupplement` whose arrays are
    zero-copy views of the segment mmap; nothing beyond the touched
    pages ever becomes resident.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        if not self.path.is_dir():
            raise StoreError(f"no such segment store: {self.path}")
        for name in (LABELING_FILE, SEGMENTS_FILE, TOC_FILE):
            if not (self.path / name).exists():
                raise StoreError(
                    f"segment store {self.path} is missing {name}"
                )
        try:
            with np.load(str(self.path / TOC_FILE)) as doc:
                toc = {k: doc[k] for k in doc.files}
        except Exception as exc:
            raise StoreError(
                f"unreadable TOC in {self.path}: {exc}"
            ) from exc
        missing = [k for k in _TOC_KEYS if k not in toc]
        if missing:
            raise StoreError(f"TOC of {self.path} is missing {missing}")
        version = int(toc["format_version"])
        if version != SEGSTORE_FORMAT_VERSION:
            raise StoreError(
                f"unsupported segment store version {version}"
            )
        self.num_vertices = int(toc["num_vertices"])
        self._keys = np.asarray(toc["case_keys"], dtype=np.uint64)
        self._edges = np.asarray(toc["case_edges"], dtype=np.int64)
        self._offsets = np.asarray(toc["case_offsets"], dtype=np.int64)
        self._lengths = np.asarray(toc["case_lengths"], dtype=np.int64)
        self.total_entries = int(toc["total_entries"])
        m = len(self._keys)
        if (
            self._edges.shape != (m, 2)
            or len(self._offsets) != m
            or len(self._lengths) != m
        ):
            raise StoreError(f"inconsistent TOC arrays in {self.path}")
        if m and np.any(self._keys[1:] <= self._keys[:-1]):
            raise StoreError(f"TOC keys not sorted in {self.path}")
        seg_path = self.path / SEGMENTS_FILE
        self._seg_size = seg_path.stat().st_size
        if int(toc["segment_bytes"]) != self._seg_size:
            raise StoreError(
                f"segment file {seg_path} is {self._seg_size} bytes, "
                f"TOC expects {int(toc['segment_bytes'])} "
                "(truncated or partially written store)"
            )
        if self._seg_size:
            self._seg = np.memmap(seg_path, dtype=np.uint8, mode="r")
        else:
            self._seg = np.zeros(0, dtype=np.uint8)
        self._labeling: Optional[Labeling] = None

    # -- labeling -----------------------------------------------------------

    def labeling(self, mmap: bool = True) -> Labeling:
        """The frozen original labeling (mmap'd by default, cached)."""
        if self._labeling is None:
            path = self.path / LABELING_FILE
            try:
                if mmap:
                    arrays = _memmap_npz(path, "r")
                else:
                    with np.load(str(path)) as doc:
                        arrays = {k: doc[k] for k in doc.files}
            except Exception as exc:
                raise StoreError(
                    f"unreadable labeling in {self.path}: {exc}"
                ) from exc
            for key in ("vertex_at", "offsets", "hubs", "dists"):
                if key not in arrays:
                    raise StoreError(
                        f"labeling of {self.path} is missing {key!r}"
                    )
            ordering = VertexOrdering(
                [int(x) for x in arrays["vertex_at"]]
            )
            self._labeling = Labeling.from_flat(
                ordering,
                arrays["offsets"],
                arrays["hubs"],
                arrays["dists"],
            )
        return self._labeling

    # -- case access --------------------------------------------------------

    @property
    def num_cases(self) -> int:
        return len(self._keys)

    def case_edges(self) -> List[Edge]:
        """All indexed failure edges, canonical order (TOC only)."""
        return [(int(u), int(v)) for u, v in self._edges]

    def has_case(self, u: int, v: int) -> bool:
        key = _edge_key(*normalize_edge(u, v))
        pos = int(np.searchsorted(self._keys, np.uint64(key)))
        return pos < len(self._keys) and int(self._keys[pos]) == key

    def load_case(self, u: int, v: int) -> MappedSupplement:
        """Decode the record for failed edge ``(u, v)``.

        Raises :class:`FailureCaseNotIndexed` for unknown edges and
        :class:`StoreError` whenever the record disagrees with the TOC.
        """
        cu, cv = normalize_edge(u, v)
        key = _edge_key(cu, cv)
        pos = int(np.searchsorted(self._keys, np.uint64(key)))
        if pos >= len(self._keys) or int(self._keys[pos]) != key:
            raise FailureCaseNotIndexed(u, v)
        return self._decode(pos, cu, cv)

    def _decode(self, pos: int, u: int, v: int) -> MappedSupplement:
        off = int(self._offsets[pos])
        length = int(self._lengths[pos])
        if off < 0 or length < _HEADER_BYTES:
            raise StoreError(
                f"case ({u}, {v}): TOC offset {off}/length {length} invalid"
            )
        if off + length > self._seg_size:
            raise StoreError(
                f"case ({u}, {v}): record [{off}, {off + length}) is past "
                f"the end of the {self._seg_size}-byte segment file "
                "(truncated store)"
            )
        rec = self._seg[off : off + length]
        header = rec[:_HEADER_BYTES].view("<i8")
        ru, rv, n_su, n_sv, n_verts, n_ent, disc = (int(x) for x in header)
        if (ru, rv) != (u, v):
            raise StoreError(
                f"case ({u}, {v}): segment record is for edge "
                f"({ru}, {rv}) — TOC/segment mismatch"
            )
        if min(n_su, n_sv, n_verts, n_ent) < 0 or _record_nbytes(
            n_su, n_sv, n_verts, n_ent
        ) != length:
            raise StoreError(
                f"case ({u}, {v}): record header describes "
                f"{_record_nbytes(n_su, n_sv, n_verts, n_ent)} bytes, "
                f"TOC stores {length} (corrupt record)"
            )
        cur = _HEADER_BYTES

        def take(n_items: int, dtype: str) -> np.ndarray:
            nonlocal cur
            width = np.dtype(dtype).itemsize
            out = rec[cur : cur + n_items * width].view(dtype)
            cur += n_items * width
            return out

        side_u = take(n_su, "<i8")
        side_v = take(n_sv, "<i8")
        vertices = take(n_verts, "<i8")
        entry_offsets = take(n_verts + 1, "<i8")
        ranks = take(n_ent, "<i4")
        dists = take(n_ent, "<i4")
        if int(entry_offsets[0]) != 0 or int(entry_offsets[-1]) != n_ent:
            raise StoreError(
                f"case ({u}, {v}): entry offsets cover "
                f"[{int(entry_offsets[0])}, {int(entry_offsets[-1])}], "
                f"record stores {n_ent} entries (corrupt offsets)"
            )
        return MappedSupplement(
            u, v, bool(disc), side_u, side_v,
            vertices, entry_offsets, ranks, dists,
        )

    def iter_cases(self) -> Iterator[Tuple[Edge, MappedSupplement]]:
        """Stream every case in canonical order (nothing cached)."""
        for pos in range(len(self._keys)):
            u, v = int(self._edges[pos, 0]), int(self._edges[pos, 1])
            yield (u, v), self._decode(pos, u, v)

    def to_index(self):
        """Rebuild a fully-resident :class:`SIEFIndex` from the store.

        Used by ``SIEFIndex.load`` on ``.siefseg`` paths and by the
        conformance adapters' ``index_to_bytes`` equality check; the
        supplements stay zero-copy views of the segment mmap.
        """
        from repro.core.index import SIEFIndex

        index = SIEFIndex(self.labeling())
        for edge, si in self.iter_cases():
            index.supplements[edge] = si
        return index

    def close(self) -> None:
        """Drop the segment mmap (views handed out become invalid)."""
        self._seg = np.zeros(0, dtype=np.uint8)
        self._labeling = None

    def __repr__(self) -> str:
        return (
            f"SegmentStore({self.path}, n={self.num_vertices}, "
            f"cases={self.num_cases}, bytes={self._seg_size})"
        )


# ---------------------------------------------------------------------------
# Sharded out-of-core build
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedBuildReport:
    """Aggregate of one out-of-core build (the spill-side companion of
    :class:`~repro.core.builder.BuildReport`)."""

    num_shards: int
    num_cases: int
    total_entries: int
    spilled_bytes: int
    max_resident_cases: int
    build_seconds: float


def build_sief_sharded(
    graph: Graph,
    path: PathLike,
    labeling: Optional[Labeling] = None,
    algorithm: str = "batched",
    edges: Optional[Sequence[Edge]] = None,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    jobs: int = 1,
) -> Tuple[Path, ShardedBuildReport]:
    """Build a SIEF index out of core: shard E, build, spill, drop.

    The edge list is sorted globally and split into contiguous shards,
    so the concatenated segment order equals the canonical order of an
    in-RAM build — ``index_to_bytes`` of the rebuilt store matches the
    in-RAM index byte for byte.  One :class:`SIEFBuilder` (one CSR
    snapshot) is reused across shards; with ``jobs > 1`` each shard
    routes through :func:`repro.core.parallel.build_sief_parallel` over
    shared memory instead.

    Returns ``(store_path, ShardedBuildReport)``.
    """
    from repro.core.builder import SIEFBuilder
    from repro.labeling.pll import build_pll

    t0 = time.perf_counter()
    if labeling is None:
        labeling = build_pll(graph, freeze=True)
    if edges is None:
        edge_list = sorted(graph.edges())
    else:
        edge_list = sorted(normalize_edge(*e) for e in edges)
    m = len(edge_list)
    if shard_size is None:
        if shards is not None:
            shard_size = max(1, -(-m // max(1, shards)))
        else:
            shard_size = DEFAULT_SHARD_CASES
    shard_size = max(1, shard_size)

    writer = SegmentWriter(path, labeling)
    builder = SIEFBuilder(graph, labeling, algorithm) if jobs <= 1 else None
    reg = _obs.registry
    num_shards = 0
    max_resident = 0
    with _obs.span("sief.ooc.build"):
        for s0 in range(0, m, shard_size):
            shard = edge_list[s0 : s0 + shard_size]
            with _obs.span("sief.ooc.shard"):
                if builder is not None:
                    shard_index, _ = builder.build(edges=shard)
                else:
                    from repro.core.parallel import build_sief_parallel

                    shard_index, _ = build_sief_parallel(
                        graph,
                        labeling,
                        algorithm,
                        workers=jobs,
                        edges=shard,
                        shared_memory=True,
                    )
                resident = shard_index.num_cases
                max_resident = max(max_resident, resident)
                spilled = 0
                for edge, si in shard_index.iter_cases():
                    spilled += writer.append_case(edge, si)
                # Drop the shard before building the next one — this is
                # the O(shard) peak-memory property.
                shard_index.supplements.clear()
            num_shards += 1
            if reg is not None:
                reg.counter("sief.ooc.shards").inc()
                reg.counter("sief.ooc.spilled_cases").inc(len(shard))
                reg.counter("sief.ooc.spilled_bytes").inc(spilled)
                reg.gauge("sief.ooc.max_resident_cases").set(max_resident)
    store_path = writer.finalize()
    report = ShardedBuildReport(
        num_shards=num_shards,
        num_cases=writer.num_cases,
        total_entries=writer.total_entries,
        spilled_bytes=writer.bytes_written,
        max_resident_cases=max_resident,
        build_seconds=time.perf_counter() - t0,
    )
    return store_path, report
