"""RELABEL stage output: supplemental label structures.

For a failed edge ``(u, v)`` the supplemental index ``SI(u,v)`` maps an
affected vertex ``t`` to its *supplemental label* ``SL(t)``: pairs
``(h, δ)`` where ``h`` is an affected vertex **on the opposite side**
with ``σ[h] < σ[t]`` and ``δ = d_{G'}(h, t)``.  Only distances the
original index can no longer answer (the cross-side Case 4 pairs) are
stored, which is what makes SIEF compact.

As in :mod:`repro.labeling.label`, hubs are stored as ordering ranks in
strictly ascending order, so Case-4 evaluation is a merge against the
querying vertex's original label-distance function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.affected import AffectedVertices
from repro.exceptions import IndexError_


class FlatSupplement(NamedTuple):
    """Frozen CSR-style view of one edge's supplemental labels.

    Same storage discipline as the frozen
    :class:`~repro.labeling.label.Labeling`: ``SL(vertices[i])`` occupies
    ``ranks[offsets[i]:offsets[i+1]]`` / ``dists[...]``.  ``vertices`` is
    sorted ascending, so batch lookups are one ``searchsorted``.
    """

    vertices: np.ndarray  # int64, sorted vertex ids with a stored label
    offsets: np.ndarray   # int64, length len(vertices) + 1
    ranks: np.ndarray     # int32, concatenated hub ranks
    dists: np.ndarray     # int32, concatenated supplemental distances


@dataclass
class SupplementalLabels:
    """Mutable per-vertex supplemental label: parallel rank/dist lists."""

    ranks: List[int]
    dists: List[int]

    def __len__(self) -> int:
        return len(self.ranks)

    def append(self, rank: int, dist: int) -> None:
        """Append an entry, enforcing ascending rank order."""
        if self.ranks and rank <= self.ranks[-1]:
            raise IndexError_(
                f"supplemental entries must arrive in ascending rank order "
                f"(got {rank} after {self.ranks[-1]})"
            )
        self.ranks.append(rank)
        self.dists.append(dist)

    def pairs(self) -> List[Tuple[int, int]]:
        """``(rank, dist)`` tuples."""
        return list(zip(self.ranks, self.dists))


class SupplementalIndex:
    """``SI(u,v)`` — affected sides plus supplemental labels for one edge.

    Attributes
    ----------
    affected:
        The :class:`AffectedVertices` split this index was built from.
    labels:
        Mapping of affected vertex id -> :class:`SupplementalLabels`.
        Vertices whose supplemental label came out empty after pruning
        are not stored.
    """

    __slots__ = ("affected", "labels", "search_expanded", "_flat")

    def __init__(self, affected: AffectedVertices) -> None:
        self.affected = affected
        self.labels: Dict[int, SupplementalLabels] = {}
        # Vertices the RELABEL stage's searches expanded while building
        # this index — a machine-independent cost measure the Figure 7
        # bench reports alongside wall-clock.  Not part of equality.
        self.search_expanded = 0
        # Cached FlatSupplement for the batch query path (built lazily).
        self._flat: Optional[FlatSupplement] = None

    @property
    def edge(self) -> Tuple[int, int]:
        """The failed edge ``(u, v)`` this index covers."""
        return (self.affected.u, self.affected.v)

    def label_of(self, vertex: int) -> SupplementalLabels:
        """Get-or-create the supplemental label of ``vertex``."""
        label = self.labels.get(vertex)
        if label is None:
            label = SupplementalLabels([], [])
            self.labels[vertex] = label
        return label

    def get(self, vertex: int) -> SupplementalLabels:
        """Supplemental label of ``vertex`` (empty label if none stored)."""
        return self.labels.get(vertex, _EMPTY)

    def drop_empty(self) -> None:
        """Remove vertices whose label stayed empty (storage hygiene)."""
        self.labels = {v: sl for v, sl in self.labels.items() if len(sl)}

    def total_entries(self) -> int:
        """Supplemental label entry count — the per-edge SLEN statistic."""
        return sum(len(sl) for sl in self.labels.values())

    def flat(self) -> FlatSupplement:
        """The frozen flat view of this index's labels (cached).

        Supplemental labels only ever *grow* (``append`` enforces
        ascending ranks, nothing is removed), so the cache revalidates by
        comparing stored-vertex and entry counts and rebuilds when the
        index changed since the last freeze.
        """
        stored = {v: sl for v, sl in self.labels.items() if len(sl)}
        flat = self._flat
        if (
            flat is not None
            and len(flat.vertices) == len(stored)
            and len(flat.ranks) == sum(len(sl) for sl in stored.values())
        ):
            return flat
        vertices = np.asarray(sorted(stored), dtype=np.int64)
        offsets = np.zeros(len(vertices) + 1, dtype=np.int64)
        sizes = np.fromiter(
            (len(stored[int(v)]) for v in vertices),
            count=len(vertices),
            dtype=np.int64,
        )
        np.cumsum(sizes, out=offsets[1:])
        total = int(offsets[-1])
        ranks = np.empty(total, dtype=np.int32)
        dists = np.empty(total, dtype=np.int32)
        pos = 0
        for v in vertices:
            sl = stored[int(v)]
            k = len(sl)
            ranks[pos : pos + k] = sl.ranks
            dists[pos : pos + k] = sl.dists
            pos += k
        flat = FlatSupplement(vertices, offsets, ranks, dists)
        self._flat = flat
        return flat

    def iter_labels(self) -> Iterator[Tuple[int, SupplementalLabels]]:
        """Iterate stored ``(vertex, label)`` pairs in vertex order."""
        for v in sorted(self.labels):
            yield v, self.labels[v]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SupplementalIndex):
            return NotImplemented
        if self.affected != other.affected:
            return False
        mine = {v: (sl.ranks, sl.dists) for v, sl in self.labels.items() if len(sl)}
        theirs = {
            v: (sl.ranks, sl.dists) for v, sl in other.labels.items() if len(sl)
        }
        return mine == theirs

    def __repr__(self) -> str:
        return (
            f"SupplementalIndex(edge={self.edge}, "
            f"affected={self.affected.total}, entries={self.total_entries()})"
        )


_EMPTY = SupplementalLabels([], [])
