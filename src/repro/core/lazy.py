"""On-demand SIEF: build failure cases lazily, track graph growth.

The paper's offline build covers *all* ``m`` failure cases up front —
right for a read-only index, wasteful when only a few edges ever fail or
when the graph keeps evolving.  :class:`LazySIEFIndex` combines the
pieces this library already has into the deployment-shaped object:

* supplements are built on the **first query naming an edge** and cached
  (amortizing the paper's per-case IDENTIFY + RELABEL cost);
* **edge insertions** are absorbed in place via the dynamic-PLL repair
  (:mod:`repro.labeling.dynamic`), which keeps the labeling an exact
  cover — cached supplements are invalidated, because an insertion can
  change both affected sets and replacement distances;
* a **permanent deletion** (`commit_failure`) turns a failure case into
  the new baseline: the library rebuilds the labeling for the shrunk
  graph (decremental 2-hop maintenance is exactly what the paper proves
  impractical, so honesty demands a rebuild) and drops all supplements.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from repro.core.builder import RELABEL_ALGORITHMS, record_case_obs
from repro.core.builder import build_one_case
from repro.graph.csr import CSRGraph
from repro.obs import hooks as _obs
from repro.obs.context import attribute_page_fault
from repro.core.index import SIEFIndex
from repro.core.query import SIEFQueryEngine
from repro.exceptions import EdgeNotFound, IndexError_
from repro.graph.graph import Graph, normalize_edge
from repro.labeling.dynamic import insert_edge as _dynamic_insert
from repro.labeling.pll import build_pll
from repro.labeling.label import Labeling

Edge = Tuple[int, int]
Distance = Union[int, float]


class LazySIEFIndex:
    """A SIEF index that materializes failure cases on first use.

    Parameters
    ----------
    graph:
        The (mutable, owned) graph; use :meth:`insert_edge` /
        :meth:`commit_failure` to change it, not direct mutation —
        the index must see every change.
    labeling:
        Optional prebuilt labeling; built with PLL otherwise.
    algorithm:
        Relabel strategy for on-demand builds (default ``bfs_all``).
    """

    def __init__(
        self,
        graph: Graph,
        labeling: Optional[Labeling] = None,
        algorithm: str = "bfs_all",
    ) -> None:
        if algorithm not in RELABEL_ALGORITHMS:
            raise IndexError_(
                f"unknown relabel algorithm {algorithm!r}; "
                f"choose from {sorted(RELABEL_ALGORITHMS)}"
            )
        self.graph = graph
        self.algorithm = algorithm
        self._relabel = RELABEL_ALGORITHMS[algorithm]
        self._csr_cache: Optional[CSRGraph] = None
        self._index = SIEFIndex(
            labeling if labeling is not None else build_pll(graph)
        )
        self._engine = SIEFQueryEngine(self._index)
        self.build_seconds = 0.0
        self.cases_built = 0
        self.cache_hits = 0

    @property
    def labeling(self) -> Labeling:
        """The current (exact) 2-hop labeling."""
        return self._index.labeling

    # -- queries -------------------------------------------------------------

    def distance(self, s: int, t: int, failed_edge: Edge) -> Distance:
        """``d_{G - e}(s, t)``, building the case for ``e`` if needed."""
        self._ensure_case(*failed_edge)
        return self._engine.distance(s, t, failed_edge)

    def _csr(self) -> CSRGraph:
        """CSR snapshot of the current graph; rebuilt after each mutation."""
        if self._csr_cache is None:
            self._csr_cache = CSRGraph.from_graph(self.graph)
        return self._csr_cache

    def _ensure_case(self, u: int, v: int) -> None:
        reg = _obs.registry
        if self._index.has_case(u, v):
            self.cache_hits += 1
            if reg is not None:
                reg.counter("sief.lazy.cache_hits").inc()
                reg.counter("sief.lazy.cache.hits").inc()
            return
        if not self.graph.has_edge(u, v):
            raise EdgeNotFound(u, v)
        if reg is not None:
            reg.counter("sief.lazy.cache_misses").inc()
            reg.counter("sief.lazy.cache.misses").inc()
        attribute_page_fault()
        with _obs.span("sief.lazy.build_case"):
            csr = self._csr() if self.algorithm == "batched" else None
            si, record = build_one_case(
                self.graph, self._index.labeling, self._relabel, u, v, csr=csr
            )
            self.build_seconds += record.identify_seconds + record.relabel_seconds
            self._index.add_supplement((u, v), si)
            self.cases_built += 1
        if reg is not None:
            record_case_obs(reg, record)
            reg.gauge("sief.lazy.cached_cases").set(self._index.num_cases)
            reg.gauge("sief.lazy.cache.resident").set(self._index.num_cases)
        prog = _obs.progress
        if prog is not None:
            prog.advance()

    # -- mutation --------------------------------------------------------------

    def insert_edge(self, a: int, b: int) -> None:
        """Grow the graph; repair the labeling; invalidate cached cases.

        Invalidation is wholesale: a new edge can shrink replacement
        distances (stale supplements would *overestimate*) and reshape
        affected sets (stale membership would route queries through the
        wrong §4.4 case), so per-case salvage is unsafe.
        """
        _dynamic_insert(self.graph, self._index.labeling, a, b)
        reg = _obs.registry
        if reg is not None:
            reg.counter("sief.lazy.insertions").inc()
        self._invalidate()

    def commit_failure(self, u: int, v: int) -> None:
        """Make a failure permanent: remove the edge and re-baseline.

        The old labeling cannot be repaired for deletions (the gap SIEF
        exists to cover at query time); committing rebuilds PLL on the
        shrunk graph with the same ordering strategy.
        """
        self.graph.remove_edge(u, v)
        self._csr_cache = None
        reg = _obs.registry
        if reg is not None:
            reg.counter("sief.lazy.rebuilds").inc()
            dropped = self._index.num_cases
            if dropped:
                reg.counter("sief.lazy.invalidated_cases").inc(dropped)
        started = time.perf_counter()
        with _obs.span("sief.lazy.rebuild"):
            self._index = SIEFIndex(build_pll(self.graph))
            self._engine = SIEFQueryEngine(self._index)
        self.build_seconds += time.perf_counter() - started
        self.cases_built = 0
        if reg is not None:
            reg.gauge("sief.lazy.cached_cases").set(0)
            reg.gauge("sief.lazy.cache.resident").set(0)

    def _invalidate(self) -> None:
        self._csr_cache = None
        reg = _obs.registry
        if reg is not None:
            reg.counter("sief.lazy.invalidations").inc()
            dropped = len(self._index.supplements)
            if dropped:
                reg.counter("sief.lazy.invalidated_cases").inc(dropped)
            reg.gauge("sief.lazy.cached_cases").set(0)
            reg.gauge("sief.lazy.cache.resident").set(0)
        self._index.supplements.clear()
        self.cases_built = 0

    # -- introspection -----------------------------------------------------------

    @property
    def cached_cases(self) -> Dict[Edge, object]:
        """The currently materialized failure cases (read-only view)."""
        return dict(self._index.supplements)

    def __repr__(self) -> str:
        return (
            f"LazySIEFIndex(n={self.graph.num_vertices}, "
            f"m={self.graph.num_edges}, cached={self.cases_built})"
        )


class PagedSIEFIndex:
    """Demand-paged SIEF index over a :class:`~repro.core.segstore.SegmentStore`.

    The lazy seam generalized from "build on first touch" to **load on
    first touch**: a capacity-bounded LRU of hot failure cases backed by
    mmap'd segment reads.  Duck-types the :class:`SIEFIndex` surface the
    query engine and the serve daemon use (``labeling``,
    ``supplement``, ``has_case``, ``num_cases``, ``supplements``), so
    :class:`~repro.core.query.SIEFQueryEngine` and ``batch_query`` run
    against a store that never fully resides in memory.

    Metrics (when a registry is installed): counters
    ``sief.lazy.cache.{hits,misses,evictions}`` and gauge
    ``sief.lazy.cache.resident``.
    """

    DEFAULT_CAPACITY = 256

    def __init__(self, store, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise IndexError_(
                f"paged index capacity must be >= 1, got {capacity}"
            )
        self._store = store
        self.capacity = capacity
        self.labeling = store.labeling()
        self._lru: "OrderedDict[Edge, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- SIEFIndex surface ---------------------------------------------------

    def supplement(self, u: int, v: int):
        """The supplemental index for failed edge ``(u, v)``, paging it
        in (and possibly evicting the coldest case) on a miss."""
        key = normalize_edge(u, v)
        reg = _obs.registry
        si = self._lru.get(key)
        if si is not None:
            self._lru.move_to_end(key)
            self.hits += 1
            if reg is not None:
                reg.counter("sief.lazy.cache.hits").inc()
            return si
        si = self._store.load_case(*key)  # raises FailureCaseNotIndexed
        self.misses += 1
        attribute_page_fault()
        self._lru[key] = si
        evicted = 0
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        if reg is not None:
            reg.counter("sief.lazy.cache.misses").inc()
            if evicted:
                reg.counter("sief.lazy.cache.evictions").inc(evicted)
            reg.gauge("sief.lazy.cache.resident").set(len(self._lru))
        return si

    def has_case(self, u: int, v: int) -> bool:
        return self._store.has_case(u, v)

    @property
    def num_cases(self) -> int:
        return self._store.num_cases

    @property
    def supplements(self):
        """All indexed failure edges (from the TOC — nothing paged in).

        The serve daemon's ``/failures`` route iterates/sorts this; a
        list of edge tuples satisfies that read-only use without
        pretending the mapping's values are resident.
        """
        return self._store.case_edges()

    def total_supplemental_entries(self) -> int:
        return self._store.total_entries

    def freeze(self) -> "PagedSIEFIndex":
        """No-op (the store's labeling is already frozen flat)."""
        return self

    # -- introspection -------------------------------------------------------

    @property
    def resident_cases(self) -> int:
        """Currently cached failure cases (≤ ``capacity``)."""
        return len(self._lru)

    def __repr__(self) -> str:
        return (
            f"PagedSIEFIndex(cases={self.num_cases}, "
            f"resident={self.resident_cases}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
