"""SIEF: supplemental 2-hop indexes for failure-prone distance queries.

A from-scratch reproduction of *"SIEF: Efficiently Answering Distance
Queries for Failure Prone Graphs"* (Qin, Sheng, Zhang - EDBT 2015),
including the Pruned Landmark Labeling substrate, the SIEF supplemental
index for every single-edge failure case, the paper's baselines, and its
future-work extensions (weighted graphs, dual/node failures).

Quickstart::

    from repro import Graph, build_pll, SIEFBuilder, SIEFQueryEngine

    g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    index, report = SIEFBuilder(g).build()
    engine = SIEFQueryEngine(index)
    engine.distance(0, 2, failed_edge=(1, 2))   # -> 2 (around the ring)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduction of every table and figure in the paper's evaluation.
"""

from repro.exceptions import (
    DatasetError,
    EdgeNotFound,
    FailureCaseNotIndexed,
    GraphError,
    LabelingError,
    ReproError,
    SerializationError,
    VertexNotFound,
)
from repro.graph import (
    CSRGraph,
    DiGraph,
    Graph,
    GraphBuilder,
    WeightedGraph,
    bfs_distances,
    generators,
)
from repro.order import VertexOrdering, make_ordering
from repro.labeling import (
    INF,
    Labeling,
    build_directed_pll,
    build_pll,
    build_weighted_pll,
    dist_query,
)
from repro.core import (
    SIEFBuilder,
    SIEFIndex,
    SIEFQueryEngine,
    identify_affected,
)
from repro.core.builder import build_sief
from repro.baselines import BFSQueryBaseline, NaiveRebuildBaseline
from repro.failures import (
    DualFailureOracle,
    NodeFailureOracle,
    build_weighted_sief,
)
from repro.analysis import (
    edge_worth,
    most_vital_arc,
    resilience_profile,
    vickrey_prices,
)
from repro.obs import MetricsRegistry, TraceRecorder
from repro.obs import installed as metrics_installed

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GraphError",
    "VertexNotFound",
    "EdgeNotFound",
    "LabelingError",
    "FailureCaseNotIndexed",
    "SerializationError",
    "DatasetError",
    # graphs
    "Graph",
    "WeightedGraph",
    "DiGraph",
    "CSRGraph",
    "GraphBuilder",
    "bfs_distances",
    "generators",
    # ordering / labeling
    "VertexOrdering",
    "make_ordering",
    "Labeling",
    "build_pll",
    "build_weighted_pll",
    "build_directed_pll",
    "dist_query",
    "INF",
    # SIEF
    "SIEFBuilder",
    "build_sief",
    "SIEFIndex",
    "SIEFQueryEngine",
    "identify_affected",
    # baselines & extensions
    "BFSQueryBaseline",
    "NaiveRebuildBaseline",
    "DualFailureOracle",
    "NodeFailureOracle",
    "build_weighted_sief",
    # applications
    "most_vital_arc",
    "edge_worth",
    "vickrey_prices",
    "resilience_profile",
    # observability
    "MetricsRegistry",
    "TraceRecorder",
    "metrics_installed",
    "__version__",
]
