"""The ``numba`` kernel backend: ``@njit`` ports of the four hot kernels.

Importing this module never requires numba: the import is guarded, and
:func:`probe` simply reports unavailability when the package is missing
(the dispatcher then tries the ``cext`` tier).  When numba *is*
installed — ``pip install .[accel]`` — the kernels are compiled lazily
on first call with ``cache=True``, so the LLVM work is paid once per
machine and the on-disk cache makes later processes start warm;
:func:`warmup` forces compilation eagerly on a 2-vertex graph for
benchmarks that must not time the first-call compile.

The jitted bodies are ports of ``_csrc/siefkernels.c`` (which is
itself a port of the numpy reference tier), preserving traversal
order, settlement counting, append order and the exact comparison
semantics — the bit-identity contract is shared by all backends and
enforced by the parity suites and fuzz adapters.  The hub join here
stays a single scalar merge where the C version interleaves four
pairs for instruction-level parallelism; both compute the identical
per-pair minimum.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit

    _AVAILABLE = True
    _IMPORT_ERROR = None
except Exception as _exc:  # pragma: no cover
    _AVAILABLE = False
    _IMPORT_ERROR = f"{type(_exc).__name__}: {_exc}"

    def njit(*args, **kwargs):  # type: ignore[misc]
        """No-op decorator so the module body still defines plain funcs."""
        if args and callable(args[0]):
            return args[0]
        return lambda fn: fn


_INF_I64 = np.int64(2**62)
_ONE_U64 = np.uint64(1)
_ZERO_U64 = np.uint64(0)


def probe() -> Dict[str, Any]:
    """Report numba availability and toolchain versions (no compile)."""
    if not _AVAILABLE:
        return {
            "available": False,
            "error": _IMPORT_ERROR or "numba is not installed",
        }
    try:
        import llvmlite

        llvm = llvmlite.__version__
    except Exception:  # pragma: no cover
        llvm = None
    return {
        "available": True,
        "numba_version": numba.__version__,
        "llvmlite_version": llvm,
    }


def reset() -> None:
    """Nothing cached beyond numba's own dispatcher; present for symmetry."""


# ---------------------------------------------------------------------------
# jitted bodies (ports of _csrc/siefkernels.c)
# ---------------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _bfs_jit(indptr, indices, source, avoid0, avoid1, has_allowed, allowed,
             dist):  # pragma: no cover - requires numba
    n = indptr.shape[0] - 1
    queue = np.empty(n, dtype=np.int64)
    qhead = 0
    qtail = 0
    queue[qtail] = source
    qtail += 1
    while qhead < qtail:
        vtx = queue[qhead]
        qhead += 1
        dnext = dist[vtx] + np.int32(1)
        for pos in range(indptr[vtx], indptr[vtx + 1]):
            if pos == avoid0 or pos == avoid1:
                continue
            w = indices[pos]
            if dist[w] != -1:
                continue
            if has_allowed and allowed[w] == 0:
                continue
            dist[w] = dnext
            queue[qtail] = w
            qtail += 1


@njit(cache=True, nogil=True)
def _bsearch_i64(arr, key):  # pragma: no cover - requires numba
    lo = 0
    hi = arr.shape[0]
    while lo < hi:
        mid = (lo + hi) // 2
        if arr[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    if lo < arr.shape[0] and arr[lo] == key:
        return lo
    return -1


@njit(cache=True, nogil=True)
def _sweep_jit(indptr, indices, roots, mask_pos, mask_keep, has_needed,
               needed, dist, visited, fb, nb, cur, touched,
               remaining):  # pragma: no cover - requires numba
    n = indptr.shape[0] - 1
    k = roots.shape[0]
    npos = mask_pos.shape[0]
    visited[:] = _ZERO_U64
    cur_len = 0
    settled = k
    for i in range(k):
        r = roots[i]
        bit = _ONE_U64 << np.uint64(i)
        if fb[r] == _ZERO_U64:
            cur[cur_len] = r
            cur_len += 1
        fb[r] |= bit
        visited[r] |= bit
        dist[i, r] = 0
    rem_nonzero = 0
    if has_needed:
        for w in range(n):
            rm = needed[w] & ~visited[w]
            remaining[w] = rm
            if rm != _ZERO_U64:
                rem_nonzero += 1
        if rem_nonzero == 0:
            for c in range(cur_len):
                fb[cur[c]] = _ZERO_U64
            return settled
    level = np.int32(0)
    while cur_len > 0:
        level += np.int32(1)
        tn = 0
        for c in range(cur_len):
            v = cur[c]
            bits = fb[v]
            for pos in range(indptr[v], indptr[v + 1]):
                b = bits
                if npos > 0:
                    mi = _bsearch_i64(mask_pos, pos)
                    if mi >= 0:
                        b = b & mask_keep[mi]
                        if b == _ZERO_U64:
                            continue
                w = indices[pos]
                nw = b & ~visited[w]
                if nw != _ZERO_U64:
                    if nb[w] == _ZERO_U64:
                        touched[tn] = w
                        tn += 1
                    nb[w] |= nw
        for c in range(cur_len):
            fb[cur[c]] = _ZERO_U64
        cur_len = 0
        if tn == 0:
            break
        for j in range(tn):
            w = touched[j]
            nw = nb[w]
            nb[w] = _ZERO_U64
            visited[w] |= nw
            fb[w] = nw
            cur[cur_len] = w
            cur_len += 1
            for lane in range(k):
                if (nw >> np.uint64(lane)) & _ONE_U64:
                    dist[lane, w] = level
                    settled += 1
            if has_needed and remaining[w] != _ZERO_U64:
                remaining[w] &= ~nw
                if remaining[w] == _ZERO_U64:
                    rem_nonzero -= 1
        if has_needed and rem_nonzero == 0:
            break
    for c in range(cur_len):
        fb[cur[c]] = _ZERO_U64
    return settled


@njit(cache=True, nogil=True)
def _bitparallel_jit(indptr, indices, roots, mask_pos, mask_keep, has_needed,
                     needed, dist):  # pragma: no cover - requires numba
    n = indptr.shape[0] - 1
    visited = np.zeros(n, dtype=np.uint64)
    fb = np.zeros(n, dtype=np.uint64)
    nb = np.zeros(n, dtype=np.uint64)
    cur = np.empty(n, dtype=np.int64)
    touched = np.empty(n, dtype=np.int64)
    remaining = np.zeros(n if has_needed else 0, dtype=np.uint64)
    return _sweep_jit(indptr, indices, roots, mask_pos, mask_keep, has_needed,
                      needed, dist, visited, fb, nb, cur, touched, remaining)


@njit(cache=True, nogil=True)
def _merge_min_sum_i32_jit(L_offsets, L_hubs, L_dists, a,
                           b):  # pragma: no cover - requires numba
    i = L_offsets[a]
    iend = L_offsets[a + 1]
    j = L_offsets[b]
    jend = L_offsets[b + 1]
    best = _INF_I64
    while i < iend and j < jend:
        ha = L_hubs[i]
        hb = L_hubs[j]
        if ha == hb:
            tot = np.int64(L_dists[i]) + np.int64(L_dists[j])
            if tot < best:
                best = tot
            i += 1
            j += 1
        elif ha < hb:
            i += 1
        else:
            j += 1
    return best


@njit(cache=True, nogil=True)
def _relabel_jit(indptr, indices, avoid0, avoid1, roots, root_ranks, nlive,
                 targets, target_ranks, L_offsets, L_hubs, L_dists, vertex_at,
                 cap, out_t, out_rank, out_dist,
                 stats):  # pragma: no cover - requires numba
    n = indptr.shape[0] - 1
    nroots = roots.shape[0]
    ntargets = targets.shape[0]
    stats[0] = 0
    stats[1] = 0
    if nlive == 0 or nroots == 0 or ntargets == 0:
        return 0

    visited = np.zeros(n, dtype=np.uint64)
    fb = np.zeros(n, dtype=np.uint64)
    nb = np.zeros(n, dtype=np.uint64)
    cur = np.empty(n, dtype=np.int64)
    touched = np.empty(n, dtype=np.int64)
    remaining = np.zeros(n, dtype=np.uint64)
    needed = np.zeros(n, dtype=np.uint64)
    dist = np.empty((64, n), dtype=np.int32)
    head = np.full(ntargets, -1, dtype=np.int64)
    tail = np.full(ntargets, -1, dtype=np.int64)
    chain = np.empty(max(cap, 1), dtype=np.int64)
    vcache = np.zeros(nroots, dtype=np.int64)
    vstamp = np.full(nroots, -1, dtype=np.int64)

    mask_pos = np.empty(2, dtype=np.int64)
    mask_keep = np.zeros(2, dtype=np.uint64)
    if avoid0 <= avoid1:
        mask_pos[0] = avoid0
        mask_pos[1] = avoid1
    else:
        mask_pos[0] = avoid1
        mask_pos[1] = avoid0

    appended = 0
    settled = 0
    stamp = 0

    # Batches start inside the live prefix only, but (like the numpy
    # loop's unclamped roots[b0 : b0 + 64] slice) a straddling batch
    # keeps its dead lanes — their settlements count toward stats[1].
    for b0 in range(0, nlive, 64):
        k = min(64, nroots - b0)
        needed[:] = _ZERO_U64
        for j in range(ntargets):
            trank = target_ranks[j]
            # prefix of batch lanes ranked below this target
            lo = 0
            hi = k
            while lo < hi:
                mid = (lo + hi) // 2
                if root_ranks[b0 + mid] < trank:
                    lo = mid + 1
                else:
                    hi = mid
            if lo >= 64:
                needed[targets[j]] = ~_ZERO_U64
            else:
                needed[targets[j]] = (_ONE_U64 << np.uint64(lo)) - _ONE_U64
        batch = roots[b0 : b0 + k]
        dmat = dist[:k]
        dmat[:, :] = np.int32(-1)
        settled += _sweep_jit(indptr, indices, batch, mask_pos, mask_keep, 1,
                              needed, dmat, visited, fb, nb, cur, touched,
                              remaining)

        for i in range(k):
            r = roots[b0 + i]
            r_rank = root_ranks[b0 + i]
            # targets ranked above this root: suffix via upper bound
            lo = 0
            hi = ntargets
            while lo < hi:
                mid = (lo + hi) // 2
                if target_ranks[mid] <= r_rank:
                    lo = mid + 1
                else:
                    hi = mid
            if lo >= ntargets:
                continue
            stamp += 1
            for j in range(lo, ntargets):
                t = targets[j]
                d = dist[i, t]
                if d < 0:
                    continue
                redundant = False
                e = head[j]
                while e != -1:
                    h_rank = out_rank[e]
                    ridx = _bsearch_i64(root_ranks, h_rank)
                    if ridx >= 0 and vstamp[ridx] == stamp:
                        via = vcache[ridx]
                    else:
                        hv = vertex_at[h_rank]
                        if hv == r:
                            via = np.int64(0)
                        else:
                            via = _merge_min_sum_i32_jit(
                                L_offsets, L_hubs, L_dists, r, hv
                            )
                        if ridx >= 0:
                            vcache[ridx] = via
                            vstamp[ridx] = stamp
                    if via + np.int64(out_dist[e]) <= np.int64(d):
                        redundant = True
                        break
                    e = chain[e]
                if not redundant:
                    if appended >= cap:
                        return -1
                    out_t[appended] = t
                    out_rank[appended] = r_rank
                    out_dist[appended] = d
                    chain[appended] = -1
                    if head[j] == -1:
                        head[j] = appended
                    else:
                        chain[tail[j]] = appended
                    tail[j] = appended
                    appended += 1
    stats[0] = appended
    stats[1] = settled
    return 0


@njit(cache=True, nogil=True)
def _hub_join_int_jit(L_offsets, L_hubs, L_dists, src, dst,
                      out):  # pragma: no cover - requires numba
    for q in range(src.shape[0]):
        i = L_offsets[src[q]]
        iend = L_offsets[src[q] + 1]
        j = L_offsets[dst[q]]
        jend = L_offsets[dst[q] + 1]
        # Branchless merge, as in the C kernel: hub order between the
        # two slices is random, so data-dependent branches mispredict;
        # conditional increments and an INT64_MAX "not found" sentinel
        # (unreachable by any label sum) keep the loop predictable.
        best = np.int64(np.iinfo(np.int64).max)
        while i < iend and j < jend:
            ha = L_hubs[i]
            hb = L_hubs[j]
            tot = np.int64(L_dists[i]) + np.int64(L_dists[j])
            if ha == hb and tot < best:
                best = tot
            i += np.int64(ha <= hb)
            j += np.int64(hb <= ha)
        if best == np.iinfo(np.int64).max:
            out[q] = np.inf
        else:
            out[q] = np.float64(best)


@njit(cache=True, nogil=True)
def _hub_join_f64_jit(L_offsets, L_hubs, L_dists, src, dst,
                      out):  # pragma: no cover - requires numba
    for q in range(src.shape[0]):
        i = L_offsets[src[q]]
        iend = L_offsets[src[q] + 1]
        j = L_offsets[dst[q]]
        jend = L_offsets[dst[q] + 1]
        # Branchless merge; IEEE inf is the "not found" sentinel (no
        # finite label sum reaches it, and an infinite sum answers inf
        # either way).
        best = np.inf
        while i < iend and j < jend:
            ha = L_hubs[i]
            hb = L_hubs[j]
            tot = L_dists[i] + L_dists[j]
            if ha == hb and tot < best:
                best = tot
            i += np.int64(ha <= hb)
            j += np.int64(hb <= ha)
        out[q] = best


# ---------------------------------------------------------------------------
# wrappers implementing the shared backend contract
# ---------------------------------------------------------------------------

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_U64 = np.zeros(0, dtype=np.uint64)
_EMPTY_U8 = np.zeros(0, dtype=np.uint8)


def bfs(indptr, indices, source, avoid0, avoid1, allowed, dist) -> None:
    if allowed is None:
        has_allowed, allowed_u8 = 0, _EMPTY_U8
    else:
        has_allowed = 1
        allowed_u8 = np.ascontiguousarray(allowed, dtype=np.uint8)
    _bfs_jit(indptr, indices, source, avoid0, avoid1, has_allowed,
             allowed_u8, dist)


def bitparallel(indptr, indices, roots, mask_pos, mask_keep, needed, dist):
    if mask_pos is None:
        mask_pos, mask_keep = _EMPTY_I64, _EMPTY_U64
    if needed is None:
        has_needed, needed_u64 = 0, _EMPTY_U64
    else:
        has_needed, needed_u64 = 1, needed
    return int(
        _bitparallel_jit(indptr, indices, roots, mask_pos, mask_keep,
                         has_needed, needed_u64, dist)
    )


def relabel(
    indptr, indices, avoid0, avoid1,
    roots, root_ranks, live, targets, target_ranks,
    L_offsets, L_hubs, L_dists, vertex_at,
):
    cap = 4 * (len(roots) + len(targets)) + 64
    stats = np.zeros(2, dtype=np.int64)
    while True:
        out_t = np.empty(cap, dtype=np.int64)
        out_rank = np.empty(cap, dtype=np.int64)
        out_dist = np.empty(cap, dtype=np.int64)
        rc = _relabel_jit(
            indptr, indices, avoid0, avoid1, roots, root_ranks, live,
            targets, target_ranks, L_offsets, L_hubs, L_dists, vertex_at,
            cap, out_t, out_rank, out_dist, stats,
        )
        if rc == 0:
            m = int(stats[0])
            return out_t[:m], out_rank[:m], out_dist[:m], int(stats[1])
        cap *= 2


def hub_join(offsets, hubs, dists, src, dst, out) -> None:
    if dists.dtype == np.float64:
        _hub_join_f64_jit(offsets, hubs, dists, src, dst, out)
    elif dists.dtype in (np.dtype(np.int32), np.dtype(np.int64)):
        _hub_join_int_jit(offsets, hubs, dists, src, dst, out)
    else:  # pragma: no cover - dispatcher checks HUB_JOIN_DTYPES first
        raise TypeError(f"unsupported label dtype {dists.dtype}")


def warmup() -> None:
    """Force-compile every kernel on a 2-vertex path graph."""
    indptr = np.array([0, 1, 2], dtype=np.int64)
    indices = np.array([1, 0], dtype=np.int32)
    dist = np.full(2, -1, dtype=np.int32)
    dist[0] = 0
    bfs(indptr, indices, 0, -1, -1, None, dist)
    dmat = np.full((1, 2), -1, dtype=np.int32)
    roots = np.zeros(1, dtype=np.int64)
    bitparallel(indptr, indices, roots, None, None, None, dmat)
    offsets = np.array([0, 1, 3], dtype=np.int64)
    hubs = np.array([0, 0, 1], dtype=np.int32)
    dists = np.array([0, 1, 0], dtype=np.int32)
    vertex_at = np.array([0, 1], dtype=np.int64)
    relabel(
        indptr, indices, -1, -1,
        np.array([0], dtype=np.int64), np.array([0], dtype=np.int64), 1,
        np.array([1], dtype=np.int64), np.array([1], dtype=np.int64),
        offsets, hubs, dists, vertex_at,
    )
    out = np.zeros(1, dtype=np.float64)
    hub_join(offsets, hubs, dists, np.zeros(1, dtype=np.int64),
             np.ones(1, dtype=np.int64), out)
    hub_join(offsets, hubs, dists.astype(np.float64),
             np.zeros(1, dtype=np.int64), np.ones(1, dtype=np.int64), out)


KERNELS = {
    "bfs": bfs,
    "bitparallel": bitparallel,
    "relabel": relabel,
    "hub_join": hub_join,
}
