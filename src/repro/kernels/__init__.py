"""Compiled kernel tiers for the SIEF hot loops, behind one dispatcher.

Profiling the 10k-vertex batched build and the batch query path puts
essentially all the time in four tight loops: single-source CSR BFS
(IDENTIFY), the 64-lane bit-parallel sweep, the RELABEL direction pass
(sweep + late redundancy filter — the filter dominates), and the
hub-join of :func:`repro.labeling.query.batch_dist_query`.  This package
provides compiled implementations of those kernels in two optional
backends and routes callers to the fastest one available:

``numba``
    ``@njit`` ports (:mod:`repro.kernels.numba_backend`), used when the
    optional dependency is installed (``pip install .[accel]``).
``cext``
    The same kernels in C (``_csrc/siefkernels.c``), compiled on demand
    with the system C compiler and bound via ctypes
    (:mod:`repro.kernels.cext_backend`) — no build-time dependency, and
    the seam a cython backend could slot into later.
``numpy``
    No kernel at all: :func:`resolve` returns ``None`` and the caller
    runs its existing pure-numpy implementation.  Always available.

**Bit-identity contract.**  Every backend must produce byte-for-byte the
results of the numpy tier — distances, supplemental entries *in append
order*, settlement counters, hub-join minima.  The differential fuzz
adapters (``sief-batch-kernels``, ``sief-kernels-build``) and the parity
suites in ``tests/test_kernel_parity.py`` enforce this, so a tier switch
can never change an answer, only its speed.

**Selection.**  ``auto`` (the default) prefers ``numba`` > ``cext`` >
``numpy``; an explicit tier that is unavailable raises
:class:`~repro.exceptions.KernelTierError` instead of silently degrading.
Precedence: :func:`set_tier` (the CLI's ``--kernels``) beats the
``SIEF_KERNELS`` environment variable beats ``auto``.  ``set_tier`` also
exports ``SIEF_KERNELS`` so forked/spawned build workers inherit the
choice.  Probing is lazy — importing this package never compiles
anything and never imports numba.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import KernelTierError

KERNEL_NAMES = ("bfs", "bitparallel", "relabel", "hub_join", "pll")
"""The dispatched kernels, in the order capability reports list them.

A backend need not implement every kernel (``pll`` currently exists only
in the C backend): missing names resolve to ``("numpy", None)`` — the
caller's reference implementation — while the rest of the set stays on
the accelerated tier."""

TIERS = ("numba", "cext", "numpy")
"""Known tiers, in ``auto``'s preference order (fastest first)."""

CHOICES = ("auto",) + TIERS
"""Valid values for ``SIEF_KERNELS`` / ``sief --kernels``."""

HUB_JOIN_DTYPES = frozenset(
    (np.dtype(np.int32), np.dtype(np.int64), np.dtype(np.float64))
)
"""Frozen-label distance dtypes the compiled hub-join handles."""

RELABEL_DTYPES = frozenset((np.dtype(np.int32),))
"""Frozen-label distance dtypes the compiled relabel pass handles
(unweighted builds; other dtypes fall back to the numpy path)."""

_requested: Optional[str] = None
_resolution: Dict[str, Dict[str, Tuple[str, Optional[Callable]]]] = {}


def _backend(tier: str):
    if tier == "numba":
        from repro.kernels import numba_backend

        return numba_backend
    if tier == "cext":
        from repro.kernels import cext_backend

        return cext_backend
    raise KernelTierError(f"no backend module for tier {tier!r}")


def requested_tier() -> str:
    """The selected tier: ``set_tier`` > ``$SIEF_KERNELS`` > ``auto``."""
    if _requested is not None:
        return _requested
    env = os.environ.get("SIEF_KERNELS", "").strip().lower()
    if env:
        if env not in CHOICES:
            raise KernelTierError(
                f"SIEF_KERNELS={env!r} is not one of {'/'.join(CHOICES)}"
            )
        return env
    return "auto"


def set_tier(tier: Optional[str]) -> None:
    """Select a tier programmatically (``None`` reverts to env/auto).

    Exports ``SIEF_KERNELS`` too, so parallel build workers — forked or
    spawned — resolve the same tier as the parent process.
    """
    global _requested
    if tier is not None:
        tier = tier.strip().lower()
        if tier not in CHOICES:
            raise KernelTierError(
                f"kernel tier {tier!r} is not one of {'/'.join(CHOICES)}"
            )
        os.environ["SIEF_KERNELS"] = tier
    _requested = tier
    _resolution.clear()


@contextmanager
def use_tier(tier: Optional[str]) -> Iterator[None]:
    """Scoped :func:`set_tier` — the parity adapters' A/B switch."""
    global _requested
    prev_req = _requested
    prev_env = os.environ.get("SIEF_KERNELS")
    try:
        set_tier(tier)
        yield
    finally:
        _requested = prev_req
        if prev_env is None:
            os.environ.pop("SIEF_KERNELS", None)
        else:
            os.environ["SIEF_KERNELS"] = prev_env
        _resolution.clear()


def _resolve_all(req: str) -> Dict[str, Tuple[str, Optional[Callable]]]:
    if req == "numpy":
        return {name: ("numpy", None) for name in KERNEL_NAMES}
    if req in ("numba", "cext"):
        backend = _backend(req)
        info = backend.probe()
        if not info.get("available"):
            raise KernelTierError(
                f"kernel tier {req!r} was requested but is unavailable: "
                f"{info.get('error', 'unknown reason')}"
            )
        return _backend_table(req, backend)
    # auto: first available accelerated backend, else pure numpy
    for tier in TIERS[:-1]:
        backend = _backend(tier)
        if backend.probe().get("available"):
            return _backend_table(tier, backend)
    return {name: ("numpy", None) for name in KERNEL_NAMES}


def _backend_table(
    tier: str, backend
) -> Dict[str, Tuple[str, Optional[Callable]]]:
    """Per-kernel routing for one backend, numpy-filling missing names."""
    table: Dict[str, Tuple[str, Optional[Callable]]] = {}
    for name in KERNEL_NAMES:
        fn = backend.KERNELS.get(name)
        table[name] = (tier, fn) if fn is not None else ("numpy", None)
    return table


def resolve(name: str) -> Tuple[str, Optional[Callable]]:
    """``(tier, kernel)`` for one kernel under the current selection.

    ``kernel`` is ``None`` exactly when the caller should run its own
    numpy implementation.  Resolution is cached per requested tier, so
    the hot paths pay one dict lookup per call.
    """
    req = requested_tier()
    cache = _resolution.get(req)
    if cache is None:
        cache = _resolve_all(req)
        _resolution[req] = cache
    return cache[name]


def effective_tier() -> str:
    """The tier kernels actually resolve to right now (never ``auto``)."""
    return resolve("bfs")[0]


def reset() -> None:
    """Drop every cache and probe result (test isolation)."""
    global _requested
    _requested = None
    _resolution.clear()
    for tier in ("numba", "cext"):
        try:
            _backend(tier).reset()
        except KernelTierError:  # pragma: no cover
            pass


def capability_report() -> Dict[str, Any]:
    """Everything ``sief kernels`` prints and ``env_metadata`` samples.

    Keys: ``requested`` (selection in force), ``effective`` (tier the
    kernels resolve to), ``backends`` (per-backend probe details —
    versions, compiler, errors), ``kernels`` (kernel name → tier).
    """
    from repro.kernels import cext_backend, numba_backend

    try:
        requested = requested_tier()
    except KernelTierError as exc:
        return {
            "requested": os.environ.get("SIEF_KERNELS"),
            "effective": None,
            "error": str(exc),
            "backends": {},
            "kernels": {},
        }
    report: Dict[str, Any] = {
        "requested": requested,
        "backends": {
            "numba": numba_backend.probe(),
            "cext": cext_backend.probe(),
            "numpy": {"available": True, "numpy_version": np.__version__},
        },
    }
    try:
        report["kernels"] = {
            name: resolve(name)[0] for name in KERNEL_NAMES
        }
        report["effective"] = effective_tier()
    except KernelTierError as exc:
        report["kernels"] = {}
        report["effective"] = None
        report["error"] = str(exc)
    return report
