"""The ``cext`` kernel backend: ctypes bindings over a self-compiled .so.

The C source lives in ``_csrc/siefkernels.c`` and is compiled **on
demand** with the system C compiler (``$SIEF_KERNELS_CC``, else ``cc``,
else ``gcc``) into a content-addressed shared object under
``$SIEF_KERNELS_CACHE`` (default ``~/.cache/sief-kernels``).  The cache
key is the SHA-1 of the source plus the compiler command line, so
editing the C file or switching compilers recompiles automatically and
repeat imports pay only a ``dlopen``.

Everything crosses the boundary as raw typed pointers — no ``Python.h``
dependency, so the backend works with any CPython the container ships.
When no compiler is present (or ``SIEF_KERNELS_CC`` is set to ``none``)
:func:`probe` reports unavailability and the dispatcher falls through to
the next tier; nothing in this module raises at import time.

The Python wrappers here implement the *same* callable contract as
:mod:`repro.kernels.numba_backend` — see :mod:`repro.kernels` for the
signatures — so the dispatcher treats backends interchangeably.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

_SRC = os.path.join(os.path.dirname(__file__), "_csrc", "siefkernels.c")

_lock = threading.Lock()
_probe_result: Optional[Dict[str, Any]] = None
_lib = None

_i64 = ctypes.c_int64
_p_i64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_p_i32 = np.ctypeslib.ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
_p_u64 = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")
_p_u8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
_p_f64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_U64 = np.zeros(0, dtype=np.uint64)
_EMPTY_U8 = np.zeros(0, dtype=np.uint8)


def _compiler() -> Optional[str]:
    cc = os.environ.get("SIEF_KERNELS_CC")
    if cc is not None:
        cc = cc.strip()
        if cc == "" or cc.lower() == "none":
            return None  # explicit opt-out (used by the fallback tests)
        return cc
    return shutil.which("cc") or shutil.which("gcc")


def _cache_dir() -> str:
    return os.environ.get("SIEF_KERNELS_CACHE") or os.path.join(
        os.path.expanduser("~"), ".cache", "sief-kernels"
    )


def _build_library(cc: str) -> Tuple[str, bool]:
    """Compile (or reuse) the shared object; returns ``(path, cached)``."""
    with open(_SRC, "rb") as fh:
        source = fh.read()
    argv = [cc, "-O3", "-fPIC", "-shared"]
    key = hashlib.sha1(source + b"\0" + "\0".join(argv).encode()).hexdigest()
    cache = _cache_dir()
    so_path = os.path.join(cache, f"siefkernels-{key[:16]}.so")
    if os.path.exists(so_path):
        return so_path, True
    os.makedirs(cache, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        subprocess.run(
            argv + ["-o", tmp, _SRC],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(tmp, so_path)  # atomic: concurrent builders converge
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return so_path, False


def _bind(lib: ctypes.CDLL) -> None:
    lib.sief_bfs.restype = ctypes.c_int32
    lib.sief_bfs.argtypes = [
        _i64, _p_i64, _p_i32, _i64, _i64, _i64, ctypes.c_int32, _p_u8, _p_i32,
    ]
    lib.sief_bitparallel.restype = _i64
    lib.sief_bitparallel.argtypes = [
        _i64, _p_i64, _p_i32, _i64, _p_i64,
        _i64, _p_i64, _p_u64, ctypes.c_int32, _p_u64, _p_i32,
    ]
    lib.sief_relabel.restype = ctypes.c_int32
    lib.sief_relabel.argtypes = [
        _i64, _p_i64, _p_i32, _i64, _i64,
        _i64, _i64, _p_i64, _p_i64, _i64, _p_i64, _p_i64,
        _p_i64, _p_i32, _p_i32, _p_i64,
        _i64, _p_i64, _p_i64, _p_i64, _p_i64,
    ]
    for suffix, ptr in (("i32", _p_i32), ("i64", _p_i64), ("f64", _p_f64)):
        fn = getattr(lib, f"sief_hub_join_{suffix}")
        fn.restype = ctypes.c_int32
        fn.argtypes = [_p_i64, _p_i32, ptr, _i64, _p_i64, _p_i64, _p_f64]
    lib.sief_pll_build.restype = ctypes.c_void_p
    lib.sief_pll_build.argtypes = [_i64, _p_i64, _p_i32, _p_i64, _p_i64]
    lib.sief_pll_export.restype = ctypes.c_int32
    lib.sief_pll_export.argtypes = [
        ctypes.c_void_p, _p_i64, _p_i32, _p_i32,
    ]
    lib.sief_pll_free.restype = None
    lib.sief_pll_free.argtypes = [ctypes.c_void_p]


def probe() -> Dict[str, Any]:
    """Detect (and if needed compile) the C extension; cached per process.

    Returns a dict with ``available`` plus diagnostic fields surfaced by
    :func:`repro.kernels.capability_report`: the compiler used, the
    shared-object path, whether the compile was a cache hit, and the
    failure reason when unavailable.
    """
    global _probe_result, _lib
    with _lock:
        if _probe_result is not None:
            return _probe_result
        cc = _compiler()
        if cc is None:
            _probe_result = {
                "available": False,
                "compiler": None,
                "error": "no C compiler (set SIEF_KERNELS_CC to override)",
            }
            return _probe_result
        try:
            so_path, cached = _build_library(cc)
            lib = ctypes.CDLL(so_path)
            _bind(lib)
        except Exception as exc:  # compile or dlopen failure → fall through
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError):
                detail = (exc.stderr or "").strip()[:500]
            _probe_result = {
                "available": False,
                "compiler": cc,
                "error": f"{type(exc).__name__}: {exc} {detail}".strip(),
            }
            return _probe_result
        _lib = lib
        _probe_result = {
            "available": True,
            "compiler": cc,
            "library": so_path,
            "compile_cached": cached,
        }
        return _probe_result


def reset() -> None:
    """Forget the probe result (tests re-probe under different env vars)."""
    global _probe_result, _lib
    with _lock:
        _probe_result = None
        _lib = None


# ---------------------------------------------------------------------------
# kernel wrappers (contract documented in repro.kernels)
# ---------------------------------------------------------------------------


def bfs(indptr, indices, source, avoid0, avoid1, allowed, dist) -> None:
    n = len(indptr) - 1
    if allowed is None:
        has_allowed, allowed_u8 = 0, _EMPTY_U8
    else:
        has_allowed = 1
        allowed_u8 = np.ascontiguousarray(allowed, dtype=np.uint8)
    rc = _lib.sief_bfs(
        n, indptr, indices, source, avoid0, avoid1, has_allowed,
        allowed_u8, dist,
    )
    if rc != 0:
        raise MemoryError("sief_bfs scratch allocation failed")


def bitparallel(indptr, indices, roots, mask_pos, mask_keep, needed, dist):
    n = len(indptr) - 1
    if mask_pos is None:
        mask_pos, mask_keep = _EMPTY_I64, _EMPTY_U64
    if needed is None:
        has_needed, needed_u64 = 0, _EMPTY_U64
    else:
        has_needed, needed_u64 = 1, needed
    settled = _lib.sief_bitparallel(
        n, indptr, indices, len(roots), roots,
        len(mask_pos), mask_pos, mask_keep, has_needed, needed_u64,
        dist.reshape(-1),
    )
    if settled < 0:
        raise MemoryError("sief_bitparallel scratch allocation failed")
    return int(settled)


def relabel(
    indptr, indices, avoid0, avoid1,
    roots, root_ranks, live, targets, target_ranks,
    L_offsets, L_hubs, L_dists, vertex_at,
):
    n = len(indptr) - 1
    cap = 4 * (len(roots) + len(targets)) + 64
    stats = np.zeros(2, dtype=np.int64)
    while True:
        out_t = np.empty(cap, dtype=np.int64)
        out_rank = np.empty(cap, dtype=np.int64)
        out_dist = np.empty(cap, dtype=np.int64)
        rc = _lib.sief_relabel(
            n, indptr, indices, avoid0, avoid1,
            len(roots), live, roots, root_ranks,
            len(targets), targets, target_ranks,
            L_offsets, L_hubs, L_dists, vertex_at,
            cap, out_t, out_rank, out_dist, stats,
        )
        if rc == 0:
            m = int(stats[0])
            return out_t[:m], out_rank[:m], out_dist[:m], int(stats[1])
        if rc == -1:
            cap *= 2
            continue
        raise MemoryError("sief_relabel scratch allocation failed")


def hub_join(offsets, hubs, dists, src, dst, out) -> None:
    if dists.dtype == np.int32:
        fn = _lib.sief_hub_join_i32
    elif dists.dtype == np.int64:
        fn = _lib.sief_hub_join_i64
    elif dists.dtype == np.float64:
        fn = _lib.sief_hub_join_f64
    else:  # pragma: no cover - dispatcher checks HUB_JOIN_DTYPES first
        raise TypeError(f"unsupported label dtype {dists.dtype}")
    fn(offsets, hubs, dists, len(src), src, dst, out)


def pll(indptr, indices, vertex_at):
    """Full PLL build; returns the frozen flat ``(offsets, hubs, dists)``."""
    n = len(indptr) - 1
    total = np.zeros(1, dtype=np.int64)
    handle = _lib.sief_pll_build(n, indptr, indices, vertex_at, total)
    if not handle:
        raise MemoryError("sief_pll_build allocation failed")
    try:
        offsets = np.empty(n + 1, dtype=np.int64)
        hubs = np.empty(int(total[0]), dtype=np.int32)
        dists = np.empty(int(total[0]), dtype=np.int32)
        _lib.sief_pll_export(handle, offsets, hubs, dists)
    finally:
        _lib.sief_pll_free(handle)
    return offsets, hubs, dists


KERNELS = {
    "bfs": bfs,
    "bitparallel": bitparallel,
    "relabel": relabel,
    "hub_join": hub_join,
    "pll": pll,
}
