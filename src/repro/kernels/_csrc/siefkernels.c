/* Compiled kernels for the SIEF hot loops (the "cext" tier).
 *
 * Five kernels, exactly mirroring the numpy reference implementations:
 *
 *   sief_bfs        - single-source CSR BFS with optional edge masking
 *                     and an allowed-vertex mask (repro.graph.frontier.
 *                     bfs_distances_csr).
 *   sief_bitparallel- 64-lane bit-parallel BFS sweep (bfs_bitparallel_csr).
 *   sief_relabel    - one full RELABEL direction pass: batched sweeps plus
 *                     the late redundancy filter with the per-root via
 *                     cache (repro.core.batched._relabel_side_batched).
 *   sief_hub_join   - per-pair sorted-key merge join of two label slices
 *                     (repro.labeling.query.batch_dist_query).
 *   sief_pll_build  - full pruned-landmark-labeling construction
 *                     (repro.labeling.pll._build_pll_impl), exported to
 *                     the frozen flat layout via sief_pll_export.
 *
 * Bit-identity contract: every kernel produces exactly the values the
 * numpy tier produces - BFS distances are traversal-order independent,
 * settlements are counted per level the same way, the redundancy filter
 * walks supplemental entries in identical append order, and integer
 * hub-join sums are computed in 64-bit like numpy's widened adds.  The
 * differential fuzz adapters and the parity suites assert this.
 *
 * Compiled on demand by repro.kernels.cext_backend with the system C
 * compiler; no Python.h - everything crosses the boundary as raw typed
 * pointers via ctypes.  Return codes: 0 ok, -1 output capacity exceeded
 * (sief_relabel only; caller grows and retries), -2 allocation failure.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define SIEF_INF_I64 (INT64_MAX / 4)

/* ------------------------------------------------------------------ */
/* small helpers                                                      */
/* ------------------------------------------------------------------ */

static int64_t lower_bound_i64(const int64_t *arr, int64_t len, int64_t key)
{
    int64_t lo = 0, hi = len;
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (arr[mid] < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

static int64_t upper_bound_i64(const int64_t *arr, int64_t len, int64_t key)
{
    int64_t lo = 0, hi = len;
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (arr[mid] <= key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* Exact position of `key` in a sorted array, or -1. */
static int64_t bsearch_i64(const int64_t *arr, int64_t len, int64_t key)
{
    int64_t pos = lower_bound_i64(arr, len, key);
    if (pos < len && arr[pos] == key)
        return pos;
    return -1;
}

/* min over shared hubs of dists_a + dists_b (Equation 1) on the frozen
 * int32 flat labeling; SIEF_INF_I64 when the labels share no hub. */
static int64_t merge_min_sum_i32(const int64_t *offsets, const int32_t *hubs,
                                 const int32_t *dists, int64_t a, int64_t b)
{
    int64_t i = offsets[a], iend = offsets[a + 1];
    int64_t j = offsets[b], jend = offsets[b + 1];
    int64_t best = SIEF_INF_I64;
    while (i < iend && j < jend) {
        int32_t ha = hubs[i], hb = hubs[j];
        if (ha == hb) {
            int64_t tot = (int64_t)dists[i] + (int64_t)dists[j];
            if (tot < best)
                best = tot;
            i++;
            j++;
        } else if (ha < hb) {
            i++;
        } else {
            j++;
        }
    }
    return best;
}

/* ------------------------------------------------------------------ */
/* sief_bfs                                                           */
/* ------------------------------------------------------------------ */

/* dist arrives prefilled with -1 and dist[source] == 0; avoid0/avoid1
 * are flat `indices` positions to skip (-1 = no masking); `allowed`
 * gates *entry* of vertices (the source is expanded regardless, exactly
 * like the numpy kernel's root exemption). */
int sief_bfs(int64_t n, const int64_t *indptr, const int32_t *indices,
             int64_t source, int64_t avoid0, int64_t avoid1,
             int32_t has_allowed, const uint8_t *allowed, int32_t *dist)
{
    int64_t *queue = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    if (queue == NULL)
        return -2;
    int64_t qhead = 0, qtail = 0;
    queue[qtail++] = source;
    while (qhead < qtail) {
        int64_t vtx = queue[qhead++];
        int32_t dnext = dist[vtx] + 1;
        int64_t end = indptr[vtx + 1];
        for (int64_t pos = indptr[vtx]; pos < end; pos++) {
            if (pos == avoid0 || pos == avoid1)
                continue;
            int32_t w = indices[pos];
            if (dist[w] != -1)
                continue;
            if (has_allowed && !allowed[w])
                continue;
            dist[w] = dnext;
            queue[qtail++] = w;
        }
    }
    free(queue);
    return 0;
}

/* ------------------------------------------------------------------ */
/* bit-parallel sweep (shared by sief_bitparallel and sief_relabel)   */
/* ------------------------------------------------------------------ */

typedef struct {
    uint64_t *visited;   /* n */
    uint64_t *fb;        /* n: frontier lane bits                     */
    uint64_t *nb;        /* n: next-level accumulator                 */
    uint64_t *remaining; /* n: outstanding needed bits (may be NULL)  */
    int64_t *cur;        /* n: current frontier vertices              */
    int64_t *touched;    /* n: vertices reached this level            */
} sweep_scratch;

static int sweep_scratch_alloc(sweep_scratch *s, int64_t n, int want_remaining)
{
    memset(s, 0, sizeof(*s));
    s->visited = (uint64_t *)malloc((size_t)n * 8);
    s->fb = (uint64_t *)malloc((size_t)n * 8);
    s->nb = (uint64_t *)calloc((size_t)n, 8);
    s->cur = (int64_t *)malloc((size_t)n * 8);
    s->touched = (int64_t *)malloc((size_t)n * 8);
    s->remaining = want_remaining ? (uint64_t *)malloc((size_t)n * 8) : NULL;
    if (!s->visited || !s->fb || !s->nb || !s->cur || !s->touched ||
        (want_remaining && !s->remaining))
        return -2;
    return 0;
}

static void sweep_scratch_free(sweep_scratch *s)
{
    free(s->visited);
    free(s->fb);
    free(s->nb);
    free(s->cur);
    free(s->touched);
    free(s->remaining);
}

/* One level-synchronous bit-parallel sweep over k <= 64 roots.
 *
 * dist is a k*n row-major int32 matrix prefilled with -1.  mask_pos /
 * mask_keep (sorted flat positions and the lane bits that *survive*
 * there) implement per-lane edge avoidance.  needed (may be NULL) is
 * the uint64 per-vertex bitmask of lanes that still owe that vertex a
 * distance; the sweep stops once every needed bit is settled.  Returns
 * the settlement count (roots included), matching the numpy kernel's
 * `settled`, or -2 on allocation failure (when scratch is NULL).
 */
static int64_t bitparallel_sweep(int64_t n, const int64_t *indptr,
                                 const int32_t *indices, int64_t k,
                                 const int64_t *roots, int64_t npos,
                                 const int64_t *mask_pos,
                                 const uint64_t *mask_keep,
                                 const uint64_t *needed, int32_t *dist,
                                 sweep_scratch *s)
{
    memset(s->visited, 0, (size_t)n * 8);
    /* nb is maintained all-zero between levels; fb only holds live
     * frontier bits (stale entries are unreachable - visited gates
     * re-entry), so neither needs a full clear here. */
    int64_t cur_len = 0;
    int64_t settled = k;
    for (int64_t i = 0; i < k; i++) {
        int64_t r = roots[i];
        uint64_t bit = (uint64_t)1 << i;
        if (s->fb[r] == 0)
            s->cur[cur_len++] = r;
        else if ((s->fb[r] & bit) == 0) {
            /* another lane already queued this vertex; merge bits */
        }
        s->fb[r] |= bit;
        s->visited[r] |= bit;
        dist[i * n + r] = 0;
    }
    int64_t rem_nonzero = 0;
    if (needed != NULL) {
        for (int64_t w = 0; w < n; w++) {
            uint64_t rm = needed[w] & ~s->visited[w];
            s->remaining[w] = rm;
            if (rm)
                rem_nonzero++;
        }
        if (rem_nonzero == 0) {
            for (int64_t c = 0; c < cur_len; c++)
                s->fb[s->cur[c]] = 0;
            return settled;
        }
    }
    int32_t level = 0;
    while (cur_len > 0) {
        level++;
        int64_t tn = 0;
        for (int64_t c = 0; c < cur_len; c++) {
            int64_t v = s->cur[c];
            uint64_t bits = s->fb[v];
            int64_t end = indptr[v + 1];
            for (int64_t pos = indptr[v]; pos < end; pos++) {
                uint64_t b = bits;
                if (npos > 0) {
                    int64_t mi = bsearch_i64(mask_pos, npos, pos);
                    if (mi >= 0) {
                        b &= mask_keep[mi];
                        if (b == 0)
                            continue;
                    }
                }
                int32_t w = indices[pos];
                uint64_t nw = b & ~s->visited[w];
                if (nw) {
                    if (s->nb[w] == 0)
                        s->touched[tn++] = w;
                    s->nb[w] |= nw;
                }
            }
        }
        for (int64_t c = 0; c < cur_len; c++)
            s->fb[s->cur[c]] = 0;
        cur_len = 0;
        if (tn == 0)
            break;
        for (int64_t j = 0; j < tn; j++) {
            int64_t w = s->touched[j];
            uint64_t nw = s->nb[w];
            s->nb[w] = 0;
            s->visited[w] |= nw;
            s->fb[w] = nw;
            s->cur[cur_len++] = w;
            uint64_t x = nw;
            while (x) {
                int lane = __builtin_ctzll(x);
                dist[(int64_t)lane * n + w] = level;
                x &= x - 1;
                settled++;
            }
            if (needed != NULL && s->remaining[w]) {
                s->remaining[w] &= ~nw;
                if (s->remaining[w] == 0)
                    rem_nonzero--;
            }
        }
        if (needed != NULL && rem_nonzero == 0)
            break;
    }
    for (int64_t c = 0; c < cur_len; c++)
        s->fb[s->cur[c]] = 0;
    return settled;
}

int64_t sief_bitparallel(int64_t n, const int64_t *indptr,
                         const int32_t *indices, int64_t k,
                         const int64_t *roots, int64_t npos,
                         const int64_t *mask_pos, const uint64_t *mask_keep,
                         int32_t has_needed, const uint64_t *needed,
                         int32_t *dist)
{
    sweep_scratch s;
    if (sweep_scratch_alloc(&s, n, has_needed) != 0) {
        sweep_scratch_free(&s);
        return -2;
    }
    memset(s.fb, 0, (size_t)n * 8);
    int64_t settled = bitparallel_sweep(n, indptr, indices, k, roots, npos,
                                        mask_pos, mask_keep,
                                        has_needed ? needed : NULL, dist, &s);
    sweep_scratch_free(&s);
    return settled;
}

/* ------------------------------------------------------------------ */
/* sief_relabel                                                       */
/* ------------------------------------------------------------------ */

/* One RELABEL direction pass (roots side A ascending rank, targets
 * side B ascending rank), 64 roots per bit-parallel sweep, followed by
 * the identical late redundancy filter in identical order.
 *
 * Appended entries stream into out_t / out_rank / out_dist (capacity
 * `cap`); per-target chains over that stream reproduce SL(t) in append
 * order for the filter's walk.  The via cache memoizes
 * dist(root, vertex(hub_rank)) per root, keyed by the hub's position in
 * the roots array (every stored hub *is* an earlier root of this pass).
 *
 * `roots` is the FULL side (ascending rank); `nlive` is the live
 * prefix (roots ranked below some target).  Batches start only inside
 * the live prefix but, exactly like the numpy loop's unclamped
 * `roots[b0 : b0 + 64]` slice, a batch straddling the boundary carries
 * the dead roots beyond it as extra lanes — they append nothing, yet
 * their settlements count, and search_expanded must match bit-for-bit.
 *
 * stats[0] = appended entries, stats[1] = total settlements (the
 * `search_expanded` contribution).  Returns 0, -1 if cap was too small
 * (caller re-runs with a larger buffer), -2 on allocation failure.
 */
int sief_relabel(int64_t n, const int64_t *indptr, const int32_t *indices,
                 int64_t avoid0, int64_t avoid1, int64_t nroots,
                 int64_t nlive, const int64_t *roots,
                 const int64_t *root_ranks, int64_t ntargets,
                 const int64_t *targets, const int64_t *target_ranks,
                 const int64_t *L_offsets, const int32_t *L_hubs,
                 const int32_t *L_dists, const int64_t *vertex_at,
                 int64_t cap, int64_t *out_t, int64_t *out_rank,
                 int64_t *out_dist, int64_t *stats)
{
    stats[0] = 0;
    stats[1] = 0;
    if (nlive == 0 || nroots == 0 || ntargets == 0)
        return 0;

    sweep_scratch s;
    int rc = sweep_scratch_alloc(&s, n, 1);
    int32_t *dist = (int32_t *)malloc((size_t)64 * (size_t)n * 4);
    uint64_t *needed = (uint64_t *)malloc((size_t)n * 8);
    int64_t *head = (int64_t *)malloc((size_t)ntargets * 8);
    int64_t *tail = (int64_t *)malloc((size_t)ntargets * 8);
    int64_t *chain = (int64_t *)malloc((size_t)(cap > 0 ? cap : 1) * 8);
    int64_t *vcache = (int64_t *)malloc((size_t)nroots * 8);
    int64_t *vstamp = (int64_t *)malloc((size_t)nroots * 8);
    if (rc != 0 || !dist || !needed || !head || !tail || !chain || !vcache ||
        !vstamp) {
        rc = -2;
        goto done;
    }
    memset(s.fb, 0, (size_t)n * 8);
    for (int64_t j = 0; j < ntargets; j++)
        head[j] = tail[j] = -1;
    for (int64_t i = 0; i < nroots; i++)
        vstamp[i] = -1;

    /* Both flat positions of the failed edge block every lane. */
    int64_t mask_pos[2];
    uint64_t mask_keep[2] = {0, 0};
    if (avoid0 <= avoid1) {
        mask_pos[0] = avoid0;
        mask_pos[1] = avoid1;
    } else {
        mask_pos[0] = avoid1;
        mask_pos[1] = avoid0;
    }

    int64_t appended = 0;
    int64_t settled = 0;
    int64_t stamp = 0;

    for (int64_t b0 = 0; b0 < nlive; b0 += 64) {
        int64_t k = nroots - b0; /* unclamped: dead lanes ride along */
        if (k > 64)
            k = 64;
        /* needed[t]: the prefix of batch lanes ranked below t. */
        memset(needed, 0, (size_t)n * 8);
        for (int64_t j = 0; j < ntargets; j++) {
            int64_t cnt =
                lower_bound_i64(root_ranks + b0, k, target_ranks[j]);
            uint64_t mask =
                cnt >= 64 ? ~(uint64_t)0 : (((uint64_t)1 << cnt) - 1);
            needed[targets[j]] = mask;
        }
        memset(dist, 0xFF, (size_t)k * (size_t)n * 4); /* int32 -1 fill */
        settled += bitparallel_sweep(n, indptr, indices, k, roots + b0, 2,
                                     mask_pos, mask_keep, needed, dist, &s);

        for (int64_t i = 0; i < k; i++) {
            int64_t r = roots[b0 + i];
            int64_t r_rank = root_ranks[b0 + i];
            int64_t p0 = upper_bound_i64(target_ranks, ntargets, r_rank);
            if (p0 >= ntargets)
                continue;
            stamp++;
            const int32_t *drow = dist + i * n;
            for (int64_t j = p0; j < ntargets; j++) {
                int64_t t = targets[j];
                int32_t d = drow[t];
                if (d < 0)
                    continue; /* failure disconnected r from t */
                int redundant = 0;
                for (int64_t e = head[j]; e != -1; e = chain[e]) {
                    int64_t h_rank = out_rank[e];
                    int64_t ridx = bsearch_i64(root_ranks, nroots, h_rank);
                    int64_t via;
                    if (ridx >= 0 && vstamp[ridx] == stamp) {
                        via = vcache[ridx];
                    } else {
                        int64_t hv = vertex_at[h_rank];
                        via = (hv == r) ? 0
                                        : merge_min_sum_i32(L_offsets, L_hubs,
                                                            L_dists, r, hv);
                        if (ridx >= 0) {
                            vcache[ridx] = via;
                            vstamp[ridx] = stamp;
                        }
                    }
                    if (via + out_dist[e] <= (int64_t)d) {
                        redundant = 1;
                        break;
                    }
                }
                if (!redundant) {
                    if (appended >= cap) {
                        rc = -1;
                        goto done;
                    }
                    out_t[appended] = t;
                    out_rank[appended] = r_rank;
                    out_dist[appended] = d;
                    chain[appended] = -1;
                    if (head[j] == -1)
                        head[j] = appended;
                    else
                        chain[tail[j]] = appended;
                    tail[j] = appended;
                    appended++;
                }
            }
        }
    }
    stats[0] = appended;
    stats[1] = settled;
    rc = 0;
done:
    sweep_scratch_free(&s);
    free(dist);
    free(needed);
    free(head);
    free(tail);
    free(chain);
    free(vcache);
    free(vstamp);
    return rc;
}

/* ------------------------------------------------------------------ */
/* sief_hub_join                                                      */
/* ------------------------------------------------------------------ */

/* Two things make this loop fast, neither changing a single answer:
 *
 * - The merge is branchless on the hot comparisons: hub order between
 *   the two slices is essentially random, so `ha < hb` branches
 *   mispredict half the time — conditional-increment pointer advances
 *   and a cmov-able minimum keep the pipeline full.  Initializing
 *   `best` to the accumulator's own infinity (INT64_MAX / IEEE inf)
 *   replaces the found-flag: no label sum can reach it, and the
 *   minimum over the identical candidate set is the identical value.
 *
 * - Four pairs are merged in interleaved lanes.  One merge is a
 *   serial dependency chain (each step's loads wait on the previous
 *   step's pointer update, ~6 cycles round trip), so a lone merge
 *   leaves most of the core idle; four independent chains overlap in
 *   the out-of-order window.  A finished lane parks with its `i >= e`
 *   test false — a perfectly predicted branch — until the slowest
 *   lane drains.  Each lane computes exactly what the scalar loop
 *   computes for its pair.
 */
#define HUB_LANE_INIT(L, acc, acc_inf)                                        \
    int64_t i##L = offsets[src[q + L]], e##L = offsets[src[q + L] + 1];       \
    int64_t j##L = offsets[dst[q + L]], f##L = offsets[dst[q + L] + 1];       \
    acc b##L = acc_inf;

#define HUB_LANE_STEP(L, acc)                                                 \
    if (i##L < e##L && j##L < f##L) {                                         \
        int32_t ha = hubs[i##L], hb = hubs[j##L];                             \
        acc tot = (acc)dists[i##L] + (acc)dists[j##L];                        \
        if (ha == hb && tot < b##L)                                           \
            b##L = tot;                                                       \
        i##L += (ha <= hb);                                                   \
        j##L += (hb <= ha);                                                   \
        more = 1;                                                             \
    }

#define HUB_LANE_OUT(L, acc_inf)                                              \
    out[q + L] = (b##L == acc_inf) ? INFINITY : (double)b##L;

#define DEFINE_HUB_JOIN(suffix, dtype, acc, acc_inf)                          \
    int sief_hub_join_##suffix(                                               \
        const int64_t *offsets, const int32_t *hubs, const dtype *dists,      \
        int64_t npairs, const int64_t *src, const int64_t *dst, double *out)  \
    {                                                                         \
        int64_t q = 0;                                                        \
        for (; q + 4 <= npairs; q += 4) {                                     \
            HUB_LANE_INIT(0, acc, acc_inf)                                    \
            HUB_LANE_INIT(1, acc, acc_inf)                                    \
            HUB_LANE_INIT(2, acc, acc_inf)                                    \
            HUB_LANE_INIT(3, acc, acc_inf)                                    \
            int more = 1;                                                     \
            while (more) {                                                    \
                more = 0;                                                     \
                HUB_LANE_STEP(0, acc)                                         \
                HUB_LANE_STEP(1, acc)                                         \
                HUB_LANE_STEP(2, acc)                                         \
                HUB_LANE_STEP(3, acc)                                         \
            }                                                                 \
            HUB_LANE_OUT(0, acc_inf)                                          \
            HUB_LANE_OUT(1, acc_inf)                                          \
            HUB_LANE_OUT(2, acc_inf)                                          \
            HUB_LANE_OUT(3, acc_inf)                                          \
        }                                                                     \
        for (; q < npairs; q++) {                                             \
            int64_t i = offsets[src[q]], iend = offsets[src[q] + 1];          \
            int64_t j = offsets[dst[q]], jend = offsets[dst[q] + 1];          \
            acc best = acc_inf;                                               \
            while (i < iend && j < jend) {                                    \
                int32_t ha = hubs[i], hb = hubs[j];                           \
                acc tot = (acc)dists[i] + (acc)dists[j];                      \
                if (ha == hb && tot < best)                                   \
                    best = tot;                                               \
                i += (ha <= hb);                                              \
                j += (hb <= ha);                                              \
            }                                                                 \
            out[q] = (best == acc_inf) ? INFINITY : (double)best;             \
        }                                                                     \
        return 0;                                                             \
    }

DEFINE_HUB_JOIN(i32, int32_t, int64_t, INT64_MAX)
DEFINE_HUB_JOIN(i64, int64_t, int64_t, INT64_MAX)
DEFINE_HUB_JOIN(f64, double, double, INFINITY)

/* ------------------------------------------------------------------ */
/* sief_pll_build / sief_pll_export / sief_pll_free                   */
/* ------------------------------------------------------------------ */

/* Full pruned-landmark-labeling construction, mirroring
 * repro.labeling.pll._build_pll_impl line for line: one BFS per root in
 * ascending rank order, the scatter/prune discipline over the root's
 * existing labels, appends in (rank, dist) order, CSR adjacency walked
 * in slice order.  Because every loop visits vertices in the same order
 * as the Python reference, the exported flat arrays are byte-identical
 * to Labeling.freeze() of the pure-Python build.
 *
 * Labels accumulate in per-vertex growable buffers of interleaved
 * (rank, dist) int32 pairs behind an opaque handle; the ctypes caller
 * reads the total, allocates the flat numpy arrays, and calls
 * sief_pll_export to fill them.  sief_pll_build returns NULL on
 * allocation failure (everything already allocated is released).
 */

typedef struct {
    int32_t *data; /* interleaved pairs: data[2i] = rank, data[2i+1] = dist */
    int64_t len;   /* pairs used */
    int64_t cap;   /* pairs allocated */
} pll_row;

typedef struct {
    int64_t n;
    int64_t total; /* total pairs across all rows */
    pll_row *rows;
} pll_handle;

static int pll_row_append(pll_row *row, int32_t rank, int32_t dist)
{
    if (row->len == row->cap) {
        int64_t ncap = row->cap ? row->cap * 2 : 4;
        int32_t *nd = (int32_t *)realloc(row->data, (size_t)ncap * 8);
        if (nd == NULL)
            return -2;
        row->data = nd;
        row->cap = ncap;
    }
    row->data[2 * row->len] = rank;
    row->data[2 * row->len + 1] = dist;
    row->len++;
    return 0;
}

void sief_pll_free(void *handle)
{
    pll_handle *h = (pll_handle *)handle;
    if (h == NULL)
        return;
    if (h->rows != NULL) {
        for (int64_t v = 0; v < h->n; v++)
            free(h->rows[v].data);
        free(h->rows);
    }
    free(h);
}

void *sief_pll_build(int64_t n, const int64_t *indptr, const int32_t *indices,
                     const int64_t *vertex_at, int64_t *total_out)
{
    pll_handle *h = (pll_handle *)calloc(1, sizeof(pll_handle));
    int32_t *root_cover = (int32_t *)malloc((size_t)n * 4);
    int32_t *dist = (int32_t *)malloc((size_t)n * 4);
    int64_t *queue = (int64_t *)malloc((size_t)n * 8);
    int64_t *touched = (int64_t *)malloc((size_t)n * 8);
    if (h != NULL)
        h->rows = (pll_row *)calloc((size_t)(n > 0 ? n : 1), sizeof(pll_row));
    if (h == NULL || h->rows == NULL || root_cover == NULL || dist == NULL ||
        queue == NULL || touched == NULL)
        goto fail;
    h->n = n;
    memset(root_cover, 0xFF, (size_t)n * 4); /* int32 -1 fill */
    memset(dist, 0xFF, (size_t)n * 4);

    for (int64_t rank = 0; rank < n; rank++) {
        int64_t root = vertex_at[rank];
        pll_row *row_root = &h->rows[root];
        int64_t old_len = row_root->len; /* labels before this round */
        for (int64_t i = 0; i < old_len; i++)
            root_cover[row_root->data[2 * i]] = row_root->data[2 * i + 1];

        dist[root] = 0;
        int64_t tn = 0;
        touched[tn++] = root;
        int64_t qhead = 0, qtail = 0;
        queue[qtail++] = root;
        while (qhead < qtail) {
            int64_t v = queue[qhead++];
            int32_t d = dist[v];
            /* Prune test: dist(root, v, L) <= d using existing labels. */
            pll_row *row_v = &h->rows[v];
            int covered = 0;
            for (int64_t i = 0; i < row_v->len; i++) {
                int32_t rc = root_cover[row_v->data[2 * i]];
                if (rc != -1 &&
                    (int64_t)rc + row_v->data[2 * i + 1] <= (int64_t)d) {
                    covered = 1;
                    break;
                }
            }
            if (covered)
                continue;
            if (pll_row_append(row_v, (int32_t)rank, d) != 0)
                goto fail;
            h->total++;
            int32_t nd = d + 1;
            int64_t end = indptr[v + 1];
            for (int64_t pos = indptr[v]; pos < end; pos++) {
                int32_t w = indices[pos];
                if (dist[w] == -1) {
                    dist[w] = nd;
                    touched[tn++] = w;
                    queue[qtail++] = w;
                }
            }
        }

        for (int64_t i = 0; i < old_len; i++)
            root_cover[row_root->data[2 * i]] = -1;
        root_cover[rank] = -1; /* root labeled itself this round */
        for (int64_t j = 0; j < tn; j++)
            dist[touched[j]] = -1;
    }

    free(root_cover);
    free(dist);
    free(queue);
    free(touched);
    *total_out = h->total;
    return h;

fail:
    free(root_cover);
    free(dist);
    free(queue);
    free(touched);
    sief_pll_free(h);
    return NULL;
}

int sief_pll_export(void *handle, int64_t *offsets, int32_t *hubs,
                    int32_t *dists)
{
    pll_handle *h = (pll_handle *)handle;
    int64_t pos = 0;
    offsets[0] = 0;
    for (int64_t v = 0; v < h->n; v++) {
        pll_row *row = &h->rows[v];
        for (int64_t i = 0; i < row->len; i++) {
            hubs[pos] = row->data[2 * i];
            dists[pos] = row->data[2 * i + 1];
            pos++;
        }
        offsets[v + 1] = pos;
    }
    return 0;
}
