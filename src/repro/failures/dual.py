"""Dual-edge failures — the paper's first future-work item (§6).

Exact dual-failure indexing is much harder than single-failure (Duan &
Pettie, SODA 2009, which the paper cites); SIEF does not attempt it, so
this module provides the honest engineering middle ground:

* :meth:`DualFailureOracle.lower_bound` — a certified lower bound from
  the single-failure SIEF index: removing *more* edges never shortens a
  path, so ``d_{G-e1-e2}(s,t) >= max(d_{G-e1}(s,t), d_{G-e2}(s,t))``.
* :meth:`DualFailureOracle.distance` — the exact answer.  A pair the
  index already reports disconnected under one failure alone is returned
  as ``INF`` without any traversal; everything else falls back to an
  avoid-set BFS.

The oracle counts how often the index lower bound turned out to be the
exact answer (``tight_bounds``) — the statistic the dual-failure ablation
bench reports, quantifying how far a single-failure index carries toward
the dual-failure problem.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.core.index import SIEFIndex
from repro.core.query import SIEFQueryEngine
from repro.failures.search import bfs_distance_avoiding
from repro.labeling.query import INF

Edge = Tuple[int, int]
Distance = Union[int, float]


class DualFailureOracle:
    """Answers ``d_{G - e1 - e2}(s, t)`` with SIEF-assisted shortcuts."""

    def __init__(self, graph, index: SIEFIndex) -> None:
        self.graph = graph
        self.engine = SIEFQueryEngine(index)
        self.calls = 0
        self.disconnect_shortcuts = 0
        self.bfs_runs = 0
        self.tight_bounds = 0

    def lower_bound(self, s: int, t: int, e1: Edge, e2: Edge) -> Distance:
        """Certified lower bound from the two single-failure answers.

        Any path in ``G - e1 - e2`` survives in both ``G - e1`` and
        ``G - e2``, so its length is at least either single-failure
        distance.
        """
        d1 = self.engine.distance(s, t, e1)
        d2 = self.engine.distance(s, t, e2)
        return max(d1, d2)

    def distance(self, s: int, t: int, e1: Edge, e2: Edge) -> Distance:
        """Exact dual-failure distance (see module docstring)."""
        self.calls += 1
        bound = self.lower_bound(s, t, e1, e2)
        if bound == INF:
            self.disconnect_shortcuts += 1
            return INF
        self.bfs_runs += 1
        exact = bfs_distance_avoiding(self.graph, s, t, avoid_edges=(e1, e2))
        if exact == bound:
            self.tight_bounds += 1
        return exact

    @property
    def tightness_rate(self) -> float:
        """Fraction of calls where the index alone knew the exact answer."""
        if not self.calls:
            return 0.0
        return (self.disconnect_shortcuts + self.tight_bounds) / self.calls
