"""Directed SIEF: single-*arc* failure supplements for digraphs.

The paper handles undirected graphs and notes the approach "can be
extended to ... directed graphs" (§1).  This module carries that
extension out.  Directedness breaks two comforts of the undirected
theory, and the design here works around both:

**Sides overlap.**  For failed arc ``u → v`` define

* ``S`` — vertices whose distance *to* ``v`` changed (every old
  shortest ``s → v`` path crossed the arc), found by a flood over
  *incoming* arcs from ``u`` with the membership test
  ``d(s→v) == d(s→u) + 1  and  changed``;
* ``T`` — vertices whose distance *from* ``u`` changed, flooded forward
  from ``v``.

A changed pair always satisfies ``s ∈ S and t ∈ T`` (split the old path
at the arc), but unlike the undirected case a vertex can sit in *both*
sides (directed cycles through the arc), so "same side ⇒ unchanged"
fails.

**No free hub distances.**  The undirected Case-4 evaluation leans on
same-side distances being unchanged; here the construction instead uses
the *exact* post-failure distances its own BFS just computed for the
redundancy test, and the query evaluates hub distances **recursively**:
``d'(s→h)`` for a hub ``h`` is an original-label query when ``h ∉ T``
(the pair ``(s, h)`` cannot have changed) and a nested supplemental
evaluation otherwise.  Every nested hub has strictly smaller rank, so
the recursion terminates; a per-call memo keeps it linear in practice.

Exactness is asserted exhaustively against directed BFS on random
digraphs in ``tests/test_directed_sief.py``.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import EdgeNotFound, FailureCaseNotIndexed
from repro.graph.digraph import DiGraph
from repro.labeling.pll_directed import DirectedLabeling, build_directed_pll
from repro.labeling.query import INF

Arc = Tuple[int, int]
Distance = Union[int, float]

_UNSET = -1


def _bfs(adjacency, n: int, source: int, skip: Optional[Arc]) -> List[int]:
    """Directed BFS over ``adjacency`` (successors or predecessors).

    ``skip`` names the failed arc as ``(from, to)`` *in the orientation
    of this adjacency*: expansion from ``skip[0]`` never takes ``skip[1]``.
    """
    a, b = skip if skip is not None else (-1, -1)
    dist = [_UNSET] * n
    dist[source] = 0
    queue = deque((source,))
    while queue:
        x = queue.popleft()
        d = dist[x] + 1
        for y in adjacency(x):
            if x == a and y == b:
                continue
            if dist[y] == _UNSET:
                dist[y] = d
                queue.append(y)
    return dist


class DirectedAffected:
    """The two (possibly overlapping) affected sides of one failed arc."""

    __slots__ = ("u", "v", "side_s", "side_t", "disconnected")

    def __init__(
        self,
        u: int,
        v: int,
        side_s: Sequence[int],
        side_t: Sequence[int],
        disconnected: bool,
    ) -> None:
        self.u = u
        self.v = v
        self.side_s = tuple(sorted(side_s))
        self.side_t = tuple(sorted(side_t))
        self.disconnected = disconnected

    def in_s(self, x: int) -> bool:
        """Whether ``x``'s distance to ``v`` changed."""
        i = bisect.bisect_left(self.side_s, x)
        return i < len(self.side_s) and self.side_s[i] == x

    def in_t(self, x: int) -> bool:
        """Whether ``x``'s distance from ``u`` changed."""
        i = bisect.bisect_left(self.side_t, x)
        return i < len(self.side_t) and self.side_t[i] == x


def identify_affected_directed(
    dgraph: DiGraph, u: int, v: int
) -> DirectedAffected:
    """Directed Algorithm 1: both affected sides of failed arc ``u → v``."""
    if not dgraph.has_arc(u, v):
        raise EdgeNotFound(u, v)
    n = dgraph.num_vertices
    # Distances *to* v == forward distances from v over reversed arcs.
    to_v = _bfs(dgraph.predecessors, n, v, skip=None)
    to_v_new = _bfs(dgraph.predecessors, n, v, skip=(v, u))
    from_u = _bfs(dgraph.successors, n, u, skip=None)
    from_u_new = _bfs(dgraph.successors, n, u, skip=(u, v))
    to_u = _bfs(dgraph.predecessors, n, u, skip=None)
    from_v = _bfs(dgraph.successors, n, v, skip=None)

    # S: flood backward from u; member s has d(s->v) = d(s->u) + 1 and a
    # changed distance to v (Lemma 7/8 analogues with arcs reversed).
    side_s: List[int] = []
    if to_v[u] != _UNSET and to_v_new[u] != 1:  # u itself (d(u->v) was 1)
        member = [False] * n
        member[u] = True
        side_s.append(u)
        queue = deque((u,))
        while queue:
            x = queue.popleft()
            for s in dgraph.predecessors(x):
                if member[s] or to_u[s] == _UNSET:
                    continue
                through = to_u[s] + 1
                if to_v[s] == through and to_v_new[s] != through:
                    member[s] = True
                    side_s.append(s)
                    queue.append(s)

    side_t: List[int] = []
    if from_u[v] != _UNSET and from_u_new[v] != 1:
        member = [False] * n
        member[v] = True
        side_t.append(v)
        queue = deque((v,))
        while queue:
            x = queue.popleft()
            for t in dgraph.successors(x):
                if member[t] or from_v[t] == _UNSET:
                    continue
                through = from_v[t] + 1
                if from_u[t] == through and from_u_new[t] != through:
                    member[t] = True
                    side_t.append(t)
                    queue.append(t)

    return DirectedAffected(
        u=u,
        v=v,
        side_s=side_s,
        side_t=side_t,
        disconnected=from_u_new[v] == _UNSET,
    )


class DirectedSupplemental:
    """Per-arc supplement: two hub maps, mirroring in/out labels.

    ``labels_in[t]`` holds ``(hub_rank, d'(hub → t))`` pairs with hubs
    from ``S`` ranked *below* ``t`` (the forward pass);
    ``labels_out[s]`` holds ``(hub_rank, d'(s → hub))`` pairs with hubs
    from ``T`` ranked below ``s`` (the backward pass).  Between them the
    two passes process every cross pair exactly once, keyed by whichever
    endpoint ranks higher.
    """

    __slots__ = ("affected", "labels_in", "labels_out")

    def __init__(self, affected: DirectedAffected) -> None:
        self.affected = affected
        self.labels_in: Dict[int, Tuple[List[int], List[int]]] = {}
        self.labels_out: Dict[int, Tuple[List[int], List[int]]] = {}

    def total_entries(self) -> int:
        """Number of stored supplemental entries (both directions)."""
        return sum(len(r) for r, _ in self.labels_in.values()) + sum(
            len(r) for r, _ in self.labels_out.values()
        )


def build_directed_supplemental(
    dgraph: DiGraph,
    labeling: DirectedLabeling,
    affected: DirectedAffected,
) -> DirectedSupplemental:
    """Relabel one failed-arc case.

    Forward pass: roots ``r ∈ S`` ascending by rank, one full BFS on the
    failed graph each, producing entries for targets ``t ∈ T`` with
    ``σ(t) > σ(r)``.  Backward pass: symmetric, roots ``r ∈ T`` with a
    reverse BFS and targets ``s ∈ S`` ranked above ``r``.  In both, the
    redundancy test combines the *stored* exact distances of earlier
    entries with the current BFS's exact vector — no reliance on the
    (directed-invalid) "same side unchanged" shortcut.
    """
    si = DirectedSupplemental(affected)
    rank = labeling.ordering.rank
    n = dgraph.num_vertices
    side_s = sorted(affected.side_s, key=rank)
    side_t = sorted(affected.side_t, key=rank)

    # Forward pass: entries (r in S) -> labels_in[t in T], σ(t) > σ(r).
    for r in side_s:
        r_rank = rank(r)
        targets = [t for t in side_t if rank(t) > r_rank]
        if not targets:
            continue
        dist = _bfs(dgraph.successors, n, r, skip=(affected.u, affected.v))
        for t in targets:
            d = dist[t]
            if d == _UNSET:
                continue
            entry = si.labels_in.get(t)
            if entry is None:
                si.labels_in[t] = ([r_rank], [d])
                continue
            ranks_t, dists_t = entry
            redundant = False
            for h_rank, delta in zip(ranks_t, dists_t):
                # delta = d'(h -> t) stored; dist[h] = d'(r -> h) now.
                via = dist[labeling.ordering.vertex(h_rank)]
                if via != _UNSET and via + delta <= d:
                    redundant = True
                    break
            if not redundant:
                ranks_t.append(r_rank)
                dists_t.append(d)

    # Backward pass: entries (r in T) -> labels_out[s in S], σ(s) > σ(r).
    for r in side_t:
        r_rank = rank(r)
        targets = [s for s in side_s if rank(s) > r_rank]
        if not targets:
            continue
        # Reverse BFS: dist[x] = d'(x -> r).
        dist = _bfs(dgraph.predecessors, n, r, skip=(affected.v, affected.u))
        for s in targets:
            d = dist[s]
            if d == _UNSET:
                continue
            entry = si.labels_out.get(s)
            if entry is None:
                si.labels_out[s] = ([r_rank], [d])
                continue
            ranks_s, dists_s = entry
            redundant = False
            for h_rank, delta in zip(ranks_s, dists_s):
                # delta = d'(s -> h) stored; dist[h] = d'(h -> r) now.
                via = dist[labeling.ordering.vertex(h_rank)]
                if via != _UNSET and delta + via <= d:
                    redundant = True
                    break
            if not redundant:
                ranks_s.append(r_rank)
                dists_s.append(d)
    return si


class DirectedSIEFIndex:
    """Directed labeling plus per-arc supplements, with exact queries."""

    def __init__(self, labeling: DirectedLabeling) -> None:
        self.labeling = labeling
        self.supplements: Dict[Arc, DirectedSupplemental] = {}

    def add_supplement(self, arc: Arc, si: DirectedSupplemental) -> None:
        """Register one failed-arc case."""
        self.supplements[arc] = si

    def supplement(self, u: int, v: int) -> DirectedSupplemental:
        """The case for failed arc ``u → v``; raises if unindexed."""
        try:
            return self.supplements[(u, v)]
        except KeyError:
            raise FailureCaseNotIndexed(u, v) from None

    def distance(self, s: int, t: int, failed_arc: Arc) -> Distance:
        """``d_{G - (u→v)}(s → t)``."""
        si = self.supplement(*failed_arc)
        affected = si.affected
        if s == t:
            return 0
        if not (affected.in_s(s) and affected.in_t(t)):
            # Splitting an old shortest path at the failed arc shows a
            # changed pair must have s ∈ S and t ∈ T.
            return self.labeling.query(s, t)
        memo: Dict[Tuple[int, int], Distance] = {}
        return self._eval(si, s, t, memo)

    def _eval(
        self,
        si: DirectedSupplemental,
        s: int,
        t: int,
        memo: Dict[Tuple[int, int], Distance],
    ) -> Distance:
        """Evaluation for a potentially changed pair (s ∈ S, t ∈ T).

        Recursion strictly decreases ``max(rank(s), rank(t))`` — the
        pair's higher-ranked endpoint owns the stored entries and every
        hub ranks below it — so termination is structural, with a memo
        for the shared subproblems.
        """
        if s == t:
            return 0
        key = (s, t)
        cached = memo.get(key)
        if cached is not None:
            return cached
        affected = si.affected
        ordering = self.labeling.ordering
        vertex = ordering.vertex
        best: Distance = INF
        if ordering.precedes(s, t):
            # Hubs h ∈ S with σ(h) < σ(t): total = d'(s→h) + d'(h→t).
            entry = si.labels_in.get(t)
            if entry is not None:
                for h_rank, delta in zip(*entry):
                    h = vertex(h_rank)
                    if h == s:
                        head: Distance = 0
                    elif affected.in_s(s) and affected.in_t(h):
                        head = self._eval(si, s, h, memo)
                    else:
                        head = self.labeling.query(s, h)
                    total = head + delta
                    if total < best:
                        best = total
        else:
            # Hubs h ∈ T with σ(h) < σ(s): total = d'(s→h) + d'(h→t).
            entry = si.labels_out.get(s)
            if entry is not None:
                for h_rank, delta in zip(*entry):
                    h = vertex(h_rank)
                    if h == t:
                        tail: Distance = 0
                    elif affected.in_s(h) and affected.in_t(t):
                        tail = self._eval(si, h, t, memo)
                    else:
                        tail = self.labeling.query(h, t)
                    total = delta + tail
                    if total < best:
                        best = total
        memo[key] = best
        return best


def build_directed_sief(
    dgraph: DiGraph, labeling: Optional[DirectedLabeling] = None
) -> DirectedSIEFIndex:
    """Directed PLL (if needed) + supplements for every arc."""
    if labeling is None:
        labeling = build_directed_pll(dgraph)
    index = DirectedSIEFIndex(labeling)
    for u, v in dgraph.arcs():
        affected = identify_affected_directed(dgraph, u, v)
        si = build_directed_supplemental(dgraph, labeling, affected)
        index.add_supplement((u, v), si)
    return index
