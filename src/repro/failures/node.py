"""Node failures — the paper's last future-work item (§6).

Removing a vertex removes *all* its incident edges at once, which the
paper notes is "even more challenging than edge failures".  As with the
dual case, the single-failure SIEF index supplies a certified lower bound
(the failure of any one incident edge), and an avoid-vertex BFS supplies
exactness.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.core.index import SIEFIndex
from repro.core.query import SIEFQueryEngine
from repro.exceptions import ReproError
from repro.failures.search import bfs_distance_avoiding
from repro.labeling.query import INF

Distance = Union[int, float]


class NodeFailureOracle:
    """Answers ``d_{G - w}(s, t)`` for a failed vertex ``w``."""

    def __init__(self, graph, index: SIEFIndex) -> None:
        self.graph = graph
        self.engine = SIEFQueryEngine(index)
        self.calls = 0
        self.tight_bounds = 0

    def lower_bound(self, s: int, t: int, failed_vertex: int) -> Distance:
        """Max over incident edges of the single-failure distance.

        ``G - w`` is a subgraph of ``G - e`` for every edge ``e`` incident
        to ``w``, so each single-failure distance lower-bounds the node-
        failure distance; isolated vertices contribute the original
        distance.
        """
        incident = list(self.graph.neighbors(failed_vertex))
        if not incident:
            from repro.labeling.query import dist_query

            return dist_query(self.engine.index.labeling, s, t)
        return max(
            self.engine.distance(s, t, (failed_vertex, nbr))
            for nbr in incident
        )

    def distance(self, s: int, t: int, failed_vertex: int) -> Distance:
        """Exact node-failure distance via avoid-vertex BFS.

        Querying an endpoint of the failed vertex itself is rejected —
        the distance "from a removed vertex" is undefined.
        """
        if failed_vertex in (s, t):
            raise ReproError(
                f"query endpoint {failed_vertex} is the failed vertex"
            )
        self.calls += 1
        exact = bfs_distance_avoiding(
            self.graph, s, t, avoid_vertices=(failed_vertex,)
        )
        if exact != INF and exact == self.lower_bound(s, t, failed_vertex):
            self.tight_bounds += 1
        return exact

    @property
    def tightness_rate(self) -> float:
        """Fraction of calls where the edge-failure bound was exact."""
        if not self.calls:
            return 0.0
        return self.tight_bounds / self.calls
