"""Failure models and the paper's future-work extensions.

* :mod:`repro.failures.model` — failure scenarios and seeded workload
  generators (random failed edges, random query triples) shared by tests
  and benchmarks.
* :mod:`repro.failures.search` — traversals avoiding arbitrary edge/vertex
  sets (the exact fallback the extensions rest on).
* :mod:`repro.failures.dual` — dual-edge failures (§6 future work):
  index-derived lower bounds plus an exact fallback.
* :mod:`repro.failures.node` — node failures (§6 future work): exact
  fallback via vertex-avoiding BFS.
* :mod:`repro.failures.weighted` — the weighted-graph SIEF variant
  (Dijkstra-based identify + relabel) backing the paper's "can be
  extended to weighted graphs" claim.
"""

from repro.failures.model import (
    FailureScenario,
    QueryTriple,
    random_failed_edges,
    random_query_triples,
    cross_side_query_triples,
)
from repro.failures.search import (
    bfs_avoiding,
    bfs_distance_avoiding,
)
from repro.failures.dual import DualFailureOracle
from repro.failures.node import NodeFailureOracle
from repro.failures.weighted import (
    WeightedSIEFIndex,
    build_weighted_sief,
    identify_affected_weighted,
)
from repro.failures.directed import (
    DirectedSIEFIndex,
    build_directed_sief,
    identify_affected_directed,
)

__all__ = [
    "FailureScenario",
    "QueryTriple",
    "random_failed_edges",
    "random_query_triples",
    "cross_side_query_triples",
    "bfs_avoiding",
    "bfs_distance_avoiding",
    "DualFailureOracle",
    "NodeFailureOracle",
    "WeightedSIEFIndex",
    "build_weighted_sief",
    "identify_affected_weighted",
    "DirectedSIEFIndex",
    "build_directed_sief",
    "identify_affected_directed",
]
