"""Failure scenarios and seeded workload generation.

Benchmarks and tests need reproducible streams of "fail this edge, query
that pair" events; these helpers centralize the sampling so every bench
draws from the same distributions the paper's evaluation implies (uniform
random failed edge, uniform random vertex pair).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.graph.graph import Graph, normalize_edge

Edge = Tuple[int, int]


@dataclass(frozen=True)
class FailureScenario:
    """One failure event: the edges (and/or vertices) currently down."""

    failed_edges: Tuple[Edge, ...] = ()
    failed_vertices: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "failed_edges",
            tuple(normalize_edge(*e) for e in self.failed_edges),
        )

    @property
    def is_single_edge(self) -> bool:
        """Whether this is the paper's single-edge failure model."""
        return len(self.failed_edges) == 1 and not self.failed_vertices


@dataclass(frozen=True)
class QueryTriple:
    """One benchmark query: source, target, failed edge."""

    s: int
    t: int
    edge: Edge


def random_failed_edges(
    graph: Graph, count: int, seed: int = 0, distinct: bool = False
) -> List[Edge]:
    """Sample ``count`` failed edges uniformly from the graph.

    ``distinct=True`` samples without replacement (requires
    ``count <= m``).
    """
    edges = list(graph.edges())
    if not edges:
        raise ReproError("cannot sample failures from an edgeless graph")
    rng = random.Random(seed)
    if distinct:
        if count > len(edges):
            raise ReproError(
                f"asked for {count} distinct edges, graph has {len(edges)}"
            )
        return rng.sample(edges, count)
    return [rng.choice(edges) for _ in range(count)]


def random_query_triples(
    graph: Graph, count: int, seed: int = 0
) -> List[QueryTriple]:
    """Uniform random ``(s, t, failed edge)`` workload (Table 4's shape)."""
    edges = list(graph.edges())
    if not edges or graph.num_vertices < 2:
        raise ReproError("graph too small to generate query triples")
    rng = random.Random(seed)
    n = graph.num_vertices
    triples = []
    for _ in range(count):
        s = rng.randrange(n)
        t = rng.randrange(n)
        while t == s:
            t = rng.randrange(n)
        triples.append(QueryTriple(s, t, rng.choice(edges)))
    return triples


def cross_side_query_triples(
    index, count: int, seed: int = 0
) -> List[QueryTriple]:
    """Query triples guaranteed to hit Case 4 (both endpoints affected,
    opposite sides) — the stress workload where supplemental labels are
    actually consulted.

    ``index`` is a :class:`repro.core.index.SIEFIndex`; edges whose
    failure affects a single vertex per side still qualify (the endpoints
    themselves).
    """
    rng = random.Random(seed)
    cases = [(edge, si) for edge, si in index.iter_cases()]
    if not cases:
        raise ReproError("index holds no failure cases")
    triples: List[QueryTriple] = []
    guard = 0
    while len(triples) < count and guard < 100 * count:
        guard += 1
        edge, si = rng.choice(cases)
        side_u = si.affected.side_u
        side_v = si.affected.side_v
        if not side_u or not side_v:
            continue
        s = rng.choice(side_u)
        t = rng.choice(side_v)
        triples.append(QueryTriple(s, t, edge))
    if len(triples) < count:
        raise ReproError("could not generate enough cross-side triples")
    return triples
