"""Weighted-graph SIEF — the paper's "can be extended to weighted graphs".

Everything in §4 generalizes once BFS becomes Dijkstra and the unit edge
length becomes the failed edge's weight ``c``:

* Lemma 7's membership test becomes ``d(w, v) == d(w, u) + c``;
* Lemma 8's tree-growth argument is verbatim (an affected vertex's
  shortest path toward the root consists of affected, pairwise-adjacent
  vertices), so the same restricted flood finds each side;
* relabeling runs a (plain, late-pruned) Dijkstra per affected root, with
  the identical ``<=`` redundancy test against the weighted labeling.

Float arithmetic replaces the exact integer comparisons, so every
equality is evaluated under a relative tolerance (:data:`EPS`).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from repro.core.affected import AffectedVertices
from repro.core.supplemental import SupplementalIndex, SupplementalLabels
from repro.exceptions import EdgeNotFound, FailureCaseNotIndexed
from repro.graph.graph import normalize_edge
from repro.graph.weighted import WeightedGraph
from repro.labeling.pll_weighted import WeightedLabeling, build_weighted_pll
from repro.labeling.query import INF, dist_query

Edge = Tuple[int, int]
Distance = Union[int, float]

EPS = 1e-9
"""Relative tolerance for weighted distance comparisons."""


def close(a: float, b: float) -> bool:
    """Tolerant float equality (also true for two infinities)."""
    if a == b:
        return True
    if math.isinf(a) or math.isinf(b):
        return False
    return abs(a - b) <= EPS * max(1.0, abs(a), abs(b))


def _dijkstra(wgraph: WeightedGraph, source: int, avoid: Optional[Edge]) -> List[float]:
    a, b = avoid if avoid is not None else (-1, -1)
    dist = [INF] * wgraph.num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for w, weight in wgraph.neighbors(v):
            if (v == a and w == b) or (v == b and w == a):
                continue
            nd = d + weight
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def identify_affected_weighted(
    wgraph: WeightedGraph, u: int, v: int
) -> AffectedVertices:
    """Weighted Algorithm 1: affected sides of failed edge ``(u, v)``."""
    if not wgraph.has_edge(u, v):
        raise EdgeNotFound(u, v)
    c = wgraph.weight(u, v)
    du = _dijkstra(wgraph, u, avoid=None)
    dv = _dijkstra(wgraph, v, avoid=None)
    du_new = _dijkstra(wgraph, u, avoid=(u, v))
    dv_new = _dijkstra(wgraph, v, avoid=(u, v))

    def grow(root: int, d_near: List[float], d_far: List[float], d_far_new: List[float]) -> Tuple[int, ...]:
        # Unlike the unweighted case, a weighted edge heavier than the
        # best detour lies on no shortest path at all: then not even the
        # endpoints are affected and the side is empty.
        if close(d_far[root], d_far_new[root]):
            return ()
        member = [False] * wgraph.num_vertices
        member[root] = True
        side = [root]
        queue = deque((root,))
        while queue:
            t = queue.popleft()
            for r, _w in wgraph.neighbors(t):
                if member[r] or math.isinf(d_near[r]):
                    continue
                through = d_near[r] + c
                if close(d_far[r], through) and not close(d_far_new[r], through):
                    member[r] = True
                    side.append(r)
                    queue.append(r)
        return tuple(sorted(side))

    return AffectedVertices(
        u=u,
        v=v,
        side_u=grow(u, du, dv, dv_new),
        side_v=grow(v, dv, du, du_new),
        disconnected=math.isinf(du_new[v]),
    )


def _relabel_side_weighted(
    wgraph: WeightedGraph,
    failed: Edge,
    labeling: WeightedLabeling,
    roots: List[int],
    targets: List[int],
    si: SupplementalIndex,
) -> None:
    """Late-pruned Dijkstra relabeling (the weighted BFS AFF analogue)."""
    rank = labeling.ordering.rank
    vertex = labeling.ordering.vertex
    for r in sorted(roots, key=rank):
        r_rank = rank(r)
        wanted = [t for t in targets if rank(t) > r_rank]
        if not wanted:
            continue
        dist = _dijkstra(wgraph, r, avoid=failed)
        via_cache: Dict[int, float] = {}
        for t in sorted(wanted, key=rank):
            d = dist[t]
            if math.isinf(d):
                continue
            sl = si.label_of(t)
            redundant = False
            for h_rank, delta in zip(sl.ranks, sl.dists):
                via = via_cache.get(h_rank)
                if via is None:
                    via = dist_query(labeling, r, vertex(h_rank))
                    via_cache[h_rank] = via
                if via + delta <= d + EPS * max(1.0, d):
                    redundant = True
                    break
            if not redundant:
                sl.append(r_rank, d)


def build_supplemental_weighted(
    wgraph: WeightedGraph,
    labeling: WeightedLabeling,
    affected: AffectedVertices,
) -> SupplementalIndex:
    """Build ``SI(u,v)`` for one weighted failure case."""
    si = SupplementalIndex(affected)
    if affected.disconnected:
        return si
    failed = (affected.u, affected.v)
    _relabel_side_weighted(
        wgraph, failed, labeling, list(affected.side_u), list(affected.side_v), si
    )
    _relabel_side_weighted(
        wgraph, failed, labeling, list(affected.side_v), list(affected.side_u), si
    )
    si.drop_empty()
    return si


class WeightedSIEFIndex:
    """Weighted labeling plus per-edge supplements, with Case 1–4 queries."""

    def __init__(self, labeling: WeightedLabeling) -> None:
        self.labeling = labeling
        self.supplements: Dict[Edge, SupplementalIndex] = {}

    def add_supplement(self, edge: Edge, si: SupplementalIndex) -> None:
        """Register one failure case."""
        self.supplements[normalize_edge(*edge)] = si

    def supplement(self, u: int, v: int) -> SupplementalIndex:
        """The case for failed edge ``(u, v)``; raises if unindexed."""
        try:
            return self.supplements[normalize_edge(u, v)]
        except KeyError:
            raise FailureCaseNotIndexed(u, v) from None

    def distance(self, s: int, t: int, failed_edge: Edge) -> float:
        """``d_{G - e}(s, t)`` on the weighted graph."""
        si = self.supplement(*failed_edge)
        side_s = si.affected.contains(s)
        side_t = si.affected.contains(t)
        if side_s is None or side_t is None or side_s == side_t:
            return dist_query(self.labeling, s, t)
        if s == t:
            return 0.0
        if self.labeling.ordering.precedes(s, t):
            low, high = s, t
        else:
            low, high = t, s
        sl: SupplementalLabels = si.get(high)
        vertex = self.labeling.ordering.vertex
        best = INF
        for h_rank, delta in zip(sl.ranks, sl.dists):
            total = dist_query(self.labeling, low, vertex(h_rank)) + delta
            if total < best:
                best = total
        return best


def build_weighted_sief(
    wgraph: WeightedGraph, labeling: Optional[WeightedLabeling] = None
) -> WeightedSIEFIndex:
    """Weighted PLL (if needed) + supplements for every edge."""
    if labeling is None:
        labeling = build_weighted_pll(wgraph)
    index = WeightedSIEFIndex(labeling)
    for u, v, _w in wgraph.edges():
        affected = identify_affected_weighted(wgraph, u, v)
        si = build_supplemental_weighted(wgraph, labeling, affected)
        index.add_supplement((u, v), si)
    return index
