"""Persistence for the extension indexes (weighted and directed SIEF).

The core unweighted index has a compact binary format
(:mod:`repro.core.serialize`); the extensions use a self-describing JSON
envelope instead — their distance types differ (floats for weighted,
dual in/out maps for directed) and their scale is secondary to the
paper's evaluation, so clarity wins over byte-shaving here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.affected import AffectedVertices
from repro.core.supplemental import SupplementalIndex, SupplementalLabels
from repro.exceptions import SerializationError
from repro.failures.directed import (
    DirectedAffected,
    DirectedSIEFIndex,
    DirectedSupplemental,
)
from repro.failures.weighted import WeightedSIEFIndex
from repro.labeling.pll_weighted import WeightedLabeling
from repro.labeling.pll_directed import DirectedLabeling
from repro.order.ordering import VertexOrdering

PathLike = Union[str, Path]

_WEIGHTED_KIND = "sief-weighted-1"
_DIRECTED_KIND = "sief-directed-1"


def weighted_index_to_json(index: WeightedSIEFIndex) -> str:
    """Serialize a weighted SIEF index (floats preserved via repr)."""
    labeling = index.labeling
    doc = {
        "kind": _WEIGHTED_KIND,
        "order": labeling.ordering.sequence(),
        "labels": [
            [labeling.hub_ranks[v], labeling.hub_dists[v]]
            for v in range(labeling.num_vertices)
        ],
        "cases": [
            {
                "e": list(edge),
                "au": list(si.affected.side_u),
                "av": list(si.affected.side_v),
                "disc": si.affected.disconnected,
                "sl": {
                    str(t): [sl.ranks, sl.dists]
                    for t, sl in si.iter_labels()
                },
            }
            for edge, si in sorted(index.supplements.items())
        ],
    }
    return json.dumps(doc, separators=(",", ":"))


def weighted_index_from_json(text: str) -> WeightedSIEFIndex:
    """Inverse of :func:`weighted_index_to_json`."""
    try:
        doc = json.loads(text)
        if doc.get("kind") != _WEIGHTED_KIND:
            raise SerializationError(
                f"expected {_WEIGHTED_KIND}, got {doc.get('kind')!r}"
            )
        ordering = VertexOrdering([int(v) for v in doc["order"]])
        labeling = WeightedLabeling(
            ordering,
            [[int(r) for r in ranks] for ranks, _ in doc["labels"]],
            [[float(d) for d in dists] for _, dists in doc["labels"]],
        )
        index = WeightedSIEFIndex(labeling)
        for case in doc["cases"]:
            u, v = case["e"]
            affected = AffectedVertices(
                u=u,
                v=v,
                side_u=tuple(case["au"]),
                side_v=tuple(case["av"]),
                disconnected=bool(case.get("disc", False)),
            )
            si = SupplementalIndex(affected)
            for key, (ranks, dists) in case["sl"].items():
                si.labels[int(key)] = SupplementalLabels(
                    [int(r) for r in ranks], [float(d) for d in dists]
                )
            index.add_supplement((u, v), si)
        return index
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(
            f"bad weighted index JSON: {error}"
        ) from error


def directed_index_to_json(index: DirectedSIEFIndex) -> str:
    """Serialize a directed SIEF index."""
    labeling = index.labeling
    doc = {
        "kind": _DIRECTED_KIND,
        "order": labeling.ordering.sequence(),
        "out": [
            [labeling.out_ranks[v], labeling.out_dists[v]]
            for v in range(labeling.num_vertices)
        ],
        "in": [
            [labeling.in_ranks[v], labeling.in_dists[v]]
            for v in range(labeling.num_vertices)
        ],
        "cases": [
            {
                "a": list(arc),
                "s": list(si.affected.side_s),
                "t": list(si.affected.side_t),
                "disc": si.affected.disconnected,
                "li": {str(k): list(v) for k, v in si.labels_in.items()},
                "lo": {str(k): list(v) for k, v in si.labels_out.items()},
            }
            for arc, si in sorted(index.supplements.items())
        ],
    }
    return json.dumps(doc, separators=(",", ":"))


def directed_index_from_json(text: str) -> DirectedSIEFIndex:
    """Inverse of :func:`directed_index_to_json`."""
    try:
        doc = json.loads(text)
        if doc.get("kind") != _DIRECTED_KIND:
            raise SerializationError(
                f"expected {_DIRECTED_KIND}, got {doc.get('kind')!r}"
            )
        ordering = VertexOrdering([int(v) for v in doc["order"]])
        labeling = DirectedLabeling(ordering)
        for v, (ranks, dists) in enumerate(doc["out"]):
            labeling.out_ranks[v] = [int(r) for r in ranks]
            labeling.out_dists[v] = [int(d) for d in dists]
        for v, (ranks, dists) in enumerate(doc["in"]):
            labeling.in_ranks[v] = [int(r) for r in ranks]
            labeling.in_dists[v] = [int(d) for d in dists]
        index = DirectedSIEFIndex(labeling)
        for case in doc["cases"]:
            u, v = case["a"]
            affected = DirectedAffected(
                u=u,
                v=v,
                side_s=[int(x) for x in case["s"]],
                side_t=[int(x) for x in case["t"]],
                disconnected=bool(case.get("disc", False)),
            )
            si = DirectedSupplemental(affected)
            si.labels_in = {
                int(k): ([int(r) for r in rs], [int(d) for d in ds])
                for k, (rs, ds) in case["li"].items()
            }
            si.labels_out = {
                int(k): ([int(r) for r in rs], [int(d) for d in ds])
                for k, (rs, ds) in case["lo"].items()
            }
            index.add_supplement((u, v), si)
        return index
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(
            f"bad directed index JSON: {error}"
        ) from error


def save_weighted_index(index: WeightedSIEFIndex, path: PathLike) -> None:
    """Write a weighted index to ``path``."""
    Path(path).write_text(weighted_index_to_json(index), encoding="utf-8")


def load_weighted_index(path: PathLike) -> WeightedSIEFIndex:
    """Read a weighted index written by :func:`save_weighted_index`."""
    return weighted_index_from_json(Path(path).read_text(encoding="utf-8"))


def save_directed_index(index: DirectedSIEFIndex, path: PathLike) -> None:
    """Write a directed index to ``path``."""
    Path(path).write_text(directed_index_to_json(index), encoding="utf-8")


def load_directed_index(path: PathLike) -> DirectedSIEFIndex:
    """Read a directed index written by :func:`save_directed_index`."""
    return directed_index_from_json(Path(path).read_text(encoding="utf-8"))
