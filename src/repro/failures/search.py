"""Traversals that avoid arbitrary edge and vertex sets.

The exact fallback behind the dual-edge and node failure oracles.  Kept
separate from :mod:`repro.graph.traversal` because the single-edge hot
loops there must stay branch-minimal.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.graph.graph import normalize_edge
from repro.graph.traversal import UNREACHED, _adjacency
from repro.labeling.query import INF

Edge = Tuple[int, int]
Distance = Union[int, float]


def _edge_set(edges: Iterable[Edge]) -> FrozenSet[Edge]:
    return frozenset(normalize_edge(*e) for e in edges)


def bfs_avoiding(
    graph,
    source: int,
    avoid_edges: Iterable[Edge] = (),
    avoid_vertices: Iterable[int] = (),
) -> List[int]:
    """BFS distances skipping the given edges and vertices entirely.

    A source inside ``avoid_vertices`` yields an all-unreached vector.
    """
    adj = _adjacency(graph)
    n = len(adj)
    bad_edges = _edge_set(avoid_edges)
    bad_vertices: Set[int] = set(avoid_vertices)
    dist = [UNREACHED] * n
    if source in bad_vertices:
        return dist
    dist[source] = 0
    queue = deque((source,))
    while queue:
        v = queue.popleft()
        d = dist[v] + 1
        for w in adj[v]:
            if w in bad_vertices or dist[w] != UNREACHED:
                continue
            if bad_edges and normalize_edge(v, w) in bad_edges:
                continue
            dist[w] = d
            queue.append(w)
    return dist


def bfs_distance_avoiding(
    graph,
    source: int,
    target: int,
    avoid_edges: Iterable[Edge] = (),
    avoid_vertices: Iterable[int] = (),
) -> Distance:
    """Point-to-point distance under the avoid sets (:data:`INF` if cut).

    Early-exits once the target is settled.
    """
    bad_vertices: Set[int] = set(avoid_vertices)
    if source == target:
        return INF if source in bad_vertices else 0
    adj = _adjacency(graph)
    n = len(adj)
    bad_edges = _edge_set(avoid_edges)
    if source in bad_vertices or target in bad_vertices:
        return INF
    dist = [UNREACHED] * n
    dist[source] = 0
    queue = deque((source,))
    while queue:
        v = queue.popleft()
        d = dist[v] + 1
        for w in adj[v]:
            if w in bad_vertices or dist[w] != UNREACHED:
                continue
            if bad_edges and normalize_edge(v, w) in bad_edges:
                continue
            if w == target:
                return d
            dist[w] = d
            queue.append(w)
    return INF
