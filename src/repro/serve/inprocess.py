"""Run a :class:`~repro.serve.server.SIEFServer` inside the current process.

The conformance adapter and the fault/concurrency test suites need a
*real* server — real socket, real HTTP parsing, real micro-batcher — but
inside a pytest process that is not itself async.  This helper runs the
server's event loop on a daemon thread, binds an ephemeral port, and
exposes just enough to drive it from the outside:

.. code-block:: python

    with InProcessServer(engine) as srv:
        client = ServeClient(srv.host, srv.port)
        assert client.distance(0, 5, (2, 3)) == 4

``stop()`` (or the ``with`` exit) performs the same graceful drain as
SIGTERM.  The server's metrics registry stays reachable after shutdown,
so tests assert on histograms post-hoc.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.core.query import SIEFQueryEngine
from repro.serve.server import ServeConfig, SIEFServer


class InProcessServer:
    """A live server on a background thread; context-manager friendly."""

    def __init__(
        self,
        engine: SIEFQueryEngine,
        config: Optional[ServeConfig] = None,
        startup_timeout: float = 10.0,
    ) -> None:
        self.server = SIEFServer(engine, config)
        self.registry = self.server.registry
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="sief-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(startup_timeout):
            raise RuntimeError("in-process server failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._ready.set()
            return
        self.host, self.port = self.server.host, self.server.port
        self._ready.set()
        try:
            await self.server.serve_until(self._stop_event)
        finally:
            self._done.set()

    def stop(self, timeout: float = 15.0) -> None:
        """Graceful drain, then join the loop thread.  Idempotent."""
        if self._loop is not None and not self._done.is_set():
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
            self._done.wait(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> "InProcessServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
