"""Wire formats shared by the server, the clients and the load generator.

Two request encodings answer the same queries:

* **JSON** (``POST /dist``, ``POST /batch``) — human-debuggable;
  distances serialize as numbers, with ``null`` for disconnected pairs
  (JSON has no ``Infinity``).
* **Binary** (``POST /batch.bin``) — a single length-prefixed frame per
  batch, for clients that care about encode cost at high rates.

Binary batch request (little-endian)::

    magic   4s   b"SFB1"
    u, v    2 × u32   the failed edge
    count   u32       number of (s, t) pairs
    pairs   count × 2 × i32
    trace   16 bytes, OPTIONAL — a 128-bit trace id

The trace trailer keeps the format self-framing: a frame is either
exactly the declared size or exactly 16 bytes longer, anything else is
rejected.  Old clients (no trailer) and old servers (which rejected the
longer frame as junk, never misread it) stay unambiguous.

Binary batch response::

    magic   4s   b"SFB1"
    count   u32
    dists   count × f64   (IEEE +inf for disconnected pairs)

Every decoder validates magic, declared count and byte length and raises
:class:`ProtocolError` — the server maps that to a 400, never a crash.
"""

from __future__ import annotations

import math
import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

BINARY_MAGIC = b"SFB1"
"""Frame magic for the binary batch endpoint (request and response)."""

_REQ_HEADER = struct.Struct("<4sIII")
_RESP_HEADER = struct.Struct("<4sI")

MAX_BINARY_PAIRS = 1 << 22
"""Upper bound on pairs per binary frame (sanity cap, ~4M)."""

TRACE_TRAILER_BYTES = 16
"""Size of the optional trace-id trailer on a binary batch request."""

Pair = Tuple[int, int]
Edge = Tuple[int, int]


class ProtocolError(ValueError):
    """A malformed frame or JSON document (the server answers 400)."""


def encode_batch_request(
    edge: Edge, pairs: Sequence[Pair], trace_id: Optional[str] = None
) -> bytes:
    """One binary batch-request frame, optionally carrying a trace id.

    ``trace_id`` must be 32 hex characters (128 bits) — the binary
    trailer is fixed-width raw bytes, not a free-form token.  Clients
    with opaque non-hex ids use the ``X-Trace-Id`` header instead.
    """
    u, v = int(edge[0]), int(edge[1])
    arr = np.asarray(pairs, dtype=np.int32).reshape(-1, 2)
    frame = _REQ_HEADER.pack(BINARY_MAGIC, u, v, len(arr)) + arr.tobytes()
    if trace_id is not None:
        try:
            trailer = bytes.fromhex(trace_id)
        except ValueError:
            raise ValueError(
                f"binary trace id must be hex, got {trace_id!r}"
            ) from None
        if len(trailer) != TRACE_TRAILER_BYTES:
            raise ValueError(
                f"binary trace id must be {TRACE_TRAILER_BYTES * 2} hex "
                f"chars, got {len(trace_id)}"
            )
        frame += trailer
    return frame


def decode_batch_request(
    data: bytes,
) -> Tuple[Edge, np.ndarray, Optional[str]]:
    """Inverse of :func:`encode_batch_request` (strict).

    Returns ``(edge, pairs, trace_id)`` where ``trace_id`` is the
    32-hex-char id from the optional trailer, or ``None`` for a plain
    frame.
    """
    if len(data) < _REQ_HEADER.size:
        raise ProtocolError(
            f"binary frame truncated: {len(data)} bytes, "
            f"need at least {_REQ_HEADER.size}"
        )
    magic, u, v, count = _REQ_HEADER.unpack_from(data)
    if magic != BINARY_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if count > MAX_BINARY_PAIRS:
        raise ProtocolError(f"frame declares {count} pairs (cap {MAX_BINARY_PAIRS})")
    expected = _REQ_HEADER.size + count * 8
    trace_id: Optional[str] = None
    if len(data) == expected + TRACE_TRAILER_BYTES:
        trace_id = data[expected:].hex()
    elif len(data) != expected:
        raise ProtocolError(
            f"binary frame length {len(data)} does not match declared "
            f"count {count} (expected {expected} bytes, optionally "
            f"+{TRACE_TRAILER_BYTES} for a trace id)"
        )
    pairs = np.frombuffer(
        data, dtype=np.int32, count=count * 2, offset=_REQ_HEADER.size
    ).reshape(count, 2)
    return (u, v), pairs, trace_id


def encode_batch_response(distances: np.ndarray) -> bytes:
    """One binary batch-response frame (float64, inf for disconnected)."""
    arr = np.asarray(distances, dtype=np.float64)
    return _RESP_HEADER.pack(BINARY_MAGIC, len(arr)) + arr.tobytes()


def decode_batch_response(data: bytes) -> np.ndarray:
    """Inverse of :func:`encode_batch_response` (strict)."""
    if len(data) < _RESP_HEADER.size:
        raise ProtocolError(
            f"binary response truncated: {len(data)} bytes"
        )
    magic, count = _RESP_HEADER.unpack_from(data)
    if magic != BINARY_MAGIC:
        raise ProtocolError(f"bad response magic {magic!r}")
    expected = _RESP_HEADER.size + count * 8
    if len(data) != expected:
        raise ProtocolError(
            f"binary response length {len(data)} does not match "
            f"declared count {count}"
        )
    return np.frombuffer(
        data, dtype=np.float64, count=count, offset=_RESP_HEADER.size
    )


def distance_to_json(value) -> Optional[float]:
    """A distance as its JSON form: a number, or ``None`` when infinite."""
    f = float(value)
    if math.isinf(f):
        return None
    return int(f) if f == int(f) else f


def distances_to_json(values) -> List[Optional[float]]:
    """Vector form of :func:`distance_to_json`."""
    return [distance_to_json(v) for v in values]


def distance_from_json(value) -> float:
    """Inverse of :func:`distance_to_json` (``None`` → ``inf``)."""
    return math.inf if value is None else float(value)
