"""Clients for the serving protocol.

* :class:`ServeClient` — synchronous, over :mod:`http.client` with one
  keep-alive connection.  The conformance adapter and the test suites
  drive the server with it.
* :class:`AsyncServeClient` — asyncio, raw keep-alive HTTP over
  ``asyncio.open_connection``.  The open-loop load generator
  (``benchmarks/bench_serve.py``) uses many of these concurrently; each
  instance owns one connection and must only be used from one task at a
  time.

Both speak every endpoint: JSON single/batch, the binary frame, and the
operational GETs.  Server-side errors surface as
:class:`ServeClientError` carrying the HTTP status and decoded message.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.protocol import (
    distance_from_json,
    encode_batch_request,
    decode_batch_response,
)

Edge = Tuple[int, int]
Pair = Tuple[int, int]


class ServeClientError(Exception):
    """A non-2xx answer from the server."""

    def __init__(self, status: int, message: str, retry_after: Optional[str] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


def _extract_error(status: int, body: bytes, retry_after=None) -> ServeClientError:
    try:
        message = json.loads(body).get("error", body.decode("utf-8", "replace"))
    except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
        message = body.decode("utf-8", "replace")
    return ServeClientError(status, message, retry_after)


class ServeClient:
    """Synchronous keep-alive client (one connection, not thread-safe)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- raw request -------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response; returns (status, headers, body).

        ``trace_id`` rides in an ``X-Trace-Id`` header; the server
        echoes it back (generated otherwise) on every response.

        Retries once on a stale keep-alive connection (the server may
        have closed it between requests), never on anything else.
        """
        headers = {"Content-Type": content_type} if body is not None else {}
        if trace_id is not None:
            headers["X-Trace-Id"] = trace_id
        for attempt in (0, 1):
            try:
                self._conn.request(method, path, body=body, headers=headers)
                resp = self._conn.getresponse()
                payload = resp.read()
                return (
                    resp.status,
                    {k.lower(): v for k, v in resp.getheaders()},
                    payload,
                )
            except (
                http.client.NotConnected,
                http.client.CannotSendRequest,
                http.client.BadStatusLine,
                ConnectionError,
                BrokenPipeError,
            ):
                self._conn.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _json(
        self,
        method: str,
        path: str,
        doc: Optional[dict] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        body = None if doc is None else json.dumps(doc).encode()
        status, headers, payload = self.request(
            method, path, body, trace_id=trace_id
        )
        if status != 200:
            raise _extract_error(status, payload, headers.get("retry-after"))
        return json.loads(payload)

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def debug_requests(self) -> dict:
        """The ``/debug/requests`` document (in-flight + recent)."""
        return self._json("GET", "/debug/requests")

    def debug_slow(self) -> dict:
        """The ``/debug/slow`` document (slowest-N requests)."""
        return self._json("GET", "/debug/slow")

    def metrics_text(self) -> str:
        status, _headers, payload = self.request("GET", "/metrics")
        if status != 200:
            raise _extract_error(status, payload)
        return payload.decode()

    def failures(self) -> List[Edge]:
        doc = self._json("GET", "/failures")
        return [(u, v) for u, v in doc["edges"]]

    def distance(
        self,
        s: int,
        t: int,
        edge: Edge,
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> float:
        doc = self.distance_ex(s, t, edge, trace_id=trace_id, debug=debug)
        return distance_from_json(doc["distance"])

    def distance_ex(
        self,
        s: int,
        t: int,
        edge: Edge,
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> dict:
        """Full ``/dist`` response document (with ``debug`` when asked)."""
        return self._json(
            "POST",
            "/dist?debug=1" if debug else "/dist",
            {"s": s, "t": t, "edge": [edge[0], edge[1]]},
            trace_id=trace_id,
        )

    def batch(
        self,
        edge: Edge,
        pairs: Sequence[Pair],
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> List[float]:
        doc = self.batch_ex(edge, pairs, trace_id=trace_id, debug=debug)
        return [distance_from_json(d) for d in doc["distances"]]

    def batch_ex(
        self,
        edge: Edge,
        pairs: Sequence[Pair],
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> dict:
        """Full ``/batch`` response document (with ``debug`` when asked)."""
        return self._json(
            "POST",
            "/batch?debug=1" if debug else "/batch",
            {
                "edge": [edge[0], edge[1]],
                "pairs": [[int(s), int(t)] for s, t in pairs],
            },
            trace_id=trace_id,
        )

    def batch_binary(
        self,
        edge: Edge,
        pairs: Sequence[Pair],
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> np.ndarray:
        distances, _headers = self.batch_binary_ex(
            edge, pairs, trace_id=trace_id, debug=debug
        )
        return distances

    def batch_binary_ex(
        self,
        edge: Edge,
        pairs: Sequence[Pair],
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> Tuple[np.ndarray, Dict[str, str]]:
        """Binary batch answer plus response headers.

        A 32-hex-char ``trace_id`` travels in the frame trailer (the
        strongest form — it survives proxies that strip headers); any
        other valid token falls back to the ``X-Trace-Id`` header.  With
        ``debug=True`` the stage decomposition comes back JSON-encoded
        in the ``x-sief-debug`` response header.
        """
        frame_trace = header_trace = None
        if trace_id is not None:
            try:
                frame_trace = trace_id if len(bytes.fromhex(trace_id)) == 16 else None
            except ValueError:
                frame_trace = None
            if frame_trace is None:
                header_trace = trace_id
        frame = encode_batch_request(edge, pairs, trace_id=frame_trace)
        status, headers, payload = self.request(
            "POST",
            "/batch.bin?debug=1" if debug else "/batch.bin",
            frame,
            content_type="application/octet-stream",
            trace_id=header_trace,
        )
        if status != 200:
            raise _extract_error(status, payload, headers.get("retry-after"))
        return decode_batch_response(payload), headers


class AsyncServeClient:
    """Asyncio keep-alive client (one connection, one task at a time)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        payload = body or b""
        trace_header = (
            f"X-Trace-Id: {trace_id}\r\n" if trace_id is not None else ""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{trace_header}"
            "\r\n"
        ).encode("latin-1")
        self._writer.write(head + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, data

    async def _json(self, method: str, path: str, doc: Optional[dict] = None) -> dict:
        body = None if doc is None else json.dumps(doc).encode()
        status, headers, payload = await self.request(method, path, body)
        if status != 200:
            raise _extract_error(status, payload, headers.get("retry-after"))
        return json.loads(payload)

    async def healthz(self) -> dict:
        return await self._json("GET", "/healthz")

    async def distance(self, s: int, t: int, edge: Edge) -> float:
        doc = await self._json(
            "POST", "/dist", {"s": s, "t": t, "edge": [edge[0], edge[1]]}
        )
        return distance_from_json(doc["distance"])

    async def batch(self, edge: Edge, pairs: Sequence[Pair]) -> List[float]:
        doc = await self._json(
            "POST",
            "/batch",
            {
                "edge": [edge[0], edge[1]],
                "pairs": [[int(s), int(t)] for s, t in pairs],
            },
        )
        return [distance_from_json(d) for d in doc["distances"]]

    async def batch_binary(self, edge: Edge, pairs: Sequence[Pair]) -> np.ndarray:
        frame = encode_batch_request(edge, pairs)
        status, headers, payload = await self.request(
            "POST", "/batch.bin", frame, content_type="application/octet-stream"
        )
        if status != 200:
            raise _extract_error(status, payload, headers.get("retry-after"))
        return decode_batch_response(payload)


def distances_equal(a: float, b: float) -> bool:
    """Equality that treats two infinities as equal (JSON round-trips)."""
    if math.isinf(a) and math.isinf(b):
        return True
    return a == b
