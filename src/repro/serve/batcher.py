"""Micro-batching queue: coalesce in-flight requests into ``batch_query``.

The measured engine batch path answers ~20x more queries per second than
the scalar loop (BENCH_query_throughput.json) — but only when someone
hands it batches.  A serving daemon gets its batches from concurrency:
every request (single pair or client-side batch) enqueues its pairs with
a future, and one flusher task drains the queue into as few
:meth:`~repro.core.query.SIEFQueryEngine.batch_query` calls as there are
distinct failed edges in the window.

Flush policy — whichever comes first:

* **size**: total queued pairs reached ``max_batch``;
* **deadline**: the oldest queued item has waited ``max_delay`` seconds;
* **drain**: :meth:`MicroBatcher.close` flushes whatever remains.

Backpressure is bounded and explicit: when accepting a request would
push the queue past ``queue_limit`` pairs, :meth:`submit` raises
:class:`LoadShedError` and the server answers 429 + ``Retry-After``
instead of letting latency collapse for everyone already queued.

Single-threaded by design — everything here runs on the server's event
loop, so no locks.  The engine call itself is synchronous CPU work; at
micro-batch sizes that is the point (amortization), and the event loop
resumes between flushes.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import contextmanager
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.obs.context import RequestContext, scope
from repro.obs.events import EventLog
from repro.obs.metrics import SIZE_EDGES, MetricsRegistry

Edge = Tuple[int, int]


class LoadShedError(Exception):
    """The queue is full; the caller should answer 429 + Retry-After."""

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"micro-batch queue full ({pending} pairs pending, "
            f"limit {limit})"
        )
        self.pending = pending
        self.limit = limit


@contextmanager
def _noop():
    yield


class _Item(NamedTuple):
    edge: Edge
    pairs: np.ndarray  # (k, 2) int64
    future: "asyncio.Future[np.ndarray]"
    enqueued: float
    ctx: Optional[RequestContext] = None


class MicroBatcher:
    """The coalescing queue in front of one query engine."""

    def __init__(
        self,
        engine,
        max_batch: int = 512,
        max_delay: float = 0.002,
        queue_limit: int = 8192,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
        events: Optional[EventLog] = None,
        tracer=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.queue_limit = queue_limit
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events
        self.tracer = tracer
        self._clock = clock
        self._items: List[_Item] = []
        self._pending_pairs = 0
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the flusher task on the running loop (idempotent)."""
        if self._task is None:
            self._wake = asyncio.Event()
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="sief-microbatcher"
            )

    async def close(self) -> None:
        """Stop accepting, flush everything queued, join the flusher."""
        self._closing = True
        if self._task is not None:
            assert self._wake is not None
            self._wake.set()
            await self._task
            self._task = None

    @property
    def pending_pairs(self) -> int:
        """Pairs currently queued (the load-shed watermark)."""
        return self._pending_pairs

    # -- intake ------------------------------------------------------------

    def submit(
        self,
        edge: Edge,
        pairs: np.ndarray,
        ctx: Optional[RequestContext] = None,
    ) -> "asyncio.Future[np.ndarray]":
        """Enqueue pairs for one failed edge; resolves to a float64 array.

        ``ctx``, when given, receives the request's share of the flush
        timing (``queue``/``batch``/``compute`` stages) and any page
        faults its flush triggers.

        Raises :class:`LoadShedError` when the queue is at capacity and
        ``RuntimeError`` after :meth:`close` (the server answers 503).
        """
        if self._closing or self._task is None:
            raise RuntimeError("micro-batcher is closed")
        k = len(pairs)
        if self._pending_pairs + k > self.queue_limit:
            self.registry.counter("serve.queue.shed").inc()
            raise LoadShedError(self._pending_pairs, self.queue_limit)
        future: "asyncio.Future[np.ndarray]" = (
            asyncio.get_running_loop().create_future()
        )
        self._items.append(_Item(edge, pairs, future, self._clock(), ctx))
        self._pending_pairs += k
        self.registry.gauge("serve.queue.depth").set(self._pending_pairs)
        assert self._wake is not None
        self._wake.set()
        return future

    # -- flusher -----------------------------------------------------------

    async def _run(self) -> None:
        assert self._wake is not None
        while True:
            while not self._items and not self._closing:
                self._wake.clear()
                await self._wake.wait()
            if not self._items:
                break  # closing and drained
            cause = await self._collect_window()
            self._flush(cause)

    async def _collect_window(self) -> str:
        """Wait until a flush trigger fires; returns the cause label."""
        assert self._wake is not None
        if self._closing:
            return "drain"
        deadline = self._items[0].enqueued + self.max_delay
        while self._pending_pairs < self.max_batch:
            remaining = deadline - self._clock()
            if remaining <= 0:
                return "deadline"
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), remaining)
            except asyncio.TimeoutError:
                return "deadline"
            if self._closing:
                return "drain"
        return "size"

    def _flush(self, cause: str) -> None:
        items, self._items = self._items, []
        total = self._pending_pairs
        self._pending_pairs = 0
        reg = self.registry
        reg.gauge("serve.queue.depth").set(0)
        reg.counter("serve.batch.flushes").inc()
        reg.counter(f"serve.batch.flush_{cause}").inc()
        reg.histogram("serve.batch.size", SIZE_EDGES).observe(total)
        reg.histogram("serve.batch.items", SIZE_EDGES).observe(len(items))

        groups: Dict[Edge, List[_Item]] = {}
        for item in items:
            groups.setdefault(item.edge, []).append(item)
        reg.histogram("serve.batch.groups", SIZE_EDGES).observe(len(groups))

        # Everything a request spent waiting before this flush started is
        # its "queue" stage; time inside the flush before *its* group's
        # engine call is "batch"; the engine call itself is "compute".
        # Both endpoints of each duration come from the batcher's clock,
        # so the stages stay disjoint and well-defined.
        flush_start = self._clock()
        for it in items:
            if it.ctx is not None:
                it.ctx.add_stage("queue", flush_start - it.enqueued)
                it.ctx.meta["flush_cause"] = cause
                it.ctx.meta["flush_pairs"] = total
                it.ctx.meta["flush_groups"] = len(groups)

        span = self.tracer.span if self.tracer is not None else None
        t0 = time.perf_counter()
        with span("serve.batch.flush") if span else _noop():
            for edge, group in groups.items():
                live = [it for it in group if not it.future.cancelled()]
                if not live:
                    continue
                stacked = (
                    live[0].pairs
                    if len(live) == 1
                    else np.concatenate([it.pairs for it in live])
                )
                ctxs = tuple(
                    it.ctx for it in live if it.ctx is not None
                )
                group_start = self._clock()
                for ctx in ctxs:
                    ctx.add_stage("batch", group_start - flush_start)
                try:
                    with span("serve.batch.group") if span else _noop():
                        if ctxs:
                            with scope(*ctxs):
                                out = self.engine.batch_query(edge, stacked)
                        else:
                            out = self.engine.batch_query(edge, stacked)
                except Exception as exc:  # noqa: BLE001 - routed to callers
                    for ctx in ctxs:
                        ctx.add_stage("compute", self._clock() - group_start)
                    for it in live:
                        if not it.future.cancelled():
                            it.future.set_exception(exc)
                    continue
                for ctx in ctxs:
                    ctx.add_stage("compute", self._clock() - group_start)
                pos = 0
                for it in live:
                    k = len(it.pairs)
                    if not it.future.cancelled():
                        it.future.set_result(out[pos : pos + k])
                    pos += k
        elapsed = time.perf_counter() - t0
        reg.histogram("serve.batch.flush_seconds").observe(elapsed)

        if self.events is not None:
            trace_ids = [it.ctx.trace_id for it in items if it.ctx is not None]
            if trace_ids:
                self.events.record(
                    {
                        "event": "batch.flush",
                        "cause": cause,
                        "pairs": total,
                        "items": len(items),
                        "groups": len(groups),
                        "seconds": round(elapsed, 6),
                        "pages_faulted": sum(
                            it.ctx.pages_faulted
                            for it in items
                            if it.ctx is not None
                        ),
                        "trace_ids": trace_ids,
                    },
                    sampled=any(
                        self.events.sampled(tid) for tid in trace_ids
                    ),
                )
