"""``repro.serve`` — the asyncio distance-query serving layer.

A long-lived daemon (``sief serve``) that loads a frozen
:class:`~repro.core.index.SIEFIndex` (memory-mapped npz, so N worker
processes share one physical copy), answers failure distance queries
over HTTP/JSON plus a length-prefixed binary batch endpoint, and
coalesces concurrent in-flight requests into the vectorized
:meth:`~repro.core.query.SIEFQueryEngine.batch_query` path through a
micro-batching queue.  See ``docs/serving.md`` for the protocol spec and
the operational runbook.
"""

from repro.serve.batcher import LoadShedError, MicroBatcher
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.inprocess import InProcessServer
from repro.serve.protocol import (
    BINARY_MAGIC,
    TRACE_TRAILER_BYTES,
    ProtocolError,
    decode_batch_request,
    decode_batch_response,
    encode_batch_request,
    encode_batch_response,
)
from repro.serve.server import ServeConfig, SIEFServer

__all__ = [
    "AsyncServeClient",
    "BINARY_MAGIC",
    "TRACE_TRAILER_BYTES",
    "InProcessServer",
    "LoadShedError",
    "MicroBatcher",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "SIEFServer",
    "decode_batch_request",
    "decode_batch_response",
    "encode_batch_request",
    "encode_batch_response",
]
