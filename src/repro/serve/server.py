"""The asyncio distance-query server.

One process, one event loop, one :class:`~repro.serve.batcher.MicroBatcher`
in front of one :class:`~repro.core.query.SIEFQueryEngine`.  HTTP/1.1 is
parsed by hand on top of ``asyncio.start_server`` — the container ships
no third-party HTTP stack, and the five routes here need less than a
framework brings:

=======================  ===================================================
``GET  /healthz``        liveness + index shape (cases, vertices, draining)
``GET  /metrics``        Prometheus text exposition of the server registry
``GET  /failures``       the indexed failure cases (canonical edge list)
``GET  /debug/requests`` tracez-style view: in-flight + recent requests
``GET  /debug/slow``     the slowest-N requests seen by this process
``POST /dist``           one ``{s, t, edge}`` query, JSON in/out
``POST /batch``          ``{edge, pairs}`` JSON batch
``POST /batch.bin``      length-prefixed binary batch (:mod:`repro.serve.protocol`)
=======================  ===================================================

Every query — single or batch, JSON or binary — goes through the
micro-batcher, so concurrency turns into engine-side batch size.

Every request carries a :class:`~repro.obs.context.RequestContext`: the
trace id comes from a ``traceparent`` header, an ``X-Trace-Id`` header,
or (for ``/batch.bin``, winning over both) the optional frame trailer —
generated when absent — and is echoed back in an ``X-Trace-Id`` response
header.  The context accumulates a stage decomposition (``parse``,
``queue``, ``batch``, ``compute``, ``serialize``) plus the page faults
its flush triggered; ``?debug=1`` on ``/dist`` and ``/batch`` returns it
inline (a ``debug`` field in the JSON; an ``X-SIEF-Debug`` header for
the fixed-format binary response), and the same decomposition feeds the
``/debug/*`` rings and the sampled :class:`~repro.obs.events.EventLog`.
None of this changes answer bytes: with ``?debug=1`` absent, response
bodies are bit-identical to an untraced server.

Failure mapping is total: malformed input is 400, an unknown failure
case is 404, an oversized body is 413, a full queue is 429 with
``Retry-After``, a handler overrunning ``request_timeout`` is 504, drain
is 503, and anything unexpected is a 500 — the connection is answered
and the server keeps serving.  ``ServeConfig.fault_hook`` is the test
seam that injects slow/raising handlers to prove exactly that.
"""

from __future__ import annotations

import asyncio
import heapq
import inspect
import json
import math
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Awaitable,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.query import SIEFQueryEngine
from repro.exceptions import FailureCaseNotIndexed
from repro.obs.context import (
    RequestContext,
    parse_traceparent,
    valid_trace_id,
)
from repro.obs.events import EventLog, peak_rss_bytes
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import REQUEST_LATENCY_EDGES, MetricsRegistry
from repro.serve.batcher import LoadShedError, MicroBatcher
from repro.serve.protocol import (
    ProtocolError,
    decode_batch_request,
    distance_to_json,
    distances_to_json,
    encode_batch_response,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

FaultHook = Callable[[str], Union[None, Awaitable[None]]]
AccessLog = Callable[[dict], None]


@dataclass
class ServeConfig:
    """Everything tunable about one server instance.

    The micro-batching knobs (``max_batch``, ``max_delay``,
    ``queue_limit``) are the latency/throughput trade — see
    ``docs/serving.md`` for how to set them.  ``fault_hook`` is called
    with the request path before dispatch (may be async, may sleep, may
    raise) and exists purely for fault-injection tests.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 512
    max_delay: float = 0.002
    queue_limit: int = 8192
    request_timeout: float = 5.0
    max_body: int = 8 * 1024 * 1024
    max_header: int = 16 * 1024
    drain_timeout: float = 10.0
    fault_hook: Optional[FaultHook] = None
    access_log: Optional[AccessLog] = None
    registry: Optional[MetricsRegistry] = field(default=None, repr=False)
    events: Optional[EventLog] = field(default=None, repr=False)
    tracer: object = field(default=None, repr=False)
    debug_recent: int = 64
    debug_slow: int = 32
    slow_seconds: Optional[float] = None


class _Conn:
    """Per-connection state the drain path needs to see."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False


class SIEFServer:
    """Serve one query engine over HTTP; see the module docstring."""

    def __init__(
        self, engine: SIEFQueryEngine, config: Optional[ServeConfig] = None
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.registry = (
            self.config.registry
            if self.config.registry is not None
            else MetricsRegistry()
        )
        self.events = self.config.events
        self.slow_seconds = (
            self.config.slow_seconds
            if self.config.slow_seconds is not None
            else (self.events.slow_seconds if self.events is not None else 0.5)
        )
        self.batcher = MicroBatcher(
            engine,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay,
            queue_limit=self.config.queue_limit,
            registry=self.registry,
            events=self.events,
            tracer=self.config.tracer,
        )
        # tracez-style request surfaces: in-flight contexts, a ring of
        # recently finished requests, and a min-heap keeping the slowest N.
        self._inflight: Dict[int, RequestContext] = {}
        self._recent: Deque[dict] = deque(maxlen=self.config.debug_recent)
        self._slow: List[Tuple[float, int, dict]] = []
        self._seq = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._conns: Set[_Conn] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._draining = False
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, sock=None) -> None:
        """Bind (or adopt ``sock``), start the batcher, begin accepting.

        Passing a pre-bound listening socket is how ``sief serve
        --workers N`` shares one port across forked workers: the parent
        binds once, every child adopts the same socket and the kernel
        load-balances accepts.
        """
        self.batcher.start()
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock, limit=self.config.max_header
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.config.host,
                port=self.config.port,
                limit=self.config.max_header,
            )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self.registry.gauge("serve.up").set(1)

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then drain gracefully."""
        await stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, stop batcher.

        Idle keep-alive connections are closed immediately; connections
        mid-request run to completion (bounded by ``drain_timeout``) and
        their responses carry ``Connection: close``.  The batcher is
        closed last so every accepted request still gets an answer.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._conns):
            if not conn.busy:
                conn.writer.close()
        if self._conn_tasks:
            await asyncio.wait(
                self._conn_tasks, timeout=self.config.drain_timeout
            )
        for task in list(self._conn_tasks):
            task.cancel()
        await self.batcher.close()
        self.registry.gauge("serve.up").set(0)

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection loop ---------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer)
        self._conns.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.registry.gauge("serve.connections").inc()
        try:
            await self._connection_loop(reader, writer, conn)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._conns.discard(conn)
            if task is not None:
                self._conn_tasks.discard(task)
            self.registry.gauge("serve.connections").dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: _Conn,
    ) -> None:
        while not self._draining:
            try:
                request = await self._read_request(reader)
            except ValueError as exc:
                # Oversized/garbled request line or headers.  Answer 400
                # and close; the stream is not re-synchronizable.
                await self._send(
                    writer, 400, _json_error(str(exc)), keep_alive=False
                )
                return
            if request is None:
                return  # clean EOF between requests
            method, path, headers, body = request
            conn.busy = True
            try:
                status, payload, content_type, extra = await self._dispatch(
                    method, path, headers, body
                )
            finally:
                conn.busy = False
            keep_alive = (
                not self._draining
                and headers.get("connection", "").lower() != "close"
                and status not in (400, 413)
            )
            await self._send(
                writer,
                status,
                payload,
                content_type=content_type,
                extra=extra,
                keep_alive=keep_alive,
            )
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One request off the wire, or ``None`` on clean EOF.

        Raises ``ValueError`` on anything malformed at the framing layer
        (bad request line, oversized headers, bad Content-Length).
        """
        try:
            line = await reader.readline()
        except asyncio.LimitOverrunError:
            raise ValueError("request line too long") from None
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split(None, 2)
        except (UnicodeDecodeError, ValueError):
            raise ValueError("malformed request line") from None
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                hline = await reader.readline()
            except asyncio.LimitOverrunError:
                raise ValueError("header line too long") from None
            if not hline:
                raise asyncio.IncompleteReadError(b"", None)
            if hline in (b"\r\n", b"\n"):
                break
            header_bytes += len(hline)
            if header_bytes > self.config.max_header:
                raise ValueError("headers too large")
            try:
                name, _, value = hline.decode("latin-1").partition(":")
            except UnicodeDecodeError:
                raise ValueError("malformed header") from None
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_str = headers.get("content-length")
        if length_str is not None:
            try:
                length = int(length_str)
            except ValueError:
                raise ValueError(
                    f"bad Content-Length {length_str!r}"
                ) from None
            if length < 0:
                raise ValueError("negative Content-Length")
            if length > self.config.max_body:
                # Signal 413 without draining the oversized body; the
                # dispatch layer maps this sentinel, connection closes.
                return method, path, headers, _TOO_LARGE
            if length:
                body = await reader.readexactly(length)
        return method, path, headers, body

    # -- dispatch ----------------------------------------------------------

    def _make_context(
        self, method: str, path: str, headers: Dict[str, str]
    ) -> RequestContext:
        """A context with the client's trace id, or a generated one.

        ``traceparent`` (W3C) is preferred over the looser ``X-Trace-Id``
        token; the binary frame trailer, when present, overrides both
        later in :meth:`_batch_binary`.  A malformed header never fails
        the request — the id is simply generated.
        """
        trace_id = parse_traceparent(headers.get("traceparent"))
        if trace_id is None:
            candidate = headers.get("x-trace-id")
            if valid_trace_id(candidate):
                trace_id = candidate
        ctx = RequestContext(trace_id)
        ctx.meta["method"] = method
        ctx.meta["path"] = path
        return ctx

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        reg = self.registry
        reg.counter("serve.requests").inc()
        reg.gauge("serve.requests_inflight").inc()
        path, _, query = path.partition("?")
        debug = "debug=1" in query.split("&") if query else False
        ctx = self._make_context(method, path, headers)
        self._inflight[id(ctx)] = ctx
        t0 = time.perf_counter()
        status = 500
        payload: bytes = b""
        content_type = "application/json"
        extra: Dict[str, str] = {}
        try:
            if body is _TOO_LARGE:
                status, payload = 413, _json_error("request body too large")
            else:
                status, payload, content_type, extra = await asyncio.wait_for(
                    self._route(method, path, body, ctx, debug),
                    timeout=self.config.request_timeout,
                )
        except asyncio.TimeoutError:
            status, payload = 504, _json_error(
                f"request exceeded {self.config.request_timeout}s"
            )
            reg.counter("serve.timeouts").inc()
        except ProtocolError as exc:
            status, payload = 400, _json_error(str(exc))
        except FailureCaseNotIndexed as exc:
            status, payload = 404, _json_error(str(exc))
        except LoadShedError as exc:
            status, payload = 429, _json_error(str(exc))
            extra = {"Retry-After": _retry_after(self.config.max_delay)}
        except (ValueError, IndexError, KeyError) as exc:
            # The engine's own validation (out-of-range vertex ids etc.)
            # is a client error, same as a malformed frame.
            status, payload = 400, _json_error(str(exc))
        except RuntimeError as exc:
            # The batcher refuses submissions while draining.
            status, payload = 503, _json_error(str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - the 500 guarantee
            status, payload = 500, _json_error(
                f"{type(exc).__name__}: {exc}"
            )
            reg.counter("serve.errors").inc()
        finally:
            seconds = time.perf_counter() - t0
            self._inflight.pop(id(ctx), None)
            reg.gauge("serve.requests_inflight").dec()
            reg.counter(f"serve.http.{status}").inc()
            reg.histogram(
                "serve.request.seconds", REQUEST_LATENCY_EDGES
            ).observe(seconds)
            for stage, spent in ctx.stages.items():
                reg.histogram(
                    f"serve.stage.{stage}_seconds", REQUEST_LATENCY_EDGES
                ).observe(spent)
            if ctx.pages_faulted:
                reg.counter("serve.pages_faulted").inc(ctx.pages_faulted)
            extra["X-Trace-Id"] = ctx.trace_id
            self._finish_request(
                ctx, method, path, status, seconds,
                bytes_in=0 if body is _TOO_LARGE else len(body),
                bytes_out=len(payload),
            )
        return status, payload, content_type, extra

    def _finish_request(
        self,
        ctx: RequestContext,
        method: str,
        path: str,
        status: int,
        seconds: float,
        bytes_in: int,
        bytes_out: int,
    ) -> None:
        """Feed the debug rings, the event log, and the access log."""
        entry = {
            "trace_id": ctx.trace_id,
            "method": method,
            "path": path,
            "status": status,
            "seconds": round(seconds, 6),
            "stages": {k: round(v, 6) for k, v in ctx.stages.items()},
            "pages_faulted": ctx.pages_faulted,
        }
        self._recent.append(entry)
        self._seq += 1
        item = (seconds, self._seq, entry)
        if len(self._slow) < self.config.debug_slow:
            heapq.heappush(self._slow, item)
        else:
            heapq.heappushpop(self._slow, item)
        ev = self.events
        if ev is not None:
            ev.record(
                {
                    "event": "request",
                    **entry,
                    "bytes_in": bytes_in,
                    "bytes_out": bytes_out,
                },
                sampled=ev.sampled(ctx.trace_id),
                slow=seconds >= self.slow_seconds,
                error=status >= 500,
            )
        log = self.config.access_log
        if log is not None:
            log(
                {
                    "method": method,
                    "path": path,
                    "status": status,
                    "seconds": round(seconds, 6),
                    "bytes_in": bytes_in,
                    "bytes_out": bytes_out,
                    "trace_id": ctx.trace_id,
                }
            )

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        ctx: RequestContext,
        debug: bool = False,
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        hook = self.config.fault_hook
        if hook is not None:
            result = hook(path)
            if inspect.isawaitable(result):
                await result
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            self._refresh_gauges()
            return (
                200,
                to_prometheus_text(self.registry).encode(),
                "text/plain; version=0.0.4",
                {},
            )
        if path == "/failures":
            if method != "GET":
                return _method_not_allowed("GET")
            return self._failures()
        if path == "/debug/requests":
            if method != "GET":
                return _method_not_allowed("GET")
            return self._debug_requests()
        if path == "/debug/slow":
            if method != "GET":
                return _method_not_allowed("GET")
            return self._debug_slow()
        if path == "/dist":
            if method != "POST":
                return _method_not_allowed("POST")
            return await self._dist(body, ctx, debug)
        if path == "/batch":
            if method != "POST":
                return _method_not_allowed("POST")
            return await self._batch_json(body, ctx, debug)
        if path == "/batch.bin":
            if method != "POST":
                return _method_not_allowed("POST")
            return await self._batch_binary(body, ctx, debug)
        return 404, _json_error(f"no route for {path}"), "application/json", {}

    # -- handlers ----------------------------------------------------------

    def _healthz(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        index = self.engine.index
        doc = {
            "status": "draining" if self._draining else "ok",
            "vertices": index.labeling.num_vertices,
            "cases": index.num_cases,
            "queue_depth": self.batcher.pending_pairs,
        }
        return 200, json.dumps(doc).encode(), "application/json", {}

    def _failures(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        edges = sorted(self.engine.index.supplements)
        doc = {"count": len(edges), "edges": [[u, v] for u, v in edges]}
        return 200, json.dumps(doc).encode(), "application/json", {}

    def _refresh_gauges(self) -> None:
        """Bring scrape-time gauges up to date before exposition."""
        reg = self.registry
        rss = peak_rss_bytes()
        if rss is not None:
            reg.gauge("process.peak_rss_bytes").set(rss)
        if self.events is not None:
            for key, value in self.events.stats().items():
                reg.gauge(f"serve.events.{key}").set(value)

    def _context_entry(self, ctx: RequestContext) -> dict:
        return {
            "trace_id": ctx.trace_id,
            "method": ctx.meta.get("method"),
            "path": ctx.meta.get("path"),
            "seconds": round(ctx.elapsed(), 6),
            "stages": {k: round(v, 6) for k, v in ctx.stages.items()},
            "pages_faulted": ctx.pages_faulted,
        }

    def _debug_requests(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        doc = {
            "inflight": [
                self._context_entry(c) for c in self._inflight.values()
            ],
            "recent": list(self._recent),
        }
        return 200, json.dumps(doc).encode(), "application/json", {}

    def _debug_slow(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        slowest = [
            entry
            for _, _, entry in sorted(self._slow, reverse=True)
        ]
        doc = {"slow_seconds": self.slow_seconds, "slowest": slowest}
        return 200, json.dumps(doc).encode(), "application/json", {}

    async def _dist(
        self, body: bytes, ctx: RequestContext, debug: bool = False
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        with ctx.stage("parse"):
            doc = _parse_json(body)
            s = _require_int(doc, "s")
            t = _require_int(doc, "t")
            edge = _require_edge(doc)
            pairs = np.array([[s, t]], dtype=np.int64)
        out = await self.batcher.submit(edge, pairs, ctx)
        d = float(out[0])
        resp = {
            "s": s,
            "t": t,
            "edge": [edge[0], edge[1]],
            "distance": distance_to_json(d),
            "connected": not math.isinf(d),
        }
        with ctx.stage("serialize"):
            payload = json.dumps(resp).encode()
        if debug:
            resp["debug"] = ctx.decomposition()
            payload = json.dumps(resp).encode()
        return 200, payload, "application/json", {}

    async def _batch_json(
        self, body: bytes, ctx: RequestContext, debug: bool = False
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        with ctx.stage("parse"):
            doc = _parse_json(body)
            edge = _require_edge(doc)
            raw_pairs = doc.get("pairs")
            if not isinstance(raw_pairs, list):
                raise ProtocolError('field "pairs" must be a list of [s, t]')
            try:
                pairs = np.asarray(raw_pairs, dtype=np.int64).reshape(-1, 2)
            except (TypeError, ValueError):
                raise ProtocolError(
                    '"pairs" entries must be [s, t] integer pairs'
                ) from None
        distances = await self._query(edge, pairs, ctx)
        resp = {
            "edge": [edge[0], edge[1]],
            "distances": distances_to_json(distances),
        }
        with ctx.stage("serialize"):
            payload = json.dumps(resp).encode()
        if debug:
            resp["debug"] = ctx.decomposition()
            payload = json.dumps(resp).encode()
        return 200, payload, "application/json", {}

    async def _batch_binary(
        self, body: bytes, ctx: RequestContext, debug: bool = False
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        with ctx.stage("parse"):
            edge, pairs, frame_trace = decode_batch_request(body)
            if frame_trace is not None:
                # The id travelling inside the frame is the client's
                # strongest statement of intent; it beats any header.
                ctx.trace_id = frame_trace
        distances = await self._query(edge, pairs.astype(np.int64), ctx)
        with ctx.stage("serialize"):
            payload = encode_batch_response(distances)
        extra: Dict[str, str] = {}
        if debug:
            # The binary body layout is fixed, so the decomposition rides
            # in a header — the answer bytes stay bit-identical.
            extra["X-SIEF-Debug"] = json.dumps(ctx.decomposition())
        return 200, payload, "application/octet-stream", extra

    async def _query(
        self, edge, pairs: np.ndarray, ctx: Optional[RequestContext] = None
    ) -> np.ndarray:
        if len(pairs) == 0:
            return np.empty(0, dtype=np.float64)
        return await self.batcher.submit(edge, pairs, ctx)

    # -- response writing --------------------------------------------------

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str = "application/json",
        extra: Optional[Dict[str, str]] = None,
        keep_alive: bool = True,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()


_TOO_LARGE = b"\x00__body_too_large__"


def _json_error(message: str) -> bytes:
    return json.dumps({"error": message}).encode()


def _method_not_allowed(allow: str) -> Tuple[int, bytes, str, Dict[str, str]]:
    return (
        405,
        _json_error(f"method not allowed; use {allow}"),
        "application/json",
        {"Allow": allow},
    )


def _retry_after(max_delay: float) -> str:
    return str(max(1, int(math.ceil(max_delay))))


def _parse_json(body: bytes) -> dict:
    try:
        doc = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON body: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("JSON body must be an object")
    return doc


def _require_int(doc: dict, key: str) -> int:
    value = doc.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f'field "{key}" must be an integer')
    return value


def _require_edge(doc: dict) -> Tuple[int, int]:
    edge = doc.get("edge")
    if (
        not isinstance(edge, (list, tuple))
        or len(edge) != 2
        or any(isinstance(x, bool) or not isinstance(x, int) for x in edge)
    ):
        raise ProtocolError('field "edge" must be [u, v] with integers')
    return int(edge[0]), int(edge[1])


async def run_server(
    engine: SIEFQueryEngine,
    config: Optional[ServeConfig] = None,
    ready: Optional[Callable[[str, int], None]] = None,
    sock=None,
) -> None:
    """Run one server until SIGTERM/SIGINT, then drain — the daemon body.

    ``ready(host, port)`` fires once the socket is bound (the CLI prints
    the "serving on" line from it; tests parse that line).
    """
    server = SIEFServer(engine, config)
    await server.start(sock=sock)
    if ready is not None:
        assert server.host is not None and server.port is not None
        ready(server.host, server.port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # non-Unix / nested loop
            pass
    await server.serve_until(stop)
