"""``sief top`` — a live terminal dashboard over a server's ``/metrics``.

Pure pull: poll the Prometheus text endpoint on an interval, parse it
with :func:`~repro.obs.export.parse_prometheus_text`, and derive rates
from the difference between consecutive scrapes — the server keeps no
extra state for this, and anything that can read ``/metrics`` (curl, a
real Prometheus) sees the same numbers.

Latency quantiles are *windowed*: p50/p99 come from the bucket-count
delta between two scrapes, not the lifetime histogram, so the display
answers "how slow is the service right now" rather than averaging over
everything since boot.  Same for qps, batch size, shed and paging hit
rates.

Rendering is deliberately dumb terminal text — an ANSI home-and-clear
per frame, or plain append-only frames with ``--plain`` (usable in a
log file or a test).  No curses dependency.
"""

from __future__ import annotations

import math
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.obs.export import parse_prometheus_text, quantile_from_buckets

_CLEAR = "\x1b[H\x1b[2J"


def _histogram_window(cur: Optional[dict], prev: Optional[dict]) -> Optional[dict]:
    """The histogram of observations between two scrapes (cur - prev)."""
    if cur is None:
        return None
    if prev is None or prev["edges"] != cur["edges"]:
        return cur
    return {
        "edges": cur["edges"],
        "counts": [c - p for c, p in zip(cur["counts"], prev["counts"])],
        "sum": cur["sum"] - prev["sum"],
        "count": cur["count"] - prev["count"],
    }


def _rate(cur: dict, prev: dict, name: str, dt: float) -> float:
    if dt <= 0:
        return 0.0
    return (cur["counters"].get(name, 0.0) - prev["counters"].get(name, 0.0)) / dt


def _fmt_seconds(value: float) -> str:
    if math.isnan(value):
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _ratio(hits: float, misses: float) -> str:
    total = hits + misses
    if total <= 0:
        return "-"
    return f"{hits / total * 100:.1f}%"


def render_frame(cur: dict, prev: dict, dt: float) -> str:
    """One dashboard frame from two consecutive parsed scrapes."""
    counters, gauges = cur["counters"], cur["gauges"]
    qps = _rate(cur, prev, "serve_requests", dt)
    shed = _rate(cur, prev, "serve_queue_shed", dt)
    errors = _rate(cur, prev, "serve_errors", dt)
    window = _histogram_window(
        cur["histograms"].get("serve_request_seconds"),
        prev["histograms"].get("serve_request_seconds"),
    )
    if window is not None and window["count"] > 0:
        p50 = quantile_from_buckets(window, 0.50)
        p99 = quantile_from_buckets(window, 0.99)
    else:
        p50 = p99 = math.nan
    batch = _histogram_window(
        cur["histograms"].get("serve_batch_size"),
        prev["histograms"].get("serve_batch_size"),
    )
    mean_batch = (
        batch["sum"] / batch["count"]
        if batch is not None and batch["count"] > 0
        else math.nan
    )
    hits = _rate(cur, prev, "sief_lazy_cache_hits", dt)
    misses = _rate(cur, prev, "sief_lazy_cache_misses", dt)

    lines: List[str] = []
    lines.append(
        f"qps {qps:10.1f}   p50 {_fmt_seconds(p50):>8}   "
        f"p99 {_fmt_seconds(p99):>8}   "
        f"err/s {errors:8.2f}"
    )
    lines.append(
        f"batch {_fmt_nan(mean_batch):>8}   "
        f"queue {gauges.get('serve_queue_depth', 0):8.0f}   "
        f"inflight {gauges.get('serve_requests_inflight', 0):5.0f}   "
        f"shed/s {shed:7.2f}"
    )
    lines.append(
        f"conns {gauges.get('serve_connections', 0):8.0f}   "
        f"paging hit {_ratio(hits, misses):>7}   "
        f"resident {gauges.get('sief_lazy_cache_resident', 0):6.0f}   "
        f"rss {gauges.get('process_peak_rss_bytes', 0) / 1e6:7.0f}MB"
    )
    emitted = counters.get("serve_events_emitted", gauges.get("serve_events_emitted"))
    if emitted is not None:
        lines.append(
            f"events {gauges.get('serve_events_emitted', 0):7.0f}   "
            f"sampled-out {gauges.get('serve_events_sampled_out', 0):6.0f}   "
            f"dropped {gauges.get('serve_events_dropped', 0):5.0f}   "
            f"slow {gauges.get('serve_events_slow_events', 0):5.0f}"
        )
    lines.append(
        f"requests total {counters.get('serve_requests', 0):.0f}   "
        f"up {gauges.get('serve_up', 0):.0f}"
    )
    return "\n".join(lines)


def _fmt_nan(value: float) -> str:
    return "-" if math.isnan(value) else f"{value:.1f}"


def run_top(
    fetch: Callable[[], str],
    interval: float = 2.0,
    count: Optional[int] = None,
    plain: bool = False,
    out=None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """Poll ``fetch()`` (the /metrics text) and render frames to ``out``.

    ``count`` bounds the number of frames (None = until interrupted) —
    tests drive this with an injected fetch/clock and ``count=2``.
    Returns a process exit code.
    """
    if out is None:
        out = sys.stdout
    prev: Optional[dict] = None
    prev_t = clock()
    frames = 0
    try:
        while count is None or frames < count:
            if frames:
                sleep(interval)
            try:
                text = fetch()
            except (OSError, ConnectionError) as exc:
                print(f"sief top: scrape failed: {exc}", file=sys.stderr)
                return 1
            now = clock()
            cur = parse_prometheus_text(text)
            frame = render_frame(
                cur, prev if prev is not None else cur, max(now - prev_t, 1e-9)
            )
            if not plain:
                out.write(_CLEAR)
            out.write(frame + "\n")
            if plain:
                out.write("---\n")
            out.flush()
            prev, prev_t = cur, now
            frames += 1
    except KeyboardInterrupt:
        pass
    return 0
