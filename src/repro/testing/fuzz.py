"""The differential fuzz loop: generators × orderings × engines × oracles.

One fuzz *round* draws a random graph from a generator family, derives
its weighted and directed siblings, builds every applicable engine, and
compares each registered adapter (:data:`repro.testing.adapters.ADAPTERS`)
against its brute-force oracle:

* on small graphs, **every** edge failure and **every** (s, t) pair is
  checked exhaustively — the regime where Theorems 1–3 are fully
  enumerable;
* on larger graphs the harness falls back to stratified samples that
  always include the highest-degree edge (the failure most likely to
  produce large affected sets) plus uniform picks.

Everything is seeded: round ``i`` of ``fuzz(seed=s)`` always generates
the same graphs, failures and pairs, so a counterexample's provenance
(seed, round, generator) reproduces the raw finding and the shrunk
corpus file reproduces the minimal one.

Graph self-loops and parallel edges are rejected by :class:`Graph`
itself, so the adversarial generators lean on the other degenerate
shapes: disconnected multi-component unions, isolated vertices, trees
(every edge a bridge), and star-fringed tails.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.graph import generators
from repro.graph.graph import Graph
from repro.obs import hooks as _obs_hooks
from repro.testing.adapters import (
    ADAPTERS,
    ORDERING_NAMES,
    WorldContext,
    derive_directed_arcs,
    derive_weighted_edges,
)
from repro.testing.cases import Counterexample
from repro.testing.corpus import save_counterexample
from repro.testing.shrink import shrink

Pair = Tuple[int, int]

EXHAUSTIVE_EDGE_LIMIT = 40
"""Check every edge failure when the graph has at most this many edges."""

EXHAUSTIVE_PAIR_LIMIT = 12
"""Check every (s, t) pair when the graph has at most this many vertices."""

SAMPLED_FAILURES = 20
SAMPLED_PAIRS = 60


# ---------------------------------------------------------------------------
# Graph generator registry
# ---------------------------------------------------------------------------


def _seed(rng: random.Random) -> int:
    return rng.randrange(2**31)


def _gen_er(rng: random.Random) -> Graph:
    n = rng.randint(8, 20)
    m = rng.randint(n - 1, min(2 * n, n * (n - 1) // 2))
    return generators.erdos_renyi_gnm(n, m, seed=_seed(rng))


def _gen_ba(rng: random.Random) -> Graph:
    n = rng.randint(8, 20)
    return generators.barabasi_albert(n, rng.randint(1, 3), seed=_seed(rng))


def _gen_ws(rng: random.Random) -> Graph:
    n = rng.randint(8, 20)
    return generators.watts_strogatz(
        n, k=rng.choice((2, 4)), beta=rng.random(), seed=_seed(rng)
    )


def _gen_powerlaw(rng: random.Random) -> Graph:
    n = rng.randint(8, 20)
    return generators.powerlaw_cluster(
        n, rng.randint(1, 3), p=rng.random(), seed=_seed(rng)
    )


def _gen_community(rng: random.Random) -> Graph:
    n = rng.randint(9, 18)
    return generators.planted_partition(
        n, communities=rng.randint(2, 3), p_in=0.7, p_out=0.1, seed=_seed(rng)
    )


def _gen_grid(rng: random.Random) -> Graph:
    return generators.grid_graph(rng.randint(2, 4), rng.randint(3, 5))


def _gen_tree(rng: random.Random) -> Graph:
    return generators.random_tree(rng.randint(6, 18), seed=_seed(rng))


def _gen_geometric(rng: random.Random) -> Graph:
    return generators.random_geometric(
        rng.randint(10, 20), radius=0.35, seed=_seed(rng)
    )


def _gen_disconnected(rng: random.Random) -> Graph:
    """Adversarial: multi-component disjoint union."""
    parts = []
    for _ in range(rng.randint(2, 3)):
        n = rng.randint(4, 8)
        m = rng.randint(3, min(9, n * (n - 1) // 2))
        parts.append(generators.erdos_renyi_gnm(n, m, seed=_seed(rng)))
    return generators.compose_disjoint(parts)


def _gen_tailed(rng: random.Random) -> Graph:
    """Adversarial: dense core with a star-heavy degree-1 fringe."""
    core = generators.erdos_renyi_gnm(rng.randint(6, 10), rng.randint(8, 14), seed=_seed(rng))
    return generators.attach_tail(core, extra=rng.randint(2, 6), seed=_seed(rng))


def _gen_isolated(rng: random.Random) -> Graph:
    """Adversarial: random graph plus unreachable isolated vertices."""
    n = rng.randint(6, 12)
    # Clamp after drawing so the rng stream (and thus every historical
    # corpus seed) is unchanged; n=6 can otherwise draw m=16 > C(6,2).
    m = min(rng.randint(6, 16), n * (n - 1) // 2)
    base = generators.erdos_renyi_gnm(n, m, seed=_seed(rng))
    extra = rng.randint(1, 4)
    g = Graph(base.num_vertices + extra)
    for u, v in base.edges():
        g.add_edge(u, v)
    return g


GENERATORS: Dict[str, Callable[[random.Random], Graph]] = {
    "er": _gen_er,
    "ba": _gen_ba,
    "ws": _gen_ws,
    "powerlaw": _gen_powerlaw,
    "community": _gen_community,
    "grid": _gen_grid,
    "tree": _gen_tree,
    "geometric": _gen_geometric,
    "disconnected": _gen_disconnected,
    "tailed": _gen_tailed,
    "isolated": _gen_isolated,
}
"""Registry of fuzzable graph families (classic + adversarial shapes)."""


# ---------------------------------------------------------------------------
# Configuration and report
# ---------------------------------------------------------------------------


def parse_budget(text: str) -> float:
    """``"30s"`` / ``"2m"`` / ``"45"`` → seconds as float."""
    text = text.strip().lower()
    try:
        if text.endswith("ms"):
            return float(text[:-2]) / 1000.0
        if text.endswith("s"):
            return float(text[:-1])
        if text.endswith("m"):
            return float(text[:-1]) * 60.0
        return float(text)
    except ValueError:
        raise ValueError(f"unparseable budget {text!r} (try '30s' or '2m')") from None


@dataclass
class FuzzConfig:
    """Knobs of one fuzz run; defaults match ``sief fuzz``."""

    seed: int = 0
    budget_seconds: float = 30.0
    max_rounds: int = 1_000_000
    adapters: Optional[Sequence[str]] = None  # None = all registered
    generators: Optional[Sequence[str]] = None  # None = all registered
    corpus_dir: Optional[str] = None
    do_shrink: bool = True
    max_counterexamples: int = 10
    shrink_checks: int = 400


@dataclass
class FuzzReport:
    """What one fuzz run covered and what it found."""

    seed: int = 0
    rounds: int = 0
    failures_checked: int = 0
    queries_checked: int = 0
    adapters_covered: Set[str] = field(default_factory=set)
    generators_covered: Set[str] = field(default_factory=set)
    orderings_covered: Set[str] = field(default_factory=set)
    counterexamples: List[Counterexample] = field(default_factory=list)
    corpus_paths: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.rounds} rounds, "
            f"{self.failures_checked} failure cases, "
            f"{self.queries_checked} differential queries "
            f"in {self.elapsed_seconds:.1f}s",
            f"  engines:    {len(self.adapters_covered)} "
            f"({', '.join(sorted(self.adapters_covered))})",
            f"  generators: {len(self.generators_covered)} "
            f"({', '.join(sorted(self.generators_covered))})",
            f"  orderings:  {len(self.orderings_covered)} "
            f"({', '.join(sorted(self.orderings_covered))})",
        ]
        if self.counterexamples:
            lines.append(f"  MISMATCHES: {len(self.counterexamples)}")
            for cx in self.counterexamples:
                lines.append(f"    {cx.describe()}")
            for path in self.corpus_paths:
                lines.append(f"    persisted: {path}")
        else:
            lines.append("  no mismatches found")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The loop
# ---------------------------------------------------------------------------


def _sample_failures(
    graph: Graph, rng: random.Random
) -> List[Tuple[int, int]]:
    """All edges when small; stratified sample (max-degree + uniform) else."""
    edges = list(graph.edges())
    if len(edges) <= EXHAUSTIVE_EDGE_LIMIT:
        return edges
    # Stratify: always include the edge at the highest-degree vertex —
    # it has the largest affected sets — then fill uniformly.
    edges.sort(key=lambda e: -(graph.degree(e[0]) + graph.degree(e[1])))
    picked = edges[:2]
    picked.extend(rng.sample(edges[2:], SAMPLED_FAILURES - 2))
    return picked


def _sample_pairs(n: int, rng: random.Random) -> List[Pair]:
    """All n² pairs when small (incl. s == t); a uniform sample else."""
    if n <= EXHAUSTIVE_PAIR_LIMIT:
        return [(s, t) for s in range(n) for t in range(n)]
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(SAMPLED_PAIRS - 2)]
    pairs.append((0, n - 1))
    pairs.append((n - 1, n - 1))  # s == t must stay covered
    return pairs


def _check_obs_invariants(adapter_name: str, before) -> None:
    """Observability invariants enforced after every differential case.

    * adapters must restore whatever hooks state they found (a leaked
      install would silently instrument every later adapter);
    * any externally installed tracer (e.g. ``sief fuzz --metrics-out``)
      must be span-balanced again — every span entered was exited.
    """
    now = (_obs_hooks.registry, _obs_hooks.tracer)
    if now != before:
        raise RuntimeError(
            f"adapter {adapter_name!r} leaked observability hooks state: "
            f"had {before!r}, left {now!r} installed"
        )
    tracer = _obs_hooks.tracer
    if tracer is not None and tracer.depth != 0:
        raise RuntimeError(
            f"unbalanced span stack after adapter {adapter_name!r}: "
            f"open spans {tracer.open_spans()}"
        )


def _adapter_run(
    adapter, ctx: WorldContext, failure, pairs: List[Pair]
) -> Tuple[List[float], List[float], Optional[int]]:
    """(truth, got, crashed_pair_index) for one adapter × failure."""
    truth = adapter.truth(ctx, failure, pairs)
    obs_before = (_obs_hooks.registry, _obs_hooks.tracer)
    try:
        got = adapter.distances(ctx, failure, pairs)
        _check_obs_invariants(adapter.name, obs_before)
        return truth, got, None
    except Exception:
        # Batch crashed: bisect to the first offending pair so the
        # counterexample pins a single query.
        got = []
        for i, pair in enumerate(pairs):
            try:
                got.extend(adapter.distances(ctx, failure, [pair]))
            except Exception:
                return truth, got + [math.nan], i
            finally:
                _check_obs_invariants(adapter.name, obs_before)
        return truth, got, None


def _record(
    report: FuzzReport,
    config: FuzzConfig,
    adapter,
    ctx: WorldContext,
    failure,
    pair: Pair,
    expected: float,
    got: float,
    provenance: dict,
) -> None:
    cx = Counterexample(
        adapter=adapter.name,
        family=ctx.family,
        num_vertices=ctx.num_vertices,
        edges=list(ctx.edges),
        failure=failure,
        s=pair[0],
        t=pair[1],
        ordering=ctx.ordering_name,
        ordering_seed=ctx.ordering_seed,
        expected=expected,
        got=got,
        provenance=provenance,
    )
    if config.do_shrink:
        cx = shrink(cx, max_checks=config.shrink_checks)
    # Different raw findings frequently shrink to the same minimal case;
    # keep one representative of each.
    from repro.testing.corpus import corpus_name

    if any(corpus_name(c) == corpus_name(cx) for c in report.counterexamples):
        return
    report.counterexamples.append(cx)
    if config.corpus_dir:
        path = save_counterexample(cx, config.corpus_dir)
        report.corpus_paths.append(str(path))


def fuzz(config: Optional[FuzzConfig] = None, **kwargs) -> FuzzReport:
    """Run the differential conformance fuzz loop.

    Accepts a :class:`FuzzConfig` or its fields as keyword arguments;
    returns a :class:`FuzzReport`.  The loop stops when the time budget
    is exhausted, ``max_rounds`` is hit, or ``max_counterexamples``
    mismatches were found (whichever first).
    """
    if config is None:
        config = FuzzConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a FuzzConfig or keyword fields, not both")

    adapter_names = list(config.adapters or ADAPTERS)
    unknown = [a for a in adapter_names if a not in ADAPTERS]
    if unknown:
        raise ValueError(
            f"unknown adapters {unknown}; registered: {sorted(ADAPTERS)}"
        )
    gen_names = list(config.generators or GENERATORS)
    unknown = [g for g in gen_names if g not in GENERATORS]
    if unknown:
        raise ValueError(
            f"unknown generators {unknown}; registered: {sorted(GENERATORS)}"
        )

    report = FuzzReport(seed=config.seed)
    started = time.monotonic()
    deadline = started + config.budget_seconds

    for round_idx in range(config.max_rounds):
        if time.monotonic() >= deadline:
            break
        if len(report.counterexamples) >= config.max_counterexamples:
            break
        rng = random.Random(f"{config.seed}:{round_idx}")
        gen_name = gen_names[round_idx % len(gen_names)]
        ordering_name = ORDERING_NAMES[round_idx % len(ORDERING_NAMES)]
        ordering_seed = _seed(rng)
        base = GENERATORS[gen_name](rng)
        if base.num_edges == 0:
            continue
        provenance = {
            "seed": config.seed,
            "round": round_idx,
            "generator": gen_name,
        }
        report.rounds += 1
        report.generators_covered.add(gen_name)
        report.orderings_covered.add(ordering_name)

        base_edges = list(base.edges())
        contexts: Dict[str, WorldContext] = {
            "undirected": WorldContext(
                "undirected", base.num_vertices, base_edges,
                ordering_name, ordering_seed,
            ),
            "weighted": WorldContext(
                "weighted", base.num_vertices,
                derive_weighted_edges(base_edges, _seed(rng)),
                ordering_name, ordering_seed,
            ),
            "directed": WorldContext(
                "directed", base.num_vertices,
                derive_directed_arcs(base_edges, _seed(rng)),
                ordering_name, ordering_seed,
            ),
        }

        # Failure schedule per (family, kind).
        n = base.num_vertices
        pairs = _sample_pairs(n, rng)
        edge_failures = [
            ("edge", u, v) for u, v in _sample_failures(base, rng)
        ]
        arcs = contexts["directed"].edges
        if len(arcs) <= EXHAUSTIVE_EDGE_LIMIT:
            arc_failures = [("arc", u, v) for u, v in arcs]
        else:
            arc_failures = [
                ("arc", u, v)
                for u, v in rng.sample(arcs, SAMPLED_FAILURES)
            ]
        node_failures = [
            ("node", w) for w in rng.sample(range(n), min(n, 5))
        ]
        dual_failures = []
        if base.num_edges >= 2:
            for _ in range(5):
                e1, e2 = rng.sample(base_edges, 2)
                dual_failures.append(("dual", e1, e2))

        schedule = {
            ("undirected", "edge"): edge_failures,
            ("weighted", "edge"): [
                ("edge", u, v) for (_k, u, v) in edge_failures
            ],
            ("directed", "arc"): arc_failures,
            ("undirected", "node"): node_failures,
            ("undirected", "dual"): dual_failures,
        }

        for name in adapter_names:
            adapter = ADAPTERS[name]
            if time.monotonic() >= deadline:
                break
            if len(report.counterexamples) >= config.max_counterexamples:
                break
            if (
                adapter.max_edges is not None
                and len(contexts[adapter.family].edges) > adapter.max_edges
            ):
                continue
            ctx = contexts[adapter.family]
            failures = schedule.get((adapter.family, adapter.failure_kind), [])
            for failure in failures:
                if time.monotonic() >= deadline:
                    break
                if adapter.failure_kind == "node":
                    w = failure[1]
                    use_pairs = [p for p in pairs if w not in p]
                else:
                    use_pairs = pairs
                if not use_pairs:
                    continue
                truth, got, crashed = _adapter_run(
                    adapter, ctx, failure, use_pairs
                )
                report.failures_checked += 1
                report.queries_checked += len(got)
                report.adapters_covered.add(name)
                for i, got_i in enumerate(got):
                    bad = (
                        (crashed is not None and i == crashed)
                        or not adapter.agree(got_i, truth[i])
                    )
                    if bad:
                        _record(
                            report, config, adapter, ctx, failure,
                            use_pairs[i], truth[i], got_i, provenance,
                        )
                        break  # one counterexample per failure case
                if len(report.counterexamples) >= config.max_counterexamples:
                    break

    report.elapsed_seconds = time.monotonic() - started
    return report
