"""Brute-force ground-truth oracles for the conformance harness.

Every engine the harness checks is differentially compared against a
re-computation from first principles: BFS (or Dijkstra) on the graph
with the failure applied.  These oracles are deliberately naive — their
only job is to be *obviously* correct, the way PLL implementations are
validated against plain BFS (Akiba et al.) and fault-tolerant oracles
against exhaustive recomputation.

Each oracle answers a list of ``(s, t)`` pairs for one failure, grouping
pairs by source so a single traversal serves every target of that
source.  Distances are floats with ``inf`` for disconnected pairs,
matching the engines' query contract.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.failures.search import bfs_avoiding
from repro.graph.traversal import (
    UNREACHED,
    bfs_distances,
    bfs_distances_avoiding_edge,
    dijkstra_distances,
)
from repro.labeling.query import INF

Pair = Tuple[int, int]


def _by_source(pairs: Sequence[Pair]) -> Dict[int, List[int]]:
    grouped: Dict[int, List[int]] = {}
    for i, (s, _t) in enumerate(pairs):
        grouped.setdefault(s, []).append(i)
    return grouped


def undirected_truth(
    graph, failed_edge: Tuple[int, int], pairs: Sequence[Pair]
) -> List[float]:
    """``d_{G-(u,v)}(s, t)`` by one avoiding-BFS per distinct source."""
    out = [INF] * len(pairs)
    for s, idxs in _by_source(pairs).items():
        dist = bfs_distances_avoiding_edge(graph, s, failed_edge)
        for i in idxs:
            d = dist[pairs[i][1]]
            out[i] = float(d) if d != UNREACHED else INF
    return out


def no_failure_truth(graph, pairs: Sequence[Pair]) -> List[float]:
    """Plain ``d_G(s, t)`` — ground truth for the original labeling."""
    out = [INF] * len(pairs)
    for s, idxs in _by_source(pairs).items():
        dist = bfs_distances(graph, s)
        for i in idxs:
            d = dist[pairs[i][1]]
            out[i] = float(d) if d != UNREACHED else INF
    return out


def weighted_truth(
    wgraph, failed_edge: Tuple[int, int], pairs: Sequence[Pair]
) -> List[float]:
    """``d_{G-(u,v)}(s, t)`` on a weighted graph by avoiding-Dijkstra."""
    out = [INF] * len(pairs)
    for s, idxs in _by_source(pairs).items():
        dist = dijkstra_distances(wgraph, s, avoid=failed_edge)
        for i in idxs:
            out[i] = float(dist[pairs[i][1]])
    return out


def directed_truth(
    dgraph, failed_arc: Tuple[int, int], pairs: Sequence[Pair]
) -> List[float]:
    """``d_{G-(u→v)}(s → t)`` by directed BFS skipping the failed arc."""
    from collections import deque

    a, b = failed_arc
    out = [INF] * len(pairs)
    n = dgraph.num_vertices
    for s, idxs in _by_source(pairs).items():
        dist = [UNREACHED] * n
        dist[s] = 0
        queue = deque((s,))
        while queue:
            x = queue.popleft()
            d = dist[x] + 1
            for y in dgraph.successors(x):
                if x == a and y == b:
                    continue
                if dist[y] == UNREACHED:
                    dist[y] = d
                    queue.append(y)
        for i in idxs:
            d = dist[pairs[i][1]]
            out[i] = float(d) if d != UNREACHED else INF
    return out


def node_truth(
    graph, failed_vertex: int, pairs: Sequence[Pair]
) -> List[float]:
    """``d_{G-w}(s, t)`` by BFS that never enters the failed vertex."""
    out = [INF] * len(pairs)
    for s, idxs in _by_source(pairs).items():
        dist = bfs_avoiding(graph, s, avoid_vertices=(failed_vertex,))
        for i in idxs:
            d = dist[pairs[i][1]]
            out[i] = float(d) if d != UNREACHED else INF
    return out


def dual_truth(
    graph,
    e1: Tuple[int, int],
    e2: Tuple[int, int],
    pairs: Sequence[Pair],
) -> List[float]:
    """``d_{G-e1-e2}(s, t)`` by BFS skipping both failed edges."""
    out = [INF] * len(pairs)
    for s, idxs in _by_source(pairs).items():
        dist = bfs_avoiding(graph, s, avoid_edges=(e1, e2))
        for i in idxs:
            d = dist[pairs[i][1]]
            out[i] = float(d) if d != UNREACHED else INF
    return out
