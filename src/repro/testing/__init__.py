"""Differential fuzzing & conformance harness for every SIEF query path.

The correctness story of this library (Theorems 1–3: original labeling +
supplement answers ``d_{G-(u,v)}`` exactly) is enforced here the way PLL
implementations are validated against plain BFS: every registered query
engine is *differentially* compared against a brute-force oracle on
randomized graphs, counterexamples are shrunk to minimal quadruples, and
the minimized cases persist as a pytest-replayed regression corpus.

Layers (see ``docs/testing.md`` for the full oracle hierarchy):

* :mod:`repro.testing.oracles` — brute-force BFS/Dijkstra ground truth;
* :mod:`repro.testing.adapters` — the ``QueryOracle`` adapter protocol
  and the registry of ~14 query paths behind it;
* :mod:`repro.testing.fuzz` — the seeded generator × ordering × engine
  fuzz loop (``sief fuzz`` in the CLI);
* :mod:`repro.testing.shrink` — greedy counterexample minimization;
* :mod:`repro.testing.corpus` — persisted minimal counterexamples under
  ``tests/corpus/``.
"""

from repro.testing.adapters import ADAPTERS, ORDERING_NAMES, WorldContext
from repro.testing.cases import Counterexample, recheck
from repro.testing.corpus import (
    iter_corpus,
    load_counterexample,
    save_counterexample,
)
from repro.testing.fuzz import (
    GENERATORS,
    FuzzConfig,
    FuzzReport,
    fuzz,
    parse_budget,
)
from repro.testing.shrink import shrink

__all__ = [
    "ADAPTERS",
    "GENERATORS",
    "ORDERING_NAMES",
    "WorldContext",
    "Counterexample",
    "FuzzConfig",
    "FuzzReport",
    "fuzz",
    "parse_budget",
    "recheck",
    "shrink",
    "iter_corpus",
    "load_counterexample",
    "save_counterexample",
]
