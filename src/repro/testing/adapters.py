"""Engine adapters: every query path behind one ``QueryOracle`` protocol.

The harness treats each way of answering a failure distance query —
scalar SIEF, batch SIEF, lazy SIEF, weighted, directed, the node/dual
oracles, and the brute-force baselines — as an interchangeable
*adapter*.  An adapter declares

* which derived graph **family** it runs on (``undirected``,
  ``weighted``, ``directed``),
* which **failure kind** it understands (``edge``, ``arc``, ``node``,
  ``dual``), and
* a ``distances(ctx, failure, pairs)`` method returning one float per
  pair.

A :class:`WorldContext` owns one generated graph instance (plus its
weighted and directed derivations) and memoizes the expensive build
artifacts — the PLL labeling, the SIEF index, the weighted/directed
indexes — so all adapters of a family share one build per fuzz round.
Contexts reconstruct deterministically from ``(family, n, edges,
ordering, ordering_seed)``, which is what lets the shrinker and the
corpus replay a counterexample from its serialized form alone.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph
from repro.order.ordering import VertexOrdering
from repro.order.strategies import STRATEGIES, make_ordering
from repro.testing import oracles

Pair = Tuple[int, int]
Failure = Tuple  # ("edge", u, v) | ("arc", u, v) | ("node", w) | ("dual", (u,v), (x,y))

ORDERING_NAMES: Tuple[str, ...] = tuple(sorted(STRATEGIES))
"""All registered vertex-ordering strategies, cycled by the fuzzer."""


class WorldContext:
    """One fuzz instance: a graph family member plus memoized indexes."""

    def __init__(
        self,
        family: str,
        num_vertices: int,
        edges: Sequence[Tuple],
        ordering_name: str = "degree",
        ordering_seed: int = 0,
    ) -> None:
        if family not in ("undirected", "weighted", "directed"):
            raise ValueError(f"unknown world family {family!r}")
        self.family = family
        self.num_vertices = num_vertices
        self.edges = [tuple(e) for e in edges]
        self.ordering_name = ordering_name
        self.ordering_seed = ordering_seed
        self._cache: Dict[str, object] = {}
        if family == "undirected":
            self.graph = Graph(num_vertices, self.edges)
        elif family == "weighted":
            self.graph = WeightedGraph(num_vertices, self.edges)
        else:
            self.graph = DiGraph(num_vertices, self.edges)

    # -- derivations ------------------------------------------------------

    def skeleton(self) -> Graph:
        """Undirected unweighted view used to compute orderings."""
        g = self._cache.get("skeleton")
        if g is None:
            if self.family == "undirected":
                g = self.graph
            elif self.family == "weighted":
                g = self.graph.to_unweighted()
            else:
                g = self.graph.to_undirected()
            self._cache["skeleton"] = g
        return g

    def ordering(self) -> VertexOrdering:
        """The vertex ordering shared by every index of this context."""
        o = self._cache.get("ordering")
        if o is None:
            if self.ordering_name == "random":
                o = make_ordering(
                    self.skeleton(), "random", seed=self.ordering_seed
                )
            else:
                o = make_ordering(self.skeleton(), self.ordering_name)
            self._cache["ordering"] = o
        return o

    def _memo(self, key: str, build: Callable[[], object]) -> object:
        value = self._cache.get(key)
        if value is None:
            value = build()
            self._cache[key] = value
        return value

    def labeling(self):
        from repro.labeling.pll import build_pll

        return self._memo("labeling", lambda: build_pll(self.graph, self.ordering()))

    def sief_index(self):
        from repro.core.builder import build_sief

        return self._memo(
            "sief_index", lambda: build_sief(self.graph, self.labeling())
        )

    def sief_engine(self):
        from repro.core.query import SIEFQueryEngine

        return self._memo(
            "sief_engine", lambda: SIEFQueryEngine(self.sief_index())
        )

    def sief_index_batched(self):
        """SIEF index built with the bit-parallel batched relabel.

        Building it asserts bit-identity against the scalar-built index:
        every failure case must carry the same supplemental labels with
        the same ``(rank, dist)`` entries in the same order.  A mismatch
        raises, which the fuzz loop records as a counterexample — this is
        what puts the batched construction path on the full fuzz corpus.
        """
        from repro.core.builder import build_sief

        def build():
            index = build_sief(
                self.graph, self.labeling(), algorithm="batched"
            )
            reference = self.sief_index()
            if set(index.supplements) != set(reference.supplements):
                raise AssertionError(
                    "batched build covered different failure cases"
                )
            for edge, si in index.supplements.items():
                ref = reference.supplements[edge]
                if si != ref:
                    raise AssertionError(
                        f"batched supplement for {edge} differs from scalar"
                    )
                for t, sl in si.labels.items():
                    rl = ref.labels[t]
                    if sl.ranks != rl.ranks or sl.dists != rl.dists:
                        raise AssertionError(
                            f"batched labels for {edge}/{t} not bit-identical"
                        )
            return index

        return self._memo("sief_index_batched", build)

    def sief_index_kernels(self):
        """Batched SIEF index built on the accelerated kernel tier.

        Builds the *same* batched index twice — once with kernels forced
        to pure numpy, once under ``auto`` (numba or the C extension
        when available) — and asserts the two are bit-identical: same
        failure cases, same supplemental ``(rank, dist)`` streams, and
        (unlike the batched-vs-scalar check, where it legitimately
        differs) the same ``search_expanded`` settlement counts.  Any
        divergence raises, which the fuzz loop records as a
        counterexample — this is what puts the compiled tier on the full
        fuzz corpus.  Returns the accelerated-tier index.
        """
        from repro import kernels
        from repro.core.builder import build_sief

        def build():
            with kernels.use_tier("numpy"):
                reference = build_sief(
                    self.graph, self.labeling(), algorithm="batched"
                )
            with kernels.use_tier("auto"):
                tier = kernels.effective_tier()
                index = build_sief(
                    self.graph, self.labeling(), algorithm="batched"
                )
            if set(index.supplements) != set(reference.supplements):
                raise AssertionError(
                    f"{tier}-tier build covered different failure cases"
                )
            for edge, si in index.supplements.items():
                ref = reference.supplements[edge]
                if si != ref:
                    raise AssertionError(
                        f"{tier}-tier supplement for {edge} differs "
                        "from numpy tier"
                    )
                if si.search_expanded != ref.search_expanded:
                    raise AssertionError(
                        f"{tier}-tier search_expanded for {edge} is "
                        f"{si.search_expanded}, numpy tier counted "
                        f"{ref.search_expanded}"
                    )
                for t, sl in si.labels.items():
                    rl = ref.labels[t]
                    if sl.ranks != rl.ranks or sl.dists != rl.dists:
                        raise AssertionError(
                            f"{tier}-tier labels for {edge}/{t} "
                            "not bit-identical to numpy tier"
                        )
            return index

        return self._memo("sief_index_kernels", build)

    def lazy_index(self):
        from repro.core.lazy import LazySIEFIndex
        from repro.labeling.pll import build_pll

        # Own graph copy and labeling: the lazy index owns (and may
        # mutate) both, and sharing the main labeling would let one
        # adapter's freeze/thaw state leak into another's timings.
        return self._memo(
            "lazy_index",
            lambda: LazySIEFIndex(
                self.graph.copy(),
                labeling=build_pll(self.graph, self.ordering()),
            ),
        )

    def unit_weighted_index(self):
        from repro.failures.weighted import build_weighted_sief
        from repro.labeling.pll_weighted import build_weighted_pll

        def build():
            wg = WeightedGraph.from_unweighted(self.graph)
            return build_weighted_sief(
                wg, build_weighted_pll(wg, self.ordering())
            )

        return self._memo("unit_weighted_index", build)

    def weighted_index(self):
        from repro.failures.weighted import build_weighted_sief
        from repro.labeling.pll_weighted import build_weighted_pll

        return self._memo(
            "weighted_index",
            lambda: build_weighted_sief(
                self.graph, build_weighted_pll(self.graph, self.ordering())
            ),
        )

    def directed_index(self):
        from repro.failures.directed import build_directed_sief
        from repro.labeling.pll_directed import build_directed_pll

        return self._memo(
            "directed_index",
            lambda: build_directed_sief(
                self.graph, build_directed_pll(self.graph, self.ordering())
            ),
        )


class EngineAdapter:
    """Base class: one registered query path under conformance test."""

    name: str = "?"
    family: str = "undirected"
    failure_kind: str = "edge"
    #: Adapters too slow for big instances opt out above this edge count.
    max_edges: Optional[int] = None

    def distances(
        self, ctx: WorldContext, failure: Failure, pairs: Sequence[Pair]
    ) -> List[float]:
        raise NotImplementedError

    def truth(
        self, ctx: WorldContext, failure: Failure, pairs: Sequence[Pair]
    ) -> List[float]:
        """Ground truth for this adapter's family and failure kind."""
        if self.failure_kind == "edge":
            if self.family == "weighted":
                return oracles.weighted_truth(ctx.graph, failure[1:3], pairs)
            return oracles.undirected_truth(ctx.graph, failure[1:3], pairs)
        if self.failure_kind == "arc":
            return oracles.directed_truth(ctx.graph, failure[1:3], pairs)
        if self.failure_kind == "node":
            return oracles.node_truth(ctx.graph, failure[1], pairs)
        if self.failure_kind == "dual":
            return oracles.dual_truth(ctx.graph, failure[1], failure[2], pairs)
        raise ValueError(f"unknown failure kind {self.failure_kind!r}")

    def agree(self, got: float, expected: float) -> bool:
        """Whether an answer matches ground truth (exact by default)."""
        return got == expected


def _scalar_loop(fn, pairs: Sequence[Pair]) -> List[float]:
    return [float(fn(s, t)) for s, t in pairs]


class SIEFScalarAdapter(EngineAdapter):
    """``SIEFQueryEngine.distance`` — the paper's Table 4 hot path."""

    name = "sief-scalar"

    def distances(self, ctx, failure, pairs):
        engine = ctx.sief_engine()
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: engine.distance(s, t, edge), pairs)


class SIEFCaseAdapter(EngineAdapter):
    """``distance_with_case`` — must agree with ``distance`` and truth."""

    name = "sief-case"

    def distances(self, ctx, failure, pairs):
        engine = ctx.sief_engine()
        edge = failure[1:3]
        return _scalar_loop(
            lambda s, t: engine.distance_with_case(s, t, edge)[0], pairs
        )


class SIEFBatchAdapter(EngineAdapter):
    """``SIEFQueryEngine.batch_query`` — the vectorized §4.4 path."""

    name = "sief-batch"

    def distances(self, ctx, failure, pairs):
        engine = ctx.sief_engine()
        return [float(d) for d in engine.batch_query(failure[1:3], list(pairs))]


class SIEFFrozenAdapter(EngineAdapter):
    """Scalar queries against the frozen (flat numpy) index backend."""

    name = "sief-frozen"

    def distances(self, ctx, failure, pairs):
        engine = ctx.sief_engine()
        ctx.sief_index().freeze()
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: engine.distance(s, t, edge), pairs)


class SIEFBatchedBuildAdapter(EngineAdapter):
    """Scalar queries on an index built with the batched relabel.

    Materializing the index (memoized per context) asserts bit-identity
    with the scalar-built index, so this adapter simultaneously checks
    the batched *construction* path on every fuzzed instance and the
    answers it yields.
    """

    name = "sief-batched-build"

    def distances(self, ctx, failure, pairs):
        from repro.core.query import SIEFQueryEngine

        engine = ctx._memo(
            "sief_batched_engine",
            lambda: SIEFQueryEngine(ctx.sief_index_batched()),
        )
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: engine.distance(s, t, edge), pairs)


class LazySIEFAdapter(EngineAdapter):
    """``LazySIEFIndex.distance`` — cases materialized on first use."""

    name = "sief-lazy"

    def distances(self, ctx, failure, pairs):
        lazy = ctx.lazy_index()
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: lazy.distance(s, t, edge), pairs)


class UnitWeightedAdapter(EngineAdapter):
    """Weighted SIEF on unit weights — must equal unweighted BFS truth."""

    name = "weighted-unit"
    max_edges = 80

    def distances(self, ctx, failure, pairs):
        index = ctx.unit_weighted_index()
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: index.distance(s, t, edge), pairs)


class BFSBaselineAdapter(EngineAdapter):
    """Index-free BFS-per-query baseline (one-sided)."""

    name = "bfs-baseline"

    def distances(self, ctx, failure, pairs):
        from repro.baselines.bfs_query import BFSQueryBaseline

        baseline = BFSQueryBaseline(ctx.graph)
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: baseline.distance(s, t, edge), pairs)


class BidirectionalBFSAdapter(EngineAdapter):
    """Bidirectional BFS baseline — exercises the meet-in-middle cutoff."""

    name = "bfs-bidirectional"

    def distances(self, ctx, failure, pairs):
        from repro.baselines.bfs_query import BFSQueryBaseline

        baseline = BFSQueryBaseline(ctx.graph, bidirectional=True)
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: baseline.distance(s, t, edge), pairs)


class NaiveRebuildAdapter(EngineAdapter):
    """Full PLL rebuild per failure case (the paper's naive method)."""

    name = "naive-rebuild"
    max_edges = 48

    def distances(self, ctx, failure, pairs):
        from repro.baselines.naive_rebuild import NaiveRebuildBaseline

        baseline = ctx._memo(
            "naive_rebuild", lambda: NaiveRebuildBaseline(ctx.graph)
        )
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: baseline.distance(s, t, edge), pairs)


class WeightedSIEFAdapter(EngineAdapter):
    """Weighted SIEF vs avoiding-Dijkstra, under float tolerance."""

    name = "weighted-sief"
    family = "weighted"
    max_edges = 80

    def distances(self, ctx, failure, pairs):
        index = ctx.weighted_index()
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: index.distance(s, t, edge), pairs)

    def agree(self, got, expected):
        from repro.failures.weighted import close

        return close(got, expected)


class DijkstraBaselineAdapter(EngineAdapter):
    """Index-free Dijkstra baseline on the weighted family."""

    name = "dijkstra-baseline"
    family = "weighted"

    def distances(self, ctx, failure, pairs):
        from repro.baselines.dijkstra_query import DijkstraQueryBaseline

        baseline = DijkstraQueryBaseline(ctx.graph)
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: baseline.distance(s, t, edge), pairs)

    def agree(self, got, expected):
        from repro.failures.weighted import close

        return close(got, expected)


class DirectedSIEFAdapter(EngineAdapter):
    """Directed SIEF (single-arc failures) vs directed BFS."""

    name = "directed-sief"
    family = "directed"
    failure_kind = "arc"
    max_edges = 80

    def distances(self, ctx, failure, pairs):
        index = ctx.directed_index()
        arc = failure[1:3]
        return _scalar_loop(lambda s, t: index.distance(s, t, arc), pairs)


class NodeFailureAdapter(EngineAdapter):
    """Node-failure oracle vs avoid-vertex BFS."""

    name = "node-oracle"
    failure_kind = "node"
    max_edges = 60

    def distances(self, ctx, failure, pairs):
        from repro.failures.node import NodeFailureOracle

        oracle = ctx._memo(
            "node_oracle", lambda: NodeFailureOracle(ctx.graph, ctx.sief_index())
        )
        w = failure[1]
        return _scalar_loop(lambda s, t: oracle.distance(s, t, w), pairs)


class DualFailureAdapter(EngineAdapter):
    """Dual-edge oracle vs avoid-two-edges BFS (and its lower bound)."""

    name = "dual-oracle"
    failure_kind = "dual"
    max_edges = 60

    def distances(self, ctx, failure, pairs):
        from repro.failures.dual import DualFailureOracle
        from repro.labeling.query import INF

        oracle = ctx._memo(
            "dual_oracle", lambda: DualFailureOracle(ctx.graph, ctx.sief_index())
        )
        e1, e2 = failure[1], failure[2]
        out = []
        for s, t in pairs:
            exact = oracle.distance(s, t, e1, e2)
            # The certified lower bound must never exceed the exact
            # answer; surface a violation as a wrong answer.
            bound = oracle.lower_bound(s, t, e1, e2)
            if exact != INF and bound > exact:
                out.append(float(bound))
            else:
                out.append(float(exact))
        return out


class KernelTierBatchAdapter(EngineAdapter):
    """Batch queries answered on both kernel tiers — and proven equal.

    Per case, runs ``SIEFQueryEngine.batch_query`` once with kernels
    forced to pure numpy and once under ``auto`` (the accelerated tier
    when one is available), and raises unless the answer vectors are
    bit-for-bit equal.  The accelerated answers are returned, so the
    differential loop additionally checks them against the brute-force
    oracle.  On hosts with no accelerated backend both passes resolve
    to numpy and the adapter degenerates to a plain batch check.
    """

    name = "sief-batch-kernels"

    def distances(self, ctx, failure, pairs):
        from repro import kernels

        engine = ctx.sief_engine()
        edge = failure[1:3]
        with kernels.use_tier("numpy"):
            reference = [
                float(d) for d in engine.batch_query(edge, list(pairs))
            ]
        with kernels.use_tier("auto"):
            tier = kernels.effective_tier()
            got = [float(d) for d in engine.batch_query(edge, list(pairs))]
        if got != reference:
            raise AssertionError(
                f"{self.name}: {tier}-tier batch answers differ from "
                f"numpy tier ({got!r} != {reference!r})"
            )
        return got


class KernelTierBuildAdapter(EngineAdapter):
    """Scalar queries on an index built on the accelerated kernel tier.

    Materializing the index (memoized per context via
    :meth:`WorldContext.sief_index_kernels`) asserts bit-identity of the
    numpy-tier and accelerated-tier batched builds — supplements,
    append order, and settlement counters — so this adapter puts the
    compiled construction path on every fuzzed instance while its
    answers are checked against ground truth.
    """

    name = "sief-kernels-build"

    def distances(self, ctx, failure, pairs):
        from repro.core.query import SIEFQueryEngine

        engine = ctx._memo(
            "sief_kernels_engine",
            lambda: SIEFQueryEngine(ctx.sief_index_kernels()),
        )
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: engine.distance(s, t, edge), pairs)


class _ServeWorld:
    """One live in-process server tied to a WorldContext's lifetime.

    The index is round-tripped through the frozen npz store and loaded
    back memory-mapped before serving, so every fuzzed instance also
    covers the save → mmap-load path the real daemon uses.
    """

    def __init__(self, ctx: "WorldContext") -> None:
        import os
        import tempfile

        from repro.core.index import SIEFIndex
        from repro.core.query import SIEFQueryEngine
        from repro.serve.client import ServeClient
        from repro.serve.inprocess import InProcessServer
        from repro.serve.server import ServeConfig

        from repro.obs.events import EventLog

        self.tmp = tempfile.TemporaryDirectory(prefix="sief-serve-fuzz-")
        path = os.path.join(self.tmp.name, "index.npz")
        ctx.sief_index().freeze().save_npz(path)
        self.engine = SIEFQueryEngine(SIEFIndex.load(path, mmap_mode="r"))
        # Tight flush deadline: the adapter's requests are serial, so
        # every batch flushes on deadline — keep the fuzz loop fast.
        # Tracing runs at full sample so the adapter can assert the
        # observability contract (event lines, /debug entries) per case.
        self.events = EventLog(capacity=4096, sample=1.0)
        self.server = InProcessServer(
            self.engine,
            ServeConfig(max_batch=256, max_delay=0.0005, events=self.events),
        )
        self.client = ServeClient(self.server.host, self.server.port)

    def close(self) -> None:
        try:
            self.client.close()
        finally:
            self.server.stop()
            self.tmp.cleanup()


class ServeConformanceAdapter(EngineAdapter):
    """Queries routed through a live in-process HTTP server.

    Per context, freezes the SIEF index to an npz store, loads it back
    memory-mapped, and serves it over a real socket on an ephemeral
    port.  Each case is answered three ways — JSON ``/batch``, binary
    ``/batch.bin``, and the in-memory engine — and the three must be
    bit-identical before the answers go to the ground-truth comparison.
    The server keeps its own private metrics registry, so the global
    observability hooks stay untouched (the fuzz loop checks that).
    """

    name = "sief-serve"

    def distances(self, ctx, failure, pairs):
        import math
        import weakref

        from repro.obs.context import new_trace_id

        world = ctx._cache.get("serve_world")
        if world is None:
            world = _ServeWorld(ctx)
            ctx._cache["serve_world"] = world
            weakref.finalize(ctx, world.close)
        edge = (failure[1], failure[2])
        pairs = [(int(s), int(t)) for s, t in pairs]
        # Client-supplied trace ids with debug on for both wire formats:
        # tracing must never change answer bytes, and the id must come
        # back correlated through the response, the event log, and the
        # /debug/requests ring.
        json_tid = new_trace_id()
        bin_tid = new_trace_id()
        via_json_doc = world.client.batch_ex(
            edge, pairs, trace_id=json_tid, debug=True
        )
        via_json = [
            math.inf if d is None else float(d)
            for d in via_json_doc["distances"]
        ]
        via_bin_arr, bin_headers = world.client.batch_binary_ex(
            edge, pairs, trace_id=bin_tid, debug=True
        )
        via_bin = [float(d) for d in via_bin_arr]
        direct = [float(d) for d in world.engine.batch_query(edge, pairs)]
        if via_json != via_bin or via_bin != direct:
            raise AssertionError(
                f"{self.name}: JSON/binary/direct answers disagree "
                f"({via_json!r} / {via_bin!r} / {direct!r})"
            )
        plain = world.client.batch(edge, pairs)
        if plain != via_json:
            raise AssertionError(
                f"{self.name}: debug/traced answers differ from plain "
                f"({via_json!r} != {plain!r})"
            )
        self._check_tracing(world, json_tid, bin_tid, via_json_doc, bin_headers)
        s, t = pairs[0]
        single = world.client.distance(s, t, edge)
        first = via_bin[0]
        if single != first and not (math.isinf(single) and math.isinf(first)):
            raise AssertionError(
                f"{self.name}: /dist answer {single!r} differs from "
                f"batch answer {first!r} for pair {(s, t)}"
            )
        return via_bin

    def _check_tracing(self, world, json_tid, bin_tid, json_doc, bin_headers):
        """The request-observability contract, asserted per case."""
        import json as _json

        debug = json_doc.get("debug")
        if not debug or debug.get("trace_id") != json_tid:
            raise AssertionError(
                f"{self.name}: /batch?debug=1 did not echo trace id "
                f"{json_tid} (got {debug!r})"
            )
        if bin_headers.get("x-trace-id") != bin_tid:
            raise AssertionError(
                f"{self.name}: binary response header trace id "
                f"{bin_headers.get('x-trace-id')!r} != frame id {bin_tid}"
            )
        bin_debug = _json.loads(bin_headers.get("x-sief-debug", "{}"))
        for tid, decomposition in ((json_tid, debug), (bin_tid, bin_debug)):
            stages = decomposition.get("stages", {})
            for stage in ("parse", "queue", "batch", "compute", "serialize"):
                if stage not in stages:
                    raise AssertionError(
                        f"{self.name}: stage {stage!r} missing from "
                        f"decomposition of {tid}: {stages!r}"
                    )
            events = [
                e
                for e in world.events.recent()
                if e.get("event") == "request" and e.get("trace_id") == tid
            ]
            if not events:
                raise AssertionError(
                    f"{self.name}: no event-log line for trace {tid}"
                )
            ev = events[-1]
            if sum(ev["stages"].values()) > ev["seconds"] + 1e-9:
                raise AssertionError(
                    f"{self.name}: stage sum {ev['stages']} exceeds wall "
                    f"time {ev['seconds']} for trace {tid}"
                )
        recent = world.client.debug_requests()["recent"]
        seen = {e["trace_id"] for e in recent}
        for tid in (json_tid, bin_tid):
            if tid not in seen:
                raise AssertionError(
                    f"{self.name}: trace {tid} absent from /debug/requests "
                    f"(saw {sorted(seen)[:8]!r}...)"
                )


class InstrumentedAdapter(EngineAdapter):
    """An engine adapter run with observability on — and proven harmless.

    Wraps another adapter and, per case, answers the same queries twice:
    once with instrumentation forced **off**, once with a fresh
    :class:`~repro.obs.metrics.MetricsRegistry` and
    :class:`~repro.obs.trace.TraceRecorder` installed.  It raises (which
    the fuzz loop converts into a counterexample) unless

    * the metrics-on answers equal the metrics-off answers bit-for-bit,
    * the span stack is balanced after the case (every span entered was
      exited), and
    * the registry actually observed the workload (instrumentation that
      silently stopped recording is also a regression).

    The metrics-on answers are returned, so the differential loop
    additionally checks them against the brute-force oracle.
    """

    def __init__(self, inner: EngineAdapter) -> None:
        self.inner = inner
        self.name = f"{inner.name}-obs"
        self.family = inner.family
        self.failure_kind = inner.failure_kind
        self.max_edges = inner.max_edges

    def agree(self, got: float, expected: float) -> bool:
        return self.inner.agree(got, expected)

    def distances(self, ctx, failure, pairs):
        from repro.obs import MetricsRegistry, TraceRecorder
        from repro.obs import hooks as obs_hooks

        with obs_hooks.disabled():
            baseline = self.inner.distances(ctx, failure, pairs)
        registry = MetricsRegistry()
        recorder = TraceRecorder(capacity=256)
        with obs_hooks.installed(registry, recorder):
            got = self.inner.distances(ctx, failure, pairs)
        if not recorder.balanced:
            raise AssertionError(
                f"{self.name}: span stack unbalanced after case "
                f"(open={recorder.open_spans()}, "
                f"started={recorder.total_started}, "
                f"finished={recorder.total_finished})"
            )
        if len(registry) == 0:
            raise AssertionError(
                f"{self.name}: registry recorded nothing — "
                "instrumentation hooks appear disconnected"
            )
        if list(got) != list(baseline):
            raise AssertionError(
                f"{self.name}: metrics-on answers differ from metrics-off "
                f"({got!r} != {baseline!r})"
            )
        return got


class _ShardedWorld:
    """One out-of-core segment store tied to a WorldContext's lifetime.

    The fuzzed graph is rebuilt through :func:`build_sief_sharded` with a
    deliberately tiny shard size (so even small instances spill across
    several shards), and the store's rebuilt index is proven bit-identical
    to the in-RAM reference via ``index_to_bytes`` before any answer is
    served from it.
    """

    SHARD_SIZE = 4
    LRU_CAPACITY = 3

    def __init__(self, ctx: "WorldContext") -> None:
        import tempfile

        from repro.core.lazy import PagedSIEFIndex
        from repro.core.query import SIEFQueryEngine
        from repro.core.segstore import SegmentStore, build_sief_sharded
        from repro.core.serialize import index_to_bytes

        self.tmp = tempfile.TemporaryDirectory(prefix="sief-shard-fuzz-")
        path, self.report = build_sief_sharded(
            ctx.graph,
            f"{self.tmp.name}/store",
            labeling=ctx.labeling(),
            shard_size=self.SHARD_SIZE,
        )
        self.store = SegmentStore(path)
        rebuilt = self.store.to_index()
        reference = ctx.sief_index()
        if index_to_bytes(rebuilt) != index_to_bytes(reference):
            raise AssertionError(
                "sharded-build: index rebuilt from segments is not "
                "bit-identical to the in-RAM reference"
            )
        self.rebuilt_engine = SIEFQueryEngine(rebuilt)
        # Capacity far below the case count, so the paged engine pages
        # and evicts on nearly every fuzzed failure.
        self.paged_engine = SIEFQueryEngine(
            PagedSIEFIndex(self.store, capacity=self.LRU_CAPACITY)
        )

    def close(self) -> None:
        self.store.close()
        self.tmp.cleanup()


def _sharded_world(ctx: "WorldContext") -> _ShardedWorld:
    import weakref

    world = ctx._cache.get("sharded_world")
    if world is None:
        world = _ShardedWorld(ctx)
        ctx._cache["sharded_world"] = world
        weakref.finalize(ctx, world.close)
    return world


class SIEFShardedBuildAdapter(EngineAdapter):
    """Batch queries on an index rebuilt from an out-of-core spill.

    Materializing the world runs the full shard → spill → mmap-load
    round trip on every fuzzed instance and asserts ``index_to_bytes``
    equality with the in-RAM build, so this adapter checks the sharded
    *construction* path while its answers go to ground truth (ISSUE 9).
    """

    name = "sief-sharded-build"

    def distances(self, ctx, failure, pairs):
        engine = _sharded_world(ctx).rebuilt_engine
        return [float(d) for d in engine.batch_query(failure[1:3], list(pairs))]


class SIEFPagedAdapter(EngineAdapter):
    """Queries answered through the demand-paged LRU index.

    The engine holds at most :attr:`_ShardedWorld.LRU_CAPACITY` failure
    cases resident; every fuzzed failure beyond that forces an mmap read
    plus an eviction, so the whole paging path — TOC lookup, record
    decode, LRU churn — is exercised against ground truth (ISSUE 9).
    """

    name = "sief-paged"

    def distances(self, ctx, failure, pairs):
        engine = _sharded_world(ctx).paged_engine
        edge = failure[1:3]
        return _scalar_loop(lambda s, t: engine.distance(s, t, edge), pairs)


ADAPTERS: Dict[str, EngineAdapter] = {
    adapter.name: adapter
    for adapter in (
        SIEFScalarAdapter(),
        SIEFCaseAdapter(),
        SIEFBatchAdapter(),
        SIEFFrozenAdapter(),
        SIEFBatchedBuildAdapter(),
        LazySIEFAdapter(),
        UnitWeightedAdapter(),
        BFSBaselineAdapter(),
        BidirectionalBFSAdapter(),
        NaiveRebuildAdapter(),
        WeightedSIEFAdapter(),
        DijkstraBaselineAdapter(),
        DirectedSIEFAdapter(),
        NodeFailureAdapter(),
        DualFailureAdapter(),
        # The serving layer: queries answered by a live in-process HTTP
        # server over an npz-mmap round-trip of the index (ISSUE 7).
        ServeConformanceAdapter(),
        # Kernel-tier differential adapters: the accelerated (numba /
        # C-extension) kernels must answer and build bit-identically to
        # the pure-numpy tier on every fuzzed instance (ISSUE 6).
        KernelTierBatchAdapter(),
        KernelTierBuildAdapter(),
        # Out-of-core differential adapters: the sharded spill/rebuild
        # and the demand-paged LRU engine must match the in-RAM build
        # bit-for-bit on every fuzzed instance (ISSUE 9).
        SIEFShardedBuildAdapter(),
        SIEFPagedAdapter(),
        # Instrumented variants: same engines with metrics+tracing on,
        # proving observability never changes answers (ISSUE 3).
        InstrumentedAdapter(SIEFScalarAdapter()),
        InstrumentedAdapter(SIEFBatchAdapter()),
        InstrumentedAdapter(LazySIEFAdapter()),
    )
}
"""Registry of every conformance-checked query path, keyed by name."""


def derive_weighted_edges(
    edges: Sequence[Tuple[int, int]], seed: int
) -> List[Tuple[int, int, float]]:
    """Attach deterministic pseudo-random weights to an edge list.

    Weights are multiples of 0.5 in [0.5, 4.0]: varied enough to force
    genuine Dijkstra orderings, exactly representable so the weighted
    engines' tolerance comparisons never mask real logic errors.
    """
    rng = random.Random(seed)
    return [(u, v, 0.5 * rng.randint(1, 8)) for u, v in edges]


def derive_directed_arcs(
    edges: Sequence[Tuple[int, int]], seed: int
) -> List[Tuple[int, int]]:
    """Orient an undirected edge list into a digraph arc list.

    Each edge becomes a forward arc, a backward arc, or both — so the
    derived digraphs mix one-way streets with reciprocal links, the
    regime where the directed engine's overlapping-sides logic is
    actually exercised.
    """
    rng = random.Random(seed)
    arcs: List[Tuple[int, int]] = []
    for u, v in edges:
        roll = rng.random()
        if roll < 0.4:
            arcs.append((u, v))
        elif roll < 0.8:
            arcs.append((v, u))
        else:
            arcs.extend(((u, v), (v, u)))
    return arcs
