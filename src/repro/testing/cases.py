"""Counterexample records: self-contained, replayable failure reports.

A :class:`Counterexample` captures everything needed to reproduce one
conformance mismatch with no reference to the fuzz run that found it:
the graph family and edge list, the ordering strategy (plus seed for the
``random`` strategy), the failure, the query pair, and the adapter that
answered wrongly.  :func:`recheck` rebuilds the world from scratch and
re-runs the single failing query — the primitive both the shrinker and
the corpus replay are built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.testing.adapters import ADAPTERS, WorldContext

Failure = Tuple


@dataclass
class Counterexample:
    """One minimal (graph, failure, s, t) conformance violation."""

    adapter: str
    family: str
    num_vertices: int
    edges: List[Tuple]
    failure: Failure
    s: int
    t: int
    ordering: str = "degree"
    ordering_seed: int = 0
    expected: float = math.nan
    got: float = math.nan
    #: Where it came from (generator name, fuzz seed, round) — enough to
    #: re-run the originating fuzz round from the CLI.
    provenance: dict = field(default_factory=dict)

    def context(self) -> WorldContext:
        """Rebuild the world this counterexample lives in."""
        return WorldContext(
            self.family,
            self.num_vertices,
            self.edges,
            ordering_name=self.ordering,
            ordering_seed=self.ordering_seed,
        )

    def describe(self) -> str:
        f = self.failure
        return (
            f"[{self.adapter}] n={self.num_vertices} m={len(self.edges)} "
            f"ordering={self.ordering} failure={f} query=({self.s},{self.t}) "
            f"expected={self.expected} got={self.got}"
        )


class RecheckResult:
    """Outcome of replaying one counterexample against current code."""

    __slots__ = ("mismatch", "expected", "got", "error")

    def __init__(
        self,
        mismatch: bool,
        expected: float = math.nan,
        got: float = math.nan,
        error: Optional[str] = None,
    ) -> None:
        self.mismatch = mismatch
        self.expected = expected
        self.got = got
        self.error = error


def recheck(cx: Counterexample) -> RecheckResult:
    """Rebuild the counterexample's world and re-run its single query.

    Returns a mismatch (True) when the adapter still disagrees with the
    brute-force oracle — or crashes, which the shrinker treats as just
    as interesting as a wrong answer.
    """
    adapter = ADAPTERS[cx.adapter]
    pairs = [(cx.s, cx.t)]
    try:
        ctx = cx.context()
        expected = adapter.truth(ctx, cx.failure, pairs)[0]
        got = adapter.distances(ctx, cx.failure, pairs)[0]
    except Exception as exc:  # crash == conformance failure
        return RecheckResult(True, error=f"{type(exc).__name__}: {exc}")
    return RecheckResult(not adapter.agree(got, expected), expected, got)
