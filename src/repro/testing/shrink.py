"""Greedy counterexample minimization.

A raw fuzz counterexample arrives on a ~20-vertex random graph; nobody
debugs those.  The shrinker reduces it to a locally minimal
``(graph, failure, s, t)`` quadruple the way hypothesis/QuickCheck
shrink: propose a structurally smaller candidate, replay the single
failing query from scratch (:func:`repro.testing.cases.recheck`), keep
the candidate iff the mismatch survives, repeat to a fixed point.

Two move kinds, applied in alternating passes until neither helps:

* **vertex deletion** — drop one non-pinned vertex and every incident
  edge, compacting ids (the failure endpoints and the query pair are
  pinned);
* **edge deletion** — drop one non-failed edge.

Every candidate rebuilds its index from nothing, so a shrunk
counterexample is replayable in isolation — no shared state with the
fuzz run that produced it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Set, Tuple

from repro.testing.cases import Counterexample, recheck

Failure = Tuple


def _pinned_vertices(cx: Counterexample) -> Set[int]:
    pinned = {cx.s, cx.t}
    kind = cx.failure[0]
    if kind in ("edge", "arc"):
        pinned.update(cx.failure[1:3])
    elif kind == "node":
        pinned.add(cx.failure[1])
    elif kind == "dual":
        pinned.update(cx.failure[1])
        pinned.update(cx.failure[2])
    return pinned


def _protected_edges(cx: Counterexample) -> Set[Tuple[int, int]]:
    """Edges the candidate graph must keep (both orientations listed)."""
    kind = cx.failure[0]
    protected: Set[Tuple[int, int]] = set()
    if kind == "edge":
        u, v = cx.failure[1:3]
        protected.update(((u, v), (v, u)))
    elif kind == "arc":
        protected.add(tuple(cx.failure[1:3]))
    elif kind == "dual":
        for u, v in (cx.failure[1], cx.failure[2]):
            protected.update(((u, v), (v, u)))
    return protected


def _remap_failure(failure: Failure, remap) -> Failure:
    kind = failure[0]
    if kind in ("edge", "arc"):
        return (kind, remap(failure[1]), remap(failure[2]))
    if kind == "node":
        return (kind, remap(failure[1]))
    if kind == "dual":
        (a, b), (c, d) = failure[1], failure[2]
        return (kind, (remap(a), remap(b)), (remap(c), remap(d)))
    raise ValueError(f"unknown failure kind {kind!r}")


def _without_vertex(cx: Counterexample, v: int) -> Counterexample:
    """Candidate with vertex ``v`` (and incident edges) removed."""

    def remap(x: int) -> int:
        return x - 1 if x > v else x

    edges = [
        (remap(e[0]), remap(e[1]), *e[2:])
        for e in cx.edges
        if v not in e[:2]
    ]
    return replace(
        cx,
        num_vertices=cx.num_vertices - 1,
        edges=edges,
        failure=_remap_failure(cx.failure, remap),
        s=remap(cx.s),
        t=remap(cx.t),
    )


def _without_edge(cx: Counterexample, i: int) -> Counterexample:
    edges = list(cx.edges)
    del edges[i]
    return replace(cx, edges=edges)


def shrink(cx: Counterexample, max_checks: int = 500) -> Counterexample:
    """Minimize ``cx`` while its recheck keeps failing.

    ``max_checks`` bounds the number of from-scratch replays (each one
    rebuilds an index); the result is locally minimal when the budget
    allows a full quiet pass, and simply smaller otherwise.
    """
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False

        # Vertex pass, highest id first so compaction never disturbs the
        # vertices still queued for trial.
        pinned = _pinned_vertices(cx)
        for v in range(cx.num_vertices - 1, -1, -1):
            if v in pinned or checks >= max_checks:
                continue
            candidate = _without_vertex(cx, v)
            checks += 1
            result = recheck(candidate)
            if result.mismatch:
                cx = replace(
                    candidate, expected=result.expected, got=result.got
                )
                pinned = _pinned_vertices(cx)
                improved = True

        # Edge pass.
        protected = _protected_edges(cx)
        i = len(cx.edges) - 1
        while i >= 0 and checks < max_checks:
            if tuple(cx.edges[i][:2]) not in protected:
                candidate = _without_edge(cx, i)
                checks += 1
                result = recheck(candidate)
                if result.mismatch:
                    cx = replace(
                        candidate, expected=result.expected, got=result.got
                    )
                    improved = True
            i -= 1
    return cx
