"""Regression corpus: persisted minimal counterexamples.

Every counterexample the fuzzer finds (after shrinking) is written as a
small JSON file under ``tests/corpus/``.  The normal pytest run replays
each file (``tests/test_corpus.py``): a mismatch that once slipped
through stays fixed forever, the way fuzzing corpora work in OSS-Fuzz
and AFL projects.

Files are content-addressed (adapter name + digest of the canonical
payload), so re-finding the same minimal counterexample is idempotent
and merge conflicts between fuzz runs cannot happen.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Iterator, List, Tuple, Union

from repro.testing.cases import Counterexample

FORMAT_VERSION = 1


def _encode_dist(x: float) -> Union[float, str]:
    if math.isinf(x):
        return "inf"
    if math.isnan(x):
        return "nan"
    return x


def _decode_dist(x: Union[float, str]) -> float:
    if x == "inf":
        return math.inf
    if x == "nan":
        return math.nan
    return float(x)


def _decode_failure(raw: List) -> Tuple:
    kind = raw[0]
    if kind == "dual":
        return (kind, tuple(raw[1]), tuple(raw[2]))
    return tuple([kind] + [int(x) for x in raw[1:]])


def to_payload(cx: Counterexample) -> dict:
    """JSON-safe dict for one counterexample."""
    return {
        "format": FORMAT_VERSION,
        "adapter": cx.adapter,
        "family": cx.family,
        "num_vertices": cx.num_vertices,
        "edges": [list(e) for e in cx.edges],
        "failure": list(
            cx.failure
            if cx.failure[0] != "dual"
            else (cx.failure[0], list(cx.failure[1]), list(cx.failure[2]))
        ),
        "s": cx.s,
        "t": cx.t,
        "ordering": cx.ordering,
        "ordering_seed": cx.ordering_seed,
        "expected": _encode_dist(cx.expected),
        "got": _encode_dist(cx.got),
        "provenance": cx.provenance,
    }


def from_payload(payload: dict) -> Counterexample:
    """Rebuild a counterexample from its JSON payload."""
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported corpus format {payload.get('format')!r} "
            f"(this build reads format {FORMAT_VERSION})"
        )
    return Counterexample(
        adapter=payload["adapter"],
        family=payload["family"],
        num_vertices=int(payload["num_vertices"]),
        edges=[tuple(e) for e in payload["edges"]],
        failure=_decode_failure(payload["failure"]),
        s=int(payload["s"]),
        t=int(payload["t"]),
        ordering=payload.get("ordering", "degree"),
        ordering_seed=int(payload.get("ordering_seed", 0)),
        expected=_decode_dist(payload.get("expected", "nan")),
        got=_decode_dist(payload.get("got", "nan")),
        provenance=payload.get("provenance", {}),
    )


def corpus_name(cx: Counterexample) -> str:
    """Content-addressed filename for a counterexample."""
    payload = to_payload(cx)
    payload.pop("provenance", None)  # provenance varies run to run
    payload.pop("got", None)  # depends on the buggy code, not the case
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    return f"{cx.adapter}-{digest}.json"


def save_counterexample(cx: Counterexample, directory: Union[str, Path]) -> Path:
    """Write one counterexample; returns its path (idempotent)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / corpus_name(cx)
    path.write_text(json.dumps(to_payload(cx), indent=2, sort_keys=True) + "\n")
    return path


def load_counterexample(path: Union[str, Path]) -> Counterexample:
    """Read one corpus file back into a counterexample."""
    return from_payload(json.loads(Path(path).read_text()))


def iter_corpus(
    directory: Union[str, Path]
) -> Iterator[Tuple[Path, Counterexample]]:
    """Yield ``(path, counterexample)`` for every corpus file, sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path, load_counterexample(path)
