"""Error hierarchy for the ``repro`` package.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library errors with one clause
while letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex, bad edge, ...)."""


class VertexNotFound(GraphError):
    """A vertex id is outside the graph's vertex range."""

    def __init__(self, vertex: int, n: int) -> None:
        super().__init__(f"vertex {vertex} not in graph with {n} vertices")
        self.vertex = vertex
        self.n = n


class EdgeNotFound(GraphError):
    """An edge does not exist in the graph."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u}, {v}) not in graph")
        self.u = u
        self.v = v


class LabelingError(ReproError):
    """A 2-hop labeling is malformed or inconsistent with its graph."""


class NotWellOrdered(LabelingError):
    """A labeling violates the well-ordering property (Definition 1)."""


class IndexError_(ReproError):
    """A SIEF index is malformed or queried inconsistently."""


class FailureCaseNotIndexed(IndexError_):
    """A query named a failed edge with no supplemental index."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(
            f"no supplemental index for failed edge ({u}, {v}); "
            "was the edge part of the indexed graph?"
        )
        self.u = u
        self.v = v


class SerializationError(ReproError):
    """Persisted index/graph bytes could not be parsed."""


class StoreError(SerializationError):
    """An on-disk segment store is corrupt or internally inconsistent.

    Raised by :mod:`repro.core.segstore` whenever the table of contents
    and the segment file disagree — truncated segments, offset/length
    mismatches, records past EOF.  The store refuses to answer rather
    than risk returning wrong distances.
    """


class DatasetError(ReproError):
    """A benchmark dataset could not be generated or loaded."""


class KernelTierError(ReproError):
    """An explicitly requested kernel tier is unknown or unavailable.

    Raised only for *explicit* selections (``SIEF_KERNELS=numba``,
    ``sief --kernels numba``) — the ``auto`` tier never raises, it falls
    through to the next available backend and ultimately pure numpy.
    """
