"""Distance-based resilience profiles for failure-prone networks.

Given a SIEF index, sample failures and query pairs and summarize how the
network degrades: what fraction of pairs get disconnected, how much the
surviving pairs stretch, and which failures hurt most.  This is the
"unstable networks" monitoring use case the paper's motivation sketches
(Web of Things devices dropping links, web graphs losing URLs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.index import SIEFIndex
from repro.core.query import SIEFQueryEngine
from repro.exceptions import ReproError
from repro.graph.graph import normalize_edge
from repro.labeling.query import INF, dist_query

Edge = Tuple[int, int]


@dataclass(frozen=True)
class ResilienceProfile:
    """Aggregate degradation statistics over a failure/query sample."""

    queries: int
    unchanged: int
    stretched: int
    disconnected: int
    mean_stretch: float
    max_stretch: float

    @property
    def disconnect_rate(self) -> float:
        """Fraction of sampled (pair, failure) events losing connectivity."""
        return self.disconnected / self.queries if self.queries else 0.0

    @property
    def affected_rate(self) -> float:
        """Fraction of events whose distance changed at all."""
        if not self.queries:
            return 0.0
        return (self.stretched + self.disconnected) / self.queries


def resilience_profile(
    index: SIEFIndex,
    num_queries: int = 1000,
    seed: int = 0,
) -> ResilienceProfile:
    """Monte-Carlo resilience estimate from uniform pair/failure samples.

    Pairs disconnected *before* the failure are skipped (resampled) — the
    profile measures degradation, not baseline fragmentation.
    """
    labeling = index.labeling
    engine = SIEFQueryEngine(index)
    edges = [edge for edge, _ in index.iter_cases()]
    n = labeling.num_vertices
    if not edges or n < 2:
        raise ReproError("index too small for a resilience profile")
    rng = random.Random(seed)

    unchanged = stretched = disconnected = 0
    stretch_total = 0.0
    stretch_max = 0.0
    done = 0
    guard = 0
    while done < num_queries and guard < 50 * num_queries:
        guard += 1
        s = rng.randrange(n)
        t = rng.randrange(n)
        if s == t:
            continue
        base = dist_query(labeling, s, t)
        if base == INF:
            continue
        edge = rng.choice(edges)
        after = engine.distance(s, t, edge)
        done += 1
        if after == INF:
            disconnected += 1
        elif after == base:
            unchanged += 1
        else:
            stretched += 1
            stretch = after / base
            stretch_total += stretch
            stretch_max = max(stretch_max, stretch)
    if done < num_queries:
        raise ReproError(
            "could not sample enough connected pairs; "
            "is the graph almost edgeless?"
        )
    return ResilienceProfile(
        queries=done,
        unchanged=unchanged,
        stretched=stretched,
        disconnected=disconnected,
        mean_stretch=stretch_total / stretched if stretched else 1.0,
        max_stretch=stretch_max,
    )


def failure_impact_histogram(
    index: SIEFIndex, top: int = 10
) -> List[Tuple[Edge, int]]:
    """Failure cases ranked by affected-vertex count (worst first).

    A zero-query structural view: the per-edge ``|AU|`` the index already
    stores is itself an impact measure (how many vertices lose some
    distance), so ranking needs no sampling at all.
    """
    impact: Dict[Edge, int] = {
        normalize_edge(*edge): si.affected.total
        for edge, si in index.iter_cases()
    }
    ranked = sorted(impact.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]
