"""Most vital arc (Scenario 1, §1; Iwano & Katoh, IPL 1993).

The most vital arc of a pair ``(s, t)`` is the edge whose removal
maximizes the replacement-path length.  Only edges on some shortest
``s``–``t`` path can change the distance (Lemma 6), so the search space
is the shortest-path DAG's edges, and each candidate costs one SIEF query
instead of one BFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.core.index import SIEFIndex
from repro.core.query import SIEFQueryEngine
from repro.exceptions import ReproError
from repro.graph.graph import normalize_edge
from repro.graph.traversal import UNREACHED, bfs_distances
from repro.labeling.query import INF, dist_query

Edge = Tuple[int, int]
Distance = Union[int, float]


@dataclass(frozen=True)
class VitalArcResult:
    """Outcome of a most-vital-arc search for one pair."""

    s: int
    t: int
    base_distance: Distance
    edge: Edge
    replacement_distance: Distance

    @property
    def penalty(self) -> Distance:
        """Extra distance the failure forces (``inf`` if it cuts the pair)."""
        if self.replacement_distance == INF:
            return INF
        return self.replacement_distance - self.base_distance


def shortest_path_dag_edges(graph, s: int, t: int) -> List[Edge]:
    """Edges lying on at least one shortest ``s``–``t`` path.

    An edge ``(a, b)`` qualifies iff
    ``d(s,a) + 1 + d(b,t) == d(s,t)`` in either orientation.
    """
    from_s = bfs_distances(graph, s)
    from_t = bfs_distances(graph, t)
    if from_s[t] == UNREACHED:
        return []
    base = from_s[t]
    edges: List[Edge] = []
    for a, b in graph.edges():
        if UNREACHED in (from_s[a], from_s[b], from_t[a], from_t[b]):
            continue
        if (
            from_s[a] + 1 + from_t[b] == base
            or from_s[b] + 1 + from_t[a] == base
        ):
            edges.append((a, b))
    return edges


def rank_vital_arcs(
    graph, index: SIEFIndex, s: int, t: int
) -> List[VitalArcResult]:
    """All candidate arcs for ``(s, t)`` ranked by replacement distance.

    Raises :class:`ReproError` if the pair is disconnected (no shortest
    path to attack).
    """
    base = dist_query(index.labeling, s, t)
    if base == INF:
        raise ReproError(f"vertices {s} and {t} are disconnected")
    engine = SIEFQueryEngine(index)
    results = [
        VitalArcResult(
            s=s,
            t=t,
            base_distance=base,
            edge=normalize_edge(a, b),
            replacement_distance=engine.distance(s, t, (a, b)),
        )
        for a, b in shortest_path_dag_edges(graph, s, t)
    ]
    results.sort(key=lambda r: (-(r.replacement_distance), r.edge))
    return results


def most_vital_arc(graph, index: SIEFIndex, s: int, t: int) -> VitalArcResult:
    """The single edge whose failure hurts the pair ``(s, t)`` most."""
    ranked = rank_vital_arcs(graph, index, s, t)
    if not ranked:  # pragma: no cover - connected pairs always have arcs
        raise ReproError(f"no shortest-path edges between {s} and {t}")
    return ranked[0]


def k_most_vital_edges(graph, s: int, t: int, k: int) -> List[VitalArcResult]:
    """Greedy ``k``-most-vital-edges for one pair (Bazgan et al. flavor).

    Repeatedly removes the currently most vital arc and re-solves on the
    shrunk graph.  Exact ``k``-most-vital is NP-hard, so this is the
    standard greedy heuristic; each step's choice *is* exact (via a SIEF
    index over just that step's candidate edges, which is cheap because
    only shortest-path-DAG edges can matter).

    Stops early — returning fewer than ``k`` results — once a removal
    disconnects the pair (the last result carries the infinite
    replacement distance).

    The input graph is not modified.
    """
    from repro.core.builder import SIEFBuilder
    from repro.labeling.pll import build_pll

    if k < 1:
        raise ReproError(f"k must be >= 1, got {k}")
    work = graph.copy()
    results: List[VitalArcResult] = []
    for _ in range(k):
        candidates = shortest_path_dag_edges(work, s, t)
        if not candidates:
            break
        labeling = build_pll(work)
        index, _report = SIEFBuilder(work, labeling).build(edges=candidates)
        result = most_vital_arc(work, index, s, t)
        results.append(result)
        work.remove_edge(*result.edge)
        if result.replacement_distance == INF:
            break
    return results
