"""Vickrey pricing / edge worth (Scenarios 2–3, §1; Hershberger & Suri,
FOCS 2001).

"How much is an edge worth to a user who wants to send data between two
nodes along a shortest path?"  For an unweighted graph the natural answer
is the *detour penalty*: ``d_{G-e}(s, t) - d_G(s, t)`` — zero for edges
off every shortest path (Lemma 6), positive (possibly infinite) for
load-bearing ones.  Aggregating penalties over a demand matrix yields
per-edge prices a road agency (Scenario 2) or bandwidth market
(Scenario 3) could act on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

from repro.core.index import SIEFIndex
from repro.core.query import SIEFQueryEngine
from repro.graph.graph import normalize_edge
from repro.labeling.query import INF, dist_query

Edge = Tuple[int, int]
Distance = Union[int, float]

Demand = Tuple[int, int, float]
"""One traffic demand: (source, target, volume)."""


@dataclass(frozen=True)
class EdgeWorth:
    """Detour penalty of one edge for one pair."""

    edge: Edge
    s: int
    t: int
    base_distance: Distance
    detour_distance: Distance

    @property
    def penalty(self) -> Distance:
        """Extra hops forced by avoiding the edge (0 = edge is free to lose)."""
        if self.detour_distance == INF:
            return INF
        return self.detour_distance - self.base_distance


def edge_worth(index: SIEFIndex, edge: Edge, s: int, t: int) -> EdgeWorth:
    """Worth of ``edge`` to a user routing ``s -> t``."""
    engine = SIEFQueryEngine(index)
    base = dist_query(index.labeling, s, t)
    detour = engine.distance(s, t, edge)
    return EdgeWorth(
        edge=normalize_edge(*edge),
        s=s,
        t=t,
        base_distance=base,
        detour_distance=detour,
    )


def vickrey_prices(
    index: SIEFIndex,
    demands: Iterable[Demand],
    edges: Iterable[Edge],
    disconnect_penalty: float = float("inf"),
) -> Dict[Edge, float]:
    """Volume-weighted total penalty per edge over a demand matrix.

    Parameters
    ----------
    index:
        A SIEF index of the network.
    demands:
        ``(s, t, volume)`` triples.
    edges:
        The edges to price (e.g. tolled road segments).
    disconnect_penalty:
        Charge per unit volume when avoiding the edge disconnects the
        pair; defaults to infinity, set finite to model "reroute via
        another network".
    """
    engine = SIEFQueryEngine(index)
    labeling = index.labeling
    demand_list: List[Demand] = list(demands)
    prices: Dict[Edge, float] = {}
    for edge in edges:
        key = normalize_edge(*edge)
        total = 0.0
        for s, t, volume in demand_list:
            base = dist_query(labeling, s, t)
            if base == INF:
                continue  # pair never routable; the edge owes it nothing
            detour = engine.distance(s, t, key)
            if detour == INF:
                total += volume * disconnect_penalty
            else:
                total += volume * (detour - base)
        prices[key] = total
    return prices
