"""Closeness centrality and its sensitivity to edge failures.

§1 of the paper: "for online social networks, the shortest path distance
can be used to measure the closeness centrality between users."  This
module computes closeness from a 2-hop labeling and, with a SIEF index,
answers the monitoring question behind it: *how much does a failure move
the centrality ranking?*
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.index import SIEFIndex
from repro.core.query import SIEFQueryEngine
from repro.exceptions import ReproError
from repro.labeling.label import Labeling
from repro.labeling.query import INF, dist_query

Edge = Tuple[int, int]


def closeness_centrality(
    labeling: Labeling,
    vertices: Optional[Sequence[int]] = None,
    sample: Optional[int] = None,
    seed: int = 0,
) -> Dict[int, float]:
    """Closeness ``(reachable - 1) / sum of distances`` per vertex.

    Computed purely from label queries.  ``vertices`` restricts which
    vertices get a score; ``sample`` estimates each score from a random
    target sample instead of all ``n`` targets (the usual trade on large
    graphs).  Isolated vertices score 0.
    """
    n = labeling.num_vertices
    targets_all = list(range(n))
    if sample is not None and sample < n:
        targets_all = random.Random(seed).sample(targets_all, sample)
    scores: Dict[int, float] = {}
    for v in vertices if vertices is not None else range(n):
        total = 0
        reachable = 0
        for t in targets_all:
            if t == v:
                continue
            d = dist_query(labeling, v, t)
            if d != INF:
                total += d
                reachable += 1
        scores[v] = reachable / total if total else 0.0
    return scores


@dataclass(frozen=True)
class CentralityShift:
    """How one failure changes one vertex's closeness."""

    vertex: int
    before: float
    after: float

    @property
    def relative_drop(self) -> float:
        """Fraction of closeness lost (0 = unaffected)."""
        if self.before == 0.0:
            return 0.0
        return max(0.0, (self.before - self.after) / self.before)


def closeness_under_failure(
    index: SIEFIndex,
    failed_edge: Edge,
    vertices: Sequence[int],
) -> Dict[int, float]:
    """Closeness of ``vertices`` in ``G - failed_edge`` via SIEF queries."""
    engine = SIEFQueryEngine(index)
    n = index.labeling.num_vertices
    scores: Dict[int, float] = {}
    for v in vertices:
        total = 0
        reachable = 0
        for t in range(n):
            if t == v:
                continue
            d = engine.distance(v, t, failed_edge)
            if d != INF:
                total += d
                reachable += 1
        scores[v] = reachable / total if total else 0.0
    return scores


def centrality_sensitivity(
    index: SIEFIndex,
    failed_edge: Edge,
    top: int = 10,
    vertices: Optional[Sequence[int]] = None,
) -> List[CentralityShift]:
    """The vertices whose closeness a failure hurts most, worst first.

    By default only the failure's *affected* vertices are scored — the
    unaffected ones keep every distance, hence their exact closeness,
    untouched... except for pairs whose partner got disconnected, which
    is why affected vertices are the interesting set to monitor.
    """
    si = index.supplement(*failed_edge)
    if vertices is None:
        vertices = list(si.affected.side_u) + list(si.affected.side_v)
    if not vertices:
        raise ReproError("no vertices to score")
    before = closeness_centrality(index.labeling, vertices=vertices)
    after = closeness_under_failure(index, failed_edge, vertices)
    shifts = [
        CentralityShift(v, before[v], after[v]) for v in vertices
    ]
    shifts.sort(key=lambda s: (-s.relative_drop, s.vertex))
    return shifts[:top]
