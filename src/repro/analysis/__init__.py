"""Applications from the paper's introduction (§1, Scenarios 1–3).

* :mod:`repro.analysis.vital_arc` — the most vital arc problem
  (Scenario 1): which edge's failure lengthens a pair's shortest path the
  most.
* :mod:`repro.analysis.vickrey` — Vickrey pricing / edge worth
  (Scenarios 2–3): the penalty of avoiding an edge, over a traffic
  demand set.
* :mod:`repro.analysis.resilience` — distance-based resilience profiles:
  how pairwise reachability and stretch degrade over failure samples.

All three consume a prebuilt :class:`~repro.core.index.SIEFIndex`, which
is exactly the paper's pitch: one index, many failure analyses, each
query in microseconds.
"""

from repro.analysis.vital_arc import (
    VitalArcResult,
    k_most_vital_edges,
    most_vital_arc,
    rank_vital_arcs,
)
from repro.analysis.vickrey import EdgeWorth, edge_worth, vickrey_prices
from repro.analysis.centrality import (
    CentralityShift,
    centrality_sensitivity,
    closeness_centrality,
    closeness_under_failure,
)
from repro.analysis.resilience import (
    ResilienceProfile,
    resilience_profile,
    failure_impact_histogram,
)

__all__ = [
    "VitalArcResult",
    "most_vital_arc",
    "rank_vital_arcs",
    "k_most_vital_edges",
    "EdgeWorth",
    "edge_worth",
    "vickrey_prices",
    "ResilienceProfile",
    "resilience_profile",
    "failure_impact_histogram",
    "CentralityShift",
    "centrality_sensitivity",
    "closeness_centrality",
    "closeness_under_failure",
]
