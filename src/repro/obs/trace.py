"""Lightweight nestable trace spans with a bounded ring-buffer recorder.

A *span* is one timed region of the build or query pipeline ("pll.build",
"sief.build.case", "sief.query.batch").  Spans nest: entering a span
while another is open records the child at ``depth + 1``, which is
enough structure to reconstruct the call tree of one operation without
the cost of full IDs/links.

Finished spans land in a fixed-capacity ring buffer — the recorder's
memory use is bounded no matter how many spans a long fuzz run or build
produces; old spans are overwritten (``dropped_spans`` counts every
overwrite, so a wrapped buffer is loud, not silent), and
``total_finished`` keeps the true count.  The recorder also tracks the
open-span stack, so the conformance harness can assert after every case
that **every span entered was exited** (``balanced``) — an unbalanced
stack means an instrumentation bug (a span leaked past an exception or
early return).

Parallel builds ship their workers' finished spans back to the parent
as *tracks* (:meth:`TraceRecorder.add_track`): per-worker lists of
records kept separate from the parent's own ring, which is what lets
the Chrome-trace exporter draw one timeline row per worker process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: what ran, how deep, for how long — and when.

    ``start`` is the recorder clock's value at span entry (the same
    monotonic domain as ``seconds``), which is what timeline exporters
    need to place the span on an axis.
    """

    name: str
    depth: int
    seconds: float
    start: float = 0.0


class _Span:
    """Context manager for one open span; always pops, even on error."""

    __slots__ = ("_recorder", "name")

    def __init__(self, recorder: "TraceRecorder", name: str) -> None:
        self._recorder = recorder
        self.name = name

    def __enter__(self) -> "_Span":
        self._recorder._push(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._pop(self.name)


class TraceRecorder:
    """Bounded recorder of nested spans.

    Parameters
    ----------
    capacity:
        Maximum finished spans kept; older ones are overwritten
        ring-buffer style.
    clock:
        Monotonic time source (seconds).  Injectable so tests can drive
        deterministic durations instead of asserting on wall-clock.
    """

    def __init__(self, capacity: int = 1024, clock=time.perf_counter) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._ring: List[Optional[SpanRecord]] = [None] * capacity
        self._next = 0
        self.total_started = 0
        self.total_finished = 0
        self.dropped_spans = 0
        self._stack: List[tuple] = []  # (name, start_time)
        self._tracks: Dict[str, List[SpanRecord]] = {}
        self._dropped_synced = 0

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str) -> _Span:
        """A context manager recording one span named ``name``."""
        return _Span(self, name)

    def _push(self, name: str) -> None:
        self.total_started += 1
        self._stack.append((name, self._clock()))

    def _pop(self, expected_name: str) -> None:
        if not self._stack:
            raise RuntimeError(
                f"span {expected_name!r} exited with no span open"
            )
        name, started = self._stack.pop()
        if name != expected_name:
            raise RuntimeError(
                f"span exit order violated: closing {expected_name!r} "
                f"but innermost open span is {name!r}"
            )
        record = SpanRecord(
            name=name,
            depth=len(self._stack),
            seconds=self._clock() - started,
            start=started,
        )
        if self._ring[self._next] is not None:
            self.dropped_spans += 1
        self._ring[self._next] = record
        self._next = (self._next + 1) % self.capacity
        self.total_finished += 1

    # -- introspection ------------------------------------------------------

    @property
    def depth(self) -> int:
        """Currently open (unfinished) spans."""
        return len(self._stack)

    @property
    def balanced(self) -> bool:
        """True iff every span entered has been exited."""
        return not self._stack and self.total_started == self.total_finished

    def open_spans(self) -> List[str]:
        """Names of currently open spans, outermost first."""
        return [name for name, _ in self._stack]

    def records(self) -> List[SpanRecord]:
        """Finished spans, oldest first (at most ``capacity`` of them)."""
        if self.total_finished < self.capacity:
            return [r for r in self._ring[: self._next] if r is not None]
        return [
            r
            for r in self._ring[self._next :] + self._ring[: self._next]
            if r is not None
        ]

    # -- worker tracks ------------------------------------------------------

    def add_track(self, track: str, records: Iterable[SpanRecord]) -> None:
        """Attach a named list of foreign span records (one per worker).

        Parallel builds call this at the join with each worker's chunk
        spans; the records stay separate from this recorder's own ring
        so exporters can draw one timeline row per worker.  Repeated
        calls with the same track name extend the track (one worker
        process typically builds several chunks).
        """
        self._tracks.setdefault(track, []).extend(records)

    def tracks(self) -> Dict[str, List[SpanRecord]]:
        """Worker tracks added via :meth:`add_track` (name -> records)."""
        return {name: list(recs) for name, recs in self._tracks.items()}

    def sync_registry(self, registry) -> None:
        """Bring a registry's ``trace.dropped_spans`` counter up to date.

        Increments the counter by however many drops happened since the
        last sync, so repeated calls (one per export, say) never double
        count.  Duck-typed on ``registry.counter(name).inc`` to keep
        this module free of a :mod:`repro.obs.metrics` import.
        """
        delta = self.dropped_spans - self._dropped_synced
        if delta > 0:
            registry.counter("trace.dropped_spans").inc(delta)
            self._dropped_synced = self.dropped_spans

    def clear(self) -> None:
        """Drop all finished records and worker tracks.

        The open-span stack, the lifetime ``total_started`` /
        ``total_finished`` counts and the ``dropped_spans`` tally are
        untouched (``balanced`` keeps its meaning across a clear).
        """
        self._ring = [None] * self.capacity
        self._next = 0
        self._tracks = {}

    def __repr__(self) -> str:
        return (
            f"TraceRecorder(finished={self.total_finished}, "
            f"open={self.depth}, capacity={self.capacity})"
        )
