"""Chrome trace-event export: spans (and profiler samples) for Perfetto.

Converts a :class:`~repro.obs.trace.TraceRecorder`'s finished spans —
including per-worker tracks shipped back from a parallel build — into
the Trace Event Format JSON that ``chrome://tracing``, Perfetto and
speedscope all load.  The mapping:

* the parent process's own spans land on ``tid 0`` ("main");
* each worker track (:meth:`TraceRecorder.add_track`) gets its own
  ``tid`` (1, 2, ...) with a ``thread_name`` metadata event, so a
  parallel build renders as one timeline row per worker;
* every span becomes a complete event (``ph: "X"``) with microsecond
  ``ts``/``dur`` normalized so the earliest span starts at 0;
* profiler samples (:class:`~repro.obs.profile.SpanProfiler`) become
  instant events (``ph: "i"``) named after the leaf span, carrying the
  full folded stack in ``args``;
* the recorder's ``dropped_spans`` tally is surfaced as a counter event
  (``ph: "C"``) so a wrapped ring buffer is visible in the timeline.

Every emitted event carries ``ph``/``ts``/``pid``/``tid``/``name`` —
the invariant the schema test pins.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.profile import SpanProfiler
from repro.obs.trace import SpanRecord, TraceRecorder

MAIN_TRACK = "main"
"""Thread name given to the parent recorder's own spans (tid 0)."""


def _span_event(
    rec: SpanRecord, origin: float, pid: int, tid: int
) -> dict:
    return {
        "ph": "X",
        "name": rec.name,
        "cat": "span",
        "ts": (rec.start - origin) * 1e6,
        "dur": rec.seconds * 1e6,
        "pid": pid,
        "tid": tid,
        "args": {"depth": rec.depth},
    }


def _thread_name_event(name: str, pid: int, tid: int) -> dict:
    return {
        "ph": "M",
        "name": "thread_name",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def to_chrome_trace(
    tracer: TraceRecorder,
    profiler: Optional[SpanProfiler] = None,
    pid: int = 0,
    process_name: str = "sief",
) -> dict:
    """The tracer (and optional profiler) as a Trace Event Format dict.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` ready
    for ``json.dump``; load the file in Perfetto / ``chrome://tracing``.
    """
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        },
        _thread_name_event(MAIN_TRACK, pid, 0),
    ]

    main_records = tracer.records()
    tracks = tracer.tracks()
    starts = [r.start for r in main_records]
    for recs in tracks.values():
        starts.extend(r.start for r in recs)
    if profiler is not None:
        starts.extend(ts for ts, _ in profiler.samples)
    origin = min(starts) if starts else 0.0

    for rec in main_records:
        events.append(_span_event(rec, origin, pid, 0))

    tids: Dict[str, int] = {}
    for track_name in sorted(tracks):
        tid = len(tids) + 1
        tids[track_name] = tid
        events.append(_thread_name_event(track_name, pid, tid))
        for rec in tracks[track_name]:
            events.append(_span_event(rec, origin, pid, tid))

    if profiler is not None:
        for ts, stack in profiler.samples:
            events.append(
                {
                    "ph": "i",
                    "name": f"sample:{stack[-1]}",
                    "cat": "sample",
                    "ts": (ts - origin) * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "s": "t",
                    "args": {"stack": ";".join(stack)},
                }
            )

    if tracer.dropped_spans:
        events.append(
            {
                "ph": "C",
                "name": "trace.dropped_spans",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"dropped": tracer.dropped_spans},
            }
        )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_chrome_trace_json(
    tracer: TraceRecorder,
    profiler: Optional[SpanProfiler] = None,
    pid: int = 0,
    process_name: str = "sief",
) -> str:
    """:func:`to_chrome_trace` serialized to a JSON string."""
    return json.dumps(
        to_chrome_trace(tracer, profiler, pid=pid, process_name=process_name)
    )


def write_chrome_trace(
    tracer: TraceRecorder,
    path: Union[str, Path],
    profiler: Optional[SpanProfiler] = None,
    pid: int = 0,
    process_name: str = "sief",
) -> Path:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        to_chrome_trace_json(
            tracer, profiler, pid=pid, process_name=process_name
        ),
        encoding="utf-8",
    )
    return path


def validate_trace_events(doc: dict) -> List[str]:
    """Schema check: problems list (empty = valid).

    Enforces the invariant the acceptance tests pin: a top-level
    ``traceEvents`` list in which every event carries ``ph``, ``ts``,
    ``pid``, ``tid`` and ``name``, with numeric non-negative ``ts`` and
    numeric ``dur`` on complete events.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' missing or not a list"]
    for i, ev in enumerate(events):
        for key in ("ph", "ts", "pid", "tid", "name"):
            if key not in ev:
                problems.append(f"event {i} ({ev.get('name')!r}): no {key!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: ts {ts!r} not a non-negative number")
        if ev.get("ph") == "X" and not isinstance(
            ev.get("dur"), (int, float)
        ):
            problems.append(f"event {i}: complete event without numeric dur")
    return problems
