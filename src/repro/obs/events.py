"""Structured JSON-lines event log: bounded ring + optional file sink.

Metrics aggregate; events narrate.  One :class:`EventLog` per serving
process records discrete happenings — a request finishing, a micro-batch
flushing, a paging burst — as flat JSON objects that share a ``trace_id``
vocabulary with :mod:`repro.obs.context`, so ``grep <trace-id>`` over
the sink reconstructs one request's whole journey.

Cost control is explicit, because an event per request at production
rates is a firehose:

* **head sampling** — :meth:`EventLog.sampled` decides from the trace
  id alone (crc32 of the id against ``sample``), so the keep/drop
  verdict is deterministic, reproducible across processes, and made
  once at the head of the request, not per event — every event for a
  sampled trace is kept, every event for an unsampled one dropped,
  never a partial story;
* **slow/error bypass** — events flagged ``slow=True`` or
  ``error=True`` are always recorded, whatever the sampling rate: the
  requests an operator needs are exactly the ones head sampling would
  lose at low rates;
* **bounded memory** — the in-process ring keeps the newest
  ``capacity`` events (overwrites are counted, not silent), and the
  file sink is append-only JSON lines.

The log never raises into the serving path: a failing sink increments
``sink_errors`` and disables itself rather than breaking requests.
"""

from __future__ import annotations

import io
import json
import sys
import time
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional, Union

from zlib import crc32


def peak_rss_bytes() -> Optional[int]:
    """This process's peak resident set size in bytes, or ``None``.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here so memory telemetry (the ``process.peak_rss_bytes`` gauge on
    ``/metrics``, the scale-bench sidecars) is comparable across runs.
    Sampled at call time.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container
        return int(usage)
    return int(usage) * 1024


class EventLog:
    """Sampled structured events into a bounded ring and a JSONL sink.

    Parameters
    ----------
    capacity:
        Events kept in the in-process ring (newest win; overwrites are
        tallied in ``dropped``).
    sample:
        Head-sampling rate in [0, 1].  1.0 keeps everything; 0.0 keeps
        only slow/error events.  The verdict is a pure function of the
        trace id, so the same trace samples identically everywhere.
    slow_seconds:
        Threshold the *caller* compares request latency against before
        flagging ``slow=True`` — kept here so every emitter and the
        docs agree on one knob.
    sink:
        Optional path (or open text file) receiving one JSON line per
        recorded event, append-only.
    clock:
        Wall-clock source for the ``ts`` stamp (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 1024,
        sample: float = 1.0,
        slow_seconds: float = 0.5,
        sink: Union[str, Path, io.TextIOBase, None] = None,
        clock=time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if slow_seconds < 0:
            raise ValueError(
                f"slow_seconds must be >= 0, got {slow_seconds}"
            )
        self.capacity = capacity
        self.sample = sample
        self.slow_seconds = slow_seconds
        self._clock = clock
        self._ring: Deque[dict] = deque(maxlen=capacity)
        self._sink_path: Optional[Path] = None
        self._sink: Optional[io.TextIOBase] = None
        self._owns_sink = False
        if sink is not None:
            if isinstance(sink, (str, Path)):
                self._sink_path = Path(sink)
                self._sink_path.parent.mkdir(parents=True, exist_ok=True)
                self._sink = self._sink_path.open("a", encoding="utf-8")
                self._owns_sink = True
            else:
                self._sink = sink
        # -- lifetime tallies (exported as gauges on /metrics) --------------
        self.emitted = 0       # events recorded (ring and/or sink)
        self.sampled_out = 0   # events dropped by head sampling
        self.dropped = 0       # ring overwrites (oldest event lost)
        self.slow_events = 0   # events kept via the slow bypass
        self.error_events = 0  # events kept via the error bypass
        self.sink_errors = 0   # sink writes that failed (sink disabled)

    # -- sampling -----------------------------------------------------------

    def sampled(self, trace_id: str) -> bool:
        """Head-sampling verdict for ``trace_id`` (deterministic)."""
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return crc32(trace_id.encode("utf-8")) / 2**32 < self.sample

    # -- recording ----------------------------------------------------------

    def record(
        self,
        event: dict,
        *,
        sampled: Optional[bool] = None,
        slow: bool = False,
        error: bool = False,
    ) -> bool:
        """Record one event; returns True iff it was kept.

        ``sampled`` overrides the head-sampling verdict (the server
        decides once per request and reuses the verdict for every event
        of that trace); ``slow``/``error`` bypass sampling entirely.
        The event dict is stamped with ``ts`` and stored as given —
        callers keep it flat and JSON-serializable.
        """
        if sampled is None:
            sampled = self.sampled(str(event.get("trace_id", "")))
        if not (sampled or slow or error):
            self.sampled_out += 1
            return False
        if slow:
            self.slow_events += 1
        if error:
            self.error_events += 1
        event = dict(event)
        event.setdefault("ts", round(self._clock(), 6))
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)
        self.emitted += 1
        if self._sink is not None:
            try:
                self._sink.write(
                    json.dumps(event, sort_keys=True, default=str) + "\n"
                )
                self._sink.flush()
            except (OSError, ValueError):
                # Never let a full disk / closed file break serving;
                # the ring keeps working and the failure is counted.
                self.sink_errors += 1
                self._sink = None
        return True

    # -- reading ------------------------------------------------------------

    def recent(self, n: Optional[int] = None) -> List[dict]:
        """The newest ``n`` recorded events (all of them by default),
        oldest first."""
        events = list(self._ring)
        if n is not None:
            events = events[-n:]
        return events

    def stats(self) -> dict:
        """Lifetime tallies, the gauge payload for ``/metrics``."""
        return {
            "emitted": self.emitted,
            "sampled_out": self.sampled_out,
            "dropped": self.dropped,
            "slow_events": self.slow_events,
            "error_events": self.error_events,
            "sink_errors": self.sink_errors,
        }

    def close(self) -> None:
        """Flush and close an owned file sink (idempotent)."""
        if self._sink is not None and self._owns_sink:
            try:
                self._sink.close()
            except OSError:  # pragma: no cover - close race
                pass
        self._sink = None

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"EventLog(capacity={self.capacity}, sample={self.sample}, "
            f"emitted={self.emitted}, dropped={self.dropped})"
        )
