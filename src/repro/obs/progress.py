"""Live build progress: cases/sec, ETA and done/total on stderr.

A full SIEF build visits every edge of the graph — minutes of silence
at paper scale.  :class:`ProgressReporter` turns the per-case ticks the
build loops already make (behind the same ``is None`` hooks seam as
metrics and tracing, so an uninstalled reporter costs one attribute
load per case) into a single self-overwriting status line::

    sief build:  1842/10000 cases  213.4/s  ETA 38s

Design constraints, in order:

* **zero hot-path cost when off** — the build loops do
  ``prog = _obs.progress; if prog is not None: prog.advance()``;
* **bounded terminal traffic when on** — renders are throttled to
  ``min_interval`` seconds, so a 100k-case build writes a few hundred
  lines, not 100k;
* **deterministic in tests** — the clock and output stream are
  injectable; nothing here reads wall time except through ``clock``.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


def _format_eta(seconds: float) -> str:
    """Compact ETA: 42s / 3m12s / 2h05m."""
    seconds = int(seconds)
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


class ProgressReporter:
    """Renders ``done/total``, rate and ETA as one updating stderr line.

    Parameters
    ----------
    total:
        Expected number of work units, or ``None`` when unknown (the
        lazy index builds cases on demand); without a total the line
        shows count and rate but no ETA.
    label:
        Prefix for the status line.
    stream:
        Output text stream (default ``sys.stderr``, resolved lazily so
        pytest's capture replacement is honoured).
    clock:
        Monotonic seconds source; injectable for deterministic tests.
    min_interval:
        Minimum seconds between renders (throttle); ``finish`` always
        renders.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        label: str = "sief build",
        stream: Optional[TextIO] = None,
        clock=time.monotonic,
        min_interval: float = 0.1,
    ) -> None:
        self.total = total
        self.label = label
        self._stream = stream
        self._clock = clock
        self.min_interval = min_interval
        self.done = 0
        self._started = clock()
        self._last_render = float("-inf")
        self.renders = 0

    # -- ticks --------------------------------------------------------------

    def advance(self, n: int = 1) -> None:
        """Add ``n`` completed units and render if the throttle allows."""
        self.done += n
        now = self._clock()
        if now - self._last_render >= self.min_interval:
            self._render(now)

    def update(self, done: int) -> None:
        """Set the absolute completed count (idempotent form)."""
        self.done = done
        now = self._clock()
        if now - self._last_render >= self.min_interval:
            self._render(now)

    def finish(self) -> None:
        """Force a final render and terminate the line with a newline."""
        self._render(self._clock())
        stream = self._stream if self._stream is not None else sys.stderr
        stream.write("\n")
        stream.flush()

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    # -- rendering ----------------------------------------------------------

    def render_line(self, now: Optional[float] = None) -> str:
        """The current status line (sans carriage return), for tests."""
        if now is None:
            now = self._clock()
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        if self.total is not None:
            line = f"{self.label}: {self.done:>{len(str(self.total))}}/{self.total} cases"
        else:
            line = f"{self.label}: {self.done} cases"
        line += f"  {rate:.1f}/s"
        if self.total is not None and rate > 0 and self.done < self.total:
            line += f"  ETA {_format_eta((self.total - self.done) / rate)}"
        return line

    def _render(self, now: float) -> None:
        self._last_render = now
        self.renders += 1
        stream = self._stream if self._stream is not None else sys.stderr
        stream.write("\r" + self.render_line(now) + "\x1b[K")
        stream.flush()
