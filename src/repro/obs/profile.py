"""Span-attributed sampling profiler.

``cProfile`` answers "which function", but a SIEF build's cost structure
is *phase*-shaped — IDENTIFY sweeps vs RELABEL searches vs label
queries — and those phases are exactly the spans the build and query
paths already emit into :class:`~repro.obs.trace.TraceRecorder`.
:class:`SpanProfiler` samples the recorder's **open-span stack** on a
timer thread, so every sample lands on a stack like
``sief.build; sief.build.case`` with no bytecode tracing overhead in
the measured code (the hot paths stay untouched — the sampler only
*reads* the tracer's stack).

Output shapes:

* :meth:`SpanProfiler.folded` — folded-stack lines
  (``outer;inner count``), the input format of every flamegraph tool
  (Brendan Gregg's ``flamegraph.pl``, speedscope, inferno);
* :meth:`SpanProfiler.rollup` — per-span **inclusive** (span anywhere on
  the stack) and **exclusive** (span is the leaf) sample counts plus
  their estimated seconds (samples x interval);
* samples also export as instant events in the Chrome trace
  (:mod:`repro.obs.chrometrace`).

Determinism: the timer thread is real, but every piece of machinery is
drivable without it — ``sample_once`` takes an explicit stack, the
clock is injectable, and :meth:`merge` folds worker sample counts in
exactly like registry snapshots merge at a parallel join — so tests
never assert on wall-clock behaviour.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

IDLE_STACK: Tuple[str, ...] = ("(no span)",)
"""Stack recorded for samples taken while no span is open."""

DEFAULT_INTERVAL = 0.005
"""Default sampling period in seconds (200 Hz)."""

_MAX_TIMESTAMPED_SAMPLES = 100_000
"""Cap on individually timestamped samples kept for timeline export;
aggregate counts keep accumulating past it, so folded output and
rollups stay exact on arbitrarily long runs."""


@dataclass(frozen=True)
class SpanCost:
    """Per-span rollup row: inclusive/exclusive samples and seconds."""

    name: str
    inclusive_samples: int
    exclusive_samples: int
    inclusive_seconds: float
    exclusive_seconds: float


class SpanProfiler:
    """Samples a :class:`~repro.obs.trace.TraceRecorder`'s span stack.

    Parameters
    ----------
    tracer:
        The recorder whose open-span stack attributes each sample.
    interval:
        Sampling period in seconds (also the weight of one sample when
        converting counts to estimated time).
    clock:
        Monotonic time source for sample timestamps; injectable so the
        Chrome-trace export of samples is testable deterministically.
        Should share a domain with the tracer's clock so samples align
        with spans on one timeline.
    """

    def __init__(
        self,
        tracer,
        interval: float = DEFAULT_INTERVAL,
        clock=time.perf_counter,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.tracer = tracer
        self.interval = interval
        self._clock = clock
        self.counts: Dict[Tuple[str, ...], int] = {}
        self.samples: List[Tuple[float, Tuple[str, ...]]] = []
        self.total_samples = 0
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # -- sampling -----------------------------------------------------------

    def sample_once(
        self, stack: Optional[Tuple[str, ...]] = None
    ) -> Tuple[str, ...]:
        """Record one sample (of ``stack``, or the tracer's live stack).

        The explicit-``stack`` form is the deterministic test seam and
        the worker-merge ingestion path; the no-argument form is what
        the timer thread calls.
        """
        if stack is None:
            stack = tuple(self.tracer.open_spans())
        else:
            stack = tuple(stack)
        if not stack:
            stack = IDLE_STACK
        self.counts[stack] = self.counts.get(stack, 0) + 1
        self.total_samples += 1
        if len(self.samples) < _MAX_TIMESTAMPED_SAMPLES:
            self.samples.append((self._clock(), stack))
        return stack

    def _run(self) -> None:  # pragma: no cover - timing-dependent thread
        while not self._stop_event.wait(self.interval):
            self.sample_once()

    def start(self) -> "SpanProfiler":
        """Start the background sampling thread (idempotent)."""
        if self._thread is None:
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="sief-span-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background thread (no-op if never started)."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None

    @property
    def running(self) -> bool:
        """Whether the sampling thread is currently alive."""
        return self._thread is not None

    def __enter__(self) -> "SpanProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- merge (parallel builds) -------------------------------------------

    def merge(self, counts: Dict[Tuple[str, ...], int]) -> None:
        """Fold another profiler's sample counts in (worker -> parent).

        Mirrors ``MetricsRegistry.merge_snapshot``: per-worker profilers
        sample their own chunk tracers, and the parent folds the counts
        at the join.  Only aggregate counts merge — foreign samples
        carry another process's timeline and stay in that worker's
        Chrome-trace track instead.
        """
        for stack, n in counts.items():
            stack = tuple(stack)
            self.counts[stack] = self.counts.get(stack, 0) + n
            self.total_samples += n

    # -- output -------------------------------------------------------------

    def folded(self) -> str:
        """Folded-stack lines (``a;b;c 12``), flamegraph-tool ready."""
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(self.counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def rollup(self) -> List[SpanCost]:
        """Per-span inclusive/exclusive costs, heaviest-inclusive first.

        *Inclusive* counts every sample whose stack contains the span
        (once per sample, even for recursive nesting); *exclusive*
        counts samples where the span is the leaf.  Seconds are the
        sample counts scaled by the sampling interval — an estimate
        whose error shrinks with run length, like any sampling profile.
        """
        inclusive: Dict[str, int] = {}
        exclusive: Dict[str, int] = {}
        for stack, n in self.counts.items():
            exclusive[stack[-1]] = exclusive.get(stack[-1], 0) + n
            for name in set(stack):
                inclusive[name] = inclusive.get(name, 0) + n
        rows = [
            SpanCost(
                name=name,
                inclusive_samples=inc,
                exclusive_samples=exclusive.get(name, 0),
                inclusive_seconds=inc * self.interval,
                exclusive_seconds=exclusive.get(name, 0) * self.interval,
            )
            for name, inc in inclusive.items()
        ]
        rows.sort(key=lambda r: (-r.inclusive_samples, r.name))
        return rows

    def report(self) -> str:
        """Human-readable rollup table (the CLI's ``--profile`` output)."""
        rows = self.rollup()
        if not rows:
            return "(no samples)"
        name_w = max(len(r.name) for r in rows)
        lines = [
            f"{'span'.ljust(name_w)}  incl%   excl%   incl(s)  excl(s)  samples"
        ]
        total = self.total_samples
        for r in rows:
            lines.append(
                f"{r.name.ljust(name_w)}  "
                f"{r.inclusive_samples / total:6.1%}  "
                f"{r.exclusive_samples / total:6.1%}  "
                f"{r.inclusive_seconds:7.3f}  "
                f"{r.exclusive_seconds:7.3f}  "
                f"{r.inclusive_samples:7d}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SpanProfiler(samples={self.total_samples}, "
            f"stacks={len(self.counts)}, interval={self.interval})"
        )
