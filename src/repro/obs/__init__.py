"""Observability: process-local metrics, trace spans, and exporters.

The ``repro.obs`` subsystem gives the build and query pipelines the
telemetry PLL-family deployments run on — label sizes, affected-set
sizes, cache hit rates, per-query and per-case latencies — without
perturbing them: every instrumentation point in the hot paths is a
single ``is None`` check until a :class:`MetricsRegistry` is installed
via :mod:`repro.obs.hooks`.

Layers:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  snapshot/merge (the merge is what combines per-worker registries from
  parallel builds);
* :mod:`repro.obs.trace` — nestable spans into a bounded ring buffer,
  with a balance check the conformance harness enforces;
* :mod:`repro.obs.hooks` — the module-global install seam hot paths read;
* :mod:`repro.obs.context` — per-request trace ids, stage decomposition,
  and the contextvar scope that attributes page faults to requests;
* :mod:`repro.obs.events` — sampled structured JSON-lines event log
  (bounded ring + file sink) the serving path narrates into;
* :mod:`repro.obs.export` — JSON-lines sidecars and Prometheus text;
* :mod:`repro.obs.profile` — span-attributed sampling profiler (folded
  stacks, inclusive/exclusive rollups);
* :mod:`repro.obs.chrometrace` — Chrome trace-event export (Perfetto),
  with one track per parallel-build worker;
* :mod:`repro.obs.progress` — live build progress on stderr.

See ``docs/observability.md`` for the metric catalog and usage.
"""

from repro.obs.context import (
    RequestContext,
    attribute_page_fault,
    current_contexts,
    new_trace_id,
    parse_traceparent,
    scope,
    valid_trace_id,
)
from repro.obs.events import EventLog, peak_rss_bytes
from repro.obs.hooks import disabled, install, installed, span, uninstall
from repro.obs.metrics import (
    LATENCY_SECONDS_EDGES,
    REQUEST_LATENCY_EDGES,
    SIZE_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.export import (
    escape_label_value,
    parse_prometheus_text,
    quantile_from_buckets,
    read_json_lines,
    registry_from_json_lines,
    sanitize_name,
    to_json_lines,
    to_prometheus_text,
    unescape_label_value,
    write_json_lines,
    write_prometheus_text,
)
from repro.obs.chrometrace import (
    to_chrome_trace,
    to_chrome_trace_json,
    validate_trace_events,
    write_chrome_trace,
)
from repro.obs.profile import SpanCost, SpanProfiler
from repro.obs.progress import ProgressReporter
from repro.obs.trace import SpanRecord, TraceRecorder

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_SECONDS_EDGES",
    "REQUEST_LATENCY_EDGES",
    "SIZE_EDGES",
    "RequestContext",
    "EventLog",
    "new_trace_id",
    "parse_traceparent",
    "valid_trace_id",
    "scope",
    "current_contexts",
    "attribute_page_fault",
    "peak_rss_bytes",
    "TraceRecorder",
    "SpanRecord",
    "SpanProfiler",
    "SpanCost",
    "ProgressReporter",
    "install",
    "uninstall",
    "installed",
    "disabled",
    "span",
    "sanitize_name",
    "escape_label_value",
    "unescape_label_value",
    "parse_prometheus_text",
    "quantile_from_buckets",
    "to_json_lines",
    "write_json_lines",
    "read_json_lines",
    "registry_from_json_lines",
    "to_prometheus_text",
    "write_prometheus_text",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "write_chrome_trace",
    "validate_trace_events",
]
