"""Request-scoped context: trace ids, stage decomposition, fault attribution.

Aggregate histograms answer "how slow is the service"; they cannot
answer "why was *this* request slow".  A :class:`RequestContext` is the
unit of that second question: one per served request, carrying

* a **trace id** — accepted from the client (W3C ``traceparent`` header,
  an ``X-Trace-Id`` header, or the optional trailer of an SFB1 binary
  frame) or generated, and echoed back on every response so one id
  correlates the client log, the server event log, the batch flush that
  computed the answer, and any LRU paging activity it triggered;
* a **stage decomposition** — named wall-clock stages (``parse``,
  ``queue``, ``batch``, ``compute``, ``serialize``) accumulated as the
  request moves through the serving pipeline.  Stages are disjoint by
  construction, so their sum is ≤ the request's total wall time;
* a **page-fault tally** — demand-paged index misses
  (``sief.lazy.cache.misses``) attributed to the requests that were
  waiting on the flush that faulted the case in.

The attribution seam is a :mod:`contextvars` scope rather than a
parameter: the micro-batcher computes one ``batch_query`` for *many*
requests at once, and the paged index deep inside the engine cannot
take a per-request argument without changing query signatures (and the
bit-identity contract says the engine must not know it is being
traced).  During a flush the batcher enters :func:`scope` with every
live context in the group; a cache miss calls
:func:`attribute_page_fault`, which charges every request in scope —
each of them was waiting on that fault.  With no scope entered (the
default everywhere outside a flush), the cost of an attribution point
is one ``ContextVar.get`` returning ``None``.

Nothing in this module imports the rest of the library, so any layer
(including :mod:`repro.core.lazy`) may depend on it.
"""

from __future__ import annotations

import os
import re
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional, Tuple

_TRACEPARENT_RE = re.compile(
    r"^[0-9a-f]{2}-(?P<trace_id>[0-9a-f]{32})-[0-9a-f]{16}-[0-9a-f]{2}$"
)
_TRACE_ID_RE = re.compile(r"^[0-9A-Za-z_\-]{1,64}$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex characters."""
    return os.urandom(16).hex()


def parse_traceparent(value: Optional[str]) -> Optional[str]:
    """The trace id out of a W3C ``traceparent`` header, or ``None``.

    Accepts exactly the 4-field form ``version-traceid-spanid-flags``
    with lowercase hex fields; an all-zero trace id is invalid per the
    spec and rejected.  Anything malformed returns ``None`` (the server
    generates an id instead of failing the request over a bad header).
    """
    if not value:
        return None
    match = _TRACEPARENT_RE.match(value.strip())
    if match is None:
        return None
    trace_id = match.group("trace_id")
    if trace_id == "0" * 32:
        return None
    return trace_id


def valid_trace_id(value: Optional[str]) -> bool:
    """True iff ``value`` is acceptable as a client-supplied trace id.

    Deliberately broader than W3C hex (an ``X-Trace-Id`` header may
    carry any short opaque token) but bounded: 1–64 characters from
    ``[0-9A-Za-z_-]``, so ids embed safely in JSON, log lines and
    Prometheus label values without escaping surprises.
    """
    return bool(value) and _TRACE_ID_RE.match(value) is not None


class RequestContext:
    """Per-request trace state: id, stage timings, page-fault tally.

    Mutable and single-owner: exactly one request's handler (and the
    batcher flush acting on its behalf) writes to it.  ``meta`` is a
    free-form dict for route/status/batch annotations the event log and
    debug endpoints surface.
    """

    __slots__ = (
        "trace_id",
        "started",
        "stages",
        "pages_faulted",
        "meta",
        "_clock",
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        clock=time.perf_counter,
    ) -> None:
        self.trace_id = trace_id if trace_id else new_trace_id()
        self._clock = clock
        self.started: float = clock()
        self.stages: Dict[str, float] = {}
        self.pages_faulted = 0
        self.meta: Dict[str, object] = {}

    # -- stage accounting ---------------------------------------------------

    def add_stage(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into stage ``name`` (repeats add up)."""
        if seconds < 0:
            seconds = 0.0
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block into stage ``name`` (records even on exception)."""
        t0 = self._clock()
        try:
            yield
        finally:
            self.add_stage(name, self._clock() - t0)

    def stage_total(self) -> float:
        """Sum of all recorded stages (≤ wall time by construction)."""
        return sum(self.stages.values())

    def elapsed(self) -> float:
        """Wall-clock seconds since the context was created."""
        return self._clock() - self.started

    # -- page faults --------------------------------------------------------

    def note_page_fault(self, n: int = 1) -> None:
        self.pages_faulted += n

    # -- export -------------------------------------------------------------

    def decomposition(self) -> dict:
        """The latency decomposition as a JSON-friendly dict."""
        return {
            "trace_id": self.trace_id,
            "stages": {k: round(v, 6) for k, v in self.stages.items()},
            "pages_faulted": self.pages_faulted,
        }

    def __repr__(self) -> str:
        return (
            f"RequestContext({self.trace_id!r}, "
            f"stages={sorted(self.stages)}, "
            f"pages_faulted={self.pages_faulted})"
        )


_scope: "ContextVar[Optional[Tuple[RequestContext, ...]]]" = ContextVar(
    "sief_request_scope", default=None
)


def current_contexts() -> Optional[Tuple[RequestContext, ...]]:
    """The contexts in the active attribution scope, or ``None``."""
    return _scope.get()


@contextmanager
def scope(*contexts: RequestContext) -> Iterator[None]:
    """Attribute library-level events inside the block to ``contexts``.

    The micro-batcher enters this around each per-group ``batch_query``
    call with every request waiting on that group; nested scopes shadow
    (innermost wins) and the previous scope is restored on exit.
    """
    token = _scope.set(tuple(contexts))
    try:
        yield
    finally:
        _scope.reset(token)


def attribute_page_fault(n: int = 1) -> None:
    """Charge ``n`` demand-paging faults to every request in scope.

    Called by the lazy/paged index on a cache miss.  A fault during a
    batch flush blocked *every* request in that flush, so each one is
    charged — the tally answers "did paging make this request slow",
    not "how many distinct segment reads happened" (the
    ``sief.lazy.cache.misses`` counter answers that).  No scope, no
    cost beyond one ``ContextVar.get``.
    """
    contexts = _scope.get()
    if contexts:
        for ctx in contexts:
            ctx.note_page_fault(n)
