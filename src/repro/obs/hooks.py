"""Instrumentation seam: module-global registry/tracer/profiler/progress.

Hot paths (PLL construction, SIEF build, scalar and batch queries) are
instrumented against **this module's attributes**, not against objects
threaded through call signatures:

.. code-block:: python

    from repro.obs import hooks as _obs
    ...
    reg = _obs.registry
    if reg is not None:
        reg.counter("sief.query.scalar").inc()

With nothing installed (the default), the cost at every instrumentation
point is one module-attribute load and an ``is None`` test — a few tens
of nanoseconds, which is what keeps the <5% overhead budget on the
batch-query workload honest.  The same seam carries all four hooks:

* :data:`registry` — metrics (counters/gauges/histograms);
* :data:`tracer` — trace spans;
* :data:`profiler` — the span-attributed sampling profiler
  (:mod:`repro.obs.profile`); parallel builds merge worker sample
  counts into it at the join;
* :data:`progress` — the live build progress reporter
  (:mod:`repro.obs.progress`); build loops tick it per case.

Installation is process-local and intentionally not thread-safe: the
unit of parallelism in this library is the process
(:mod:`repro.core.parallel` gives each worker chunk its own registry
and merges snapshots at join).

``install``/``uninstall`` are the explicit API; :func:`installed` and
:func:`disabled` are the context-manager forms that save and restore
whatever was active — the conformance harness uses them to run the same
workload metrics-on and metrics-off and assert the answers are
identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder

registry: Optional[MetricsRegistry] = None
"""The active metrics registry, or ``None`` (instrumentation off)."""

tracer: Optional[TraceRecorder] = None
"""The active trace recorder, or ``None`` (span recording off)."""

profiler = None
"""The active :class:`~repro.obs.profile.SpanProfiler`, or ``None``."""

progress = None
"""The active :class:`~repro.obs.progress.ProgressReporter`, or ``None``."""


def _state() -> tuple:
    return (registry, tracer, profiler, progress)


def _restore(state: tuple) -> None:
    global registry, tracer, profiler, progress
    registry, tracer, profiler, progress = state


def install(
    reg: Optional[MetricsRegistry] = None,
    trace: Optional[TraceRecorder] = None,
    profile=None,
    report_progress=None,
) -> Tuple[Optional[MetricsRegistry], Optional[TraceRecorder]]:
    """Activate a registry (and optionally the other hooks).

    ``install()`` with no arguments creates and installs a fresh
    registry.  Replaces whatever was installed before — use
    :func:`installed` when the previous state must come back.  Returns
    ``(reg, trace)`` (the historical pair; profiler/progress are
    reachable as module attributes).
    """
    global registry, tracer, profiler, progress
    if reg is None:
        reg = MetricsRegistry()
    registry = reg
    tracer = trace
    profiler = profile
    progress = report_progress
    return reg, trace


def uninstall() -> None:
    """Deactivate instrumentation (hot paths return to the no-op branch)."""
    _restore((None, None, None, None))


@contextmanager
def installed(
    reg: Optional[MetricsRegistry] = None,
    trace: Optional[TraceRecorder] = None,
    profile=None,
    report_progress=None,
) -> Iterator[MetricsRegistry]:
    """Context manager: install for the block, restore the previous state.

    Yields the active registry (created fresh when ``reg`` is ``None``).
    """
    prev = _state()
    if reg is None:
        reg = MetricsRegistry()
    _restore((reg, trace, profile, report_progress))
    try:
        yield reg
    finally:
        _restore(prev)


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager: force instrumentation off, restore afterwards."""
    prev = _state()
    _restore((None, None, None, None))
    try:
        yield
    finally:
        _restore(prev)


class _NullSpan:
    """Reusable no-op context manager for :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str):
    """A span on the active tracer, or a shared no-op when tracing is off.

    Meant for build-granularity regions (whole PLL build, one failure
    case, one batch call) — cheap enough there even when off.  Per-query
    scalar paths guard on :data:`registry` directly instead.
    """
    t = tracer
    if t is None:
        return _NULL_SPAN
    return t.span(name)
