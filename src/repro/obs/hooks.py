"""Instrumentation seam: one module-global registry/tracer pair.

Hot paths (PLL construction, SIEF build, scalar and batch queries) are
instrumented against **this module's attributes**, not against objects
threaded through call signatures:

.. code-block:: python

    from repro.obs import hooks as _obs
    ...
    reg = _obs.registry
    if reg is not None:
        reg.counter("sief.query.scalar").inc()

With nothing installed (the default), the cost at every instrumentation
point is one module-attribute load and an ``is None`` test — a few tens
of nanoseconds, which is what keeps the <5% overhead budget on the
batch-query workload honest.  Installation is process-local and
intentionally not thread-safe: the unit of parallelism in this library
is the process (:mod:`repro.core.parallel` gives each worker chunk its
own registry and merges snapshots at join).

``install``/``uninstall`` are the explicit API; :func:`installed` and
:func:`disabled` are the context-manager forms that save and restore
whatever was active — the conformance harness uses them to run the same
workload metrics-on and metrics-off and assert the answers are
identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder

registry: Optional[MetricsRegistry] = None
"""The active metrics registry, or ``None`` (instrumentation off)."""

tracer: Optional[TraceRecorder] = None
"""The active trace recorder, or ``None`` (span recording off)."""


def install(
    reg: Optional[MetricsRegistry] = None,
    trace: Optional[TraceRecorder] = None,
) -> Tuple[Optional[MetricsRegistry], Optional[TraceRecorder]]:
    """Activate a registry (and optionally a tracer); returns (reg, trace).

    ``install()`` with no arguments creates and installs a fresh
    registry.  Replaces whatever was installed before — use
    :func:`installed` when the previous state must come back.
    """
    global registry, tracer
    if reg is None:
        reg = MetricsRegistry()
    registry = reg
    tracer = trace
    return reg, trace


def uninstall() -> None:
    """Deactivate instrumentation (hot paths return to the no-op branch)."""
    global registry, tracer
    registry = None
    tracer = None


@contextmanager
def installed(
    reg: Optional[MetricsRegistry] = None,
    trace: Optional[TraceRecorder] = None,
) -> Iterator[MetricsRegistry]:
    """Context manager: install for the block, restore the previous pair.

    Yields the active registry (created fresh when ``reg`` is ``None``).
    """
    global registry, tracer
    prev = (registry, tracer)
    if reg is None:
        reg = MetricsRegistry()
    registry = reg
    tracer = trace
    try:
        yield reg
    finally:
        registry, tracer = prev


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager: force instrumentation off, restore afterwards."""
    global registry, tracer
    prev = (registry, tracer)
    registry = None
    tracer = None
    try:
        yield
    finally:
        registry, tracer = prev


class _NullSpan:
    """Reusable no-op context manager for :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str):
    """A span on the active tracer, or a shared no-op when tracing is off.

    Meant for build-granularity regions (whole PLL build, one failure
    case, one batch call) — cheap enough there even when off.  Per-query
    scalar paths guard on :data:`registry` directly instead.
    """
    t = tracer
    if t is None:
        return _NULL_SPAN
    return t.span(name)
