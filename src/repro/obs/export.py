"""Exporters: registry snapshots as JSON-lines and Prometheus text.

Two formats cover the two consumers this library has today:

* **JSON-lines** — one self-describing object per line (``{"type":
  "counter", "name": ..., "value": ...}``), the sidecar format the
  bench runner and ``sief fuzz --metrics-out`` write next to their
  results.  Line-oriented so sidecars concatenate and grep cleanly.
* **Prometheus text exposition (0.0.4)** — for scraping a future
  serving deployment.  Metric names are sanitized (dots and dashes to
  underscores), histograms render the cumulative ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` triplet with a closing ``+Inf`` bucket.

Both exporters read one :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
so a single consistent view feeds every output.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Map an internal dotted metric name to a Prometheus-legal one."""
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def to_json_lines(
    registry: MetricsRegistry, tracer: Optional[TraceRecorder] = None
) -> str:
    """One JSON object per line for every instrument (and span, if given)."""
    snap = registry.snapshot()
    lines: List[str] = []
    for name, value in snap["counters"].items():
        lines.append(
            json.dumps({"type": "counter", "name": name, "value": value})
        )
    for name, value in snap["gauges"].items():
        lines.append(
            json.dumps({"type": "gauge", "name": name, "value": value})
        )
    for name, data in snap["histograms"].items():
        lines.append(
            json.dumps(
                {
                    "type": "histogram",
                    "name": name,
                    "edges": data["edges"],
                    "counts": data["counts"],
                    "sum": data["sum"],
                    "count": data["count"],
                }
            )
        )
    if tracer is not None:
        for rec in tracer.records():
            lines.append(
                json.dumps(
                    {
                        "type": "span",
                        "name": rec.name,
                        "depth": rec.depth,
                        "seconds": rec.seconds,
                    }
                )
            )
        lines.append(
            json.dumps(
                {
                    "type": "trace_summary",
                    "started": tracer.total_started,
                    "finished": tracer.total_finished,
                    "balanced": tracer.balanced,
                }
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_json_lines(
    registry: MetricsRegistry,
    path: Union[str, Path],
    tracer: Optional[TraceRecorder] = None,
) -> Path:
    """Write :func:`to_json_lines` output to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json_lines(registry, tracer), encoding="utf-8")
    return path


def read_json_lines(path: Union[str, Path]) -> List[dict]:
    """Parse a JSON-lines sidecar back into a list of dicts."""
    out: List[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _fmt(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    snap = registry.snapshot()
    lines: List[str] = []
    for name, value in snap["counters"].items():
        pname = sanitize_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_fmt(value)}")
    for name, value in snap["gauges"].items():
        pname = sanitize_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(value)}")
    for name, data in snap["histograms"].items():
        pname = sanitize_name(name)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for edge, count in zip(data["edges"], data["counts"]):
            cumulative += count
            lines.append(
                f'{pname}_bucket{{le="{_fmt(edge)}"}} {cumulative}'
            )
        cumulative += data["counts"][-1]
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{pname}_sum {_fmt(data['sum'])}")
        lines.append(f"{pname}_count {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write :func:`to_prometheus_text` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus_text(registry), encoding="utf-8")
    return path
