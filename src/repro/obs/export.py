"""Exporters: registry snapshots as JSON-lines and Prometheus text.

Two formats cover the two consumers this library has today:

* **JSON-lines** — one self-describing object per line (``{"type":
  "counter", "name": ..., "value": ...}``), the sidecar format the
  bench runner and ``sief fuzz --metrics-out`` write next to their
  results.  Line-oriented so sidecars concatenate and grep cleanly.
* **Prometheus text exposition (0.0.4)** — for scraping a future
  serving deployment.  Metric names are sanitized (dots and dashes to
  underscores), histograms render the cumulative ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` triplet with a closing ``+Inf`` bucket.

Both exporters read one :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
so a single consistent view feeds every output.
"""

from __future__ import annotations

import hashlib
import json
import math
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str, taken: Optional[Dict[str, str]] = None) -> str:
    """Map an internal dotted metric name to a Prometheus-legal one.

    Names that would start with a digit (or sanitize to nothing) get a
    ``_`` prefix.  Pass the same ``taken`` dict (sanitized -> original)
    across a batch of names to make the mapping injective: when two
    *distinct* originals sanitize to the same string, the later one
    gets a short content-hash suffix instead of silently colliding —
    two metrics must never merge into one exposition series.
    """
    out = _NAME_RE.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    if taken is not None:
        prev = taken.get(out)
        if prev is not None and prev != name:
            out = f"{out}_{hashlib.sha1(name.encode()).hexdigest()[:6]}"
        taken.setdefault(out, name)
    return out


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def to_json_lines(
    registry: MetricsRegistry, tracer: Optional[TraceRecorder] = None
) -> str:
    """One JSON object per line for every instrument (and span, if given)."""
    snap = registry.snapshot()
    lines: List[str] = []
    for name, value in snap["counters"].items():
        lines.append(
            json.dumps({"type": "counter", "name": name, "value": value})
        )
    for name, value in snap["gauges"].items():
        lines.append(
            json.dumps({"type": "gauge", "name": name, "value": value})
        )
    for name, data in snap["histograms"].items():
        lines.append(
            json.dumps(
                {
                    "type": "histogram",
                    "name": name,
                    "edges": data["edges"],
                    "counts": data["counts"],
                    "sum": data["sum"],
                    "count": data["count"],
                }
            )
        )
    if tracer is not None:
        if "trace.dropped_spans" not in snap["counters"]:
            # Surface ring-buffer overflow even when nobody synced the
            # recorder into the registry (see TraceRecorder.sync_registry).
            lines.append(
                json.dumps(
                    {
                        "type": "counter",
                        "name": "trace.dropped_spans",
                        "value": tracer.dropped_spans,
                    }
                )
            )
        for rec in tracer.records():
            lines.append(
                json.dumps(
                    {
                        "type": "span",
                        "name": rec.name,
                        "depth": rec.depth,
                        "seconds": rec.seconds,
                        "start": rec.start,
                    }
                )
            )
        lines.append(
            json.dumps(
                {
                    "type": "trace_summary",
                    "started": tracer.total_started,
                    "finished": tracer.total_finished,
                    "balanced": tracer.balanced,
                    "dropped": tracer.dropped_spans,
                }
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_json_lines(
    registry: MetricsRegistry,
    path: Union[str, Path],
    tracer: Optional[TraceRecorder] = None,
) -> Path:
    """Write :func:`to_json_lines` output to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json_lines(registry, tracer), encoding="utf-8")
    return path


def read_json_lines(path: Union[str, Path]) -> List[dict]:
    """Parse a JSON-lines sidecar back into a list of dicts."""
    out: List[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def registry_from_json_lines(records: List[dict]) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from parsed JSON-lines records.

    The inverse of the metrics half of :func:`to_json_lines`:
    ``registry_from_json_lines(read_json_lines(write_json_lines(reg,
    p))).snapshot() == reg.snapshot()`` — the round-trip contract the
    bench history and regression comparisons rely on.  Span, summary
    and foreign (``env`` etc.) lines are ignored.
    """
    reg = MetricsRegistry()
    for obj in records:
        kind = obj.get("type")
        if kind == "counter":
            reg.counter(obj["name"]).inc(obj["value"])
        elif kind == "gauge":
            reg.gauge(obj["name"]).set(obj["value"])
        elif kind == "histogram":
            h = reg.histogram(obj["name"], obj["edges"])
            for i, c in enumerate(obj["counts"]):
                h.counts[i] += c
            h.sum += obj["sum"]
            h.count += obj["count"]
    return reg


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _fmt(value) -> str:
    if isinstance(value, float):
        # Prometheus spells the IEEE specials exactly like this; Python's
        # repr ("nan"/"inf") is not legal exposition output.
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def escape_label_value(value: str) -> str:
    """A string made safe for a ``name{label="..."}`` position.

    The 0.0.4 text format escapes exactly three characters inside label
    values: backslash, double quote and newline.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        if nxt == "n":
            out.append("\n")
        elif nxt in ('"', "\\"):
            out.append(nxt)
        else:  # lone backslash before anything else passes through
            out.append(ch + nxt)
    return "".join(out)


def to_prometheus_text(
    registry: MetricsRegistry, tracer: Optional[TraceRecorder] = None
) -> str:
    """The registry in Prometheus text exposition format 0.0.4.

    Sanitized names are de-collided across the whole exposition (see
    :func:`sanitize_name`).  When a ``tracer`` is given, its ring-buffer
    overflow tally is appended as a ``trace_dropped_spans`` counter
    (unless the registry already carries ``trace.dropped_spans``).
    """
    snap = registry.snapshot()
    taken: Dict[str, str] = {}
    lines: List[str] = []
    counters = dict(snap["counters"])
    if tracer is not None and "trace.dropped_spans" not in counters:
        counters["trace.dropped_spans"] = tracer.dropped_spans
    for name, value in counters.items():
        pname = sanitize_name(name, taken)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_fmt(value)}")
    for name, value in snap["gauges"].items():
        pname = sanitize_name(name, taken)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(value)}")
    for name, data in snap["histograms"].items():
        pname = sanitize_name(name, taken)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for edge, count in zip(data["edges"], data["counts"]):
            cumulative += count
            lines.append(
                f'{pname}_bucket{{le="{_fmt(edge)}"}} {cumulative}'
            )
        cumulative += data["counts"][-1]
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{pname}_sum {_fmt(data['sum'])}")
        lines.append(f"{pname}_count {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict:
    """Parse 0.0.4 text exposition back into a snapshot-shaped dict.

    The inverse of :func:`to_prometheus_text` over the subset this
    library emits (no labels except histogram ``le``): the result has
    the same ``{"counters", "gauges", "histograms"}`` shape as
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, keyed by the
    *sanitized* names from the exposition, with histogram bucket counts
    de-cumulated.  ``sief top`` builds its dashboard from this, and the
    round-trip tests pin render → parse → render equality.
    """
    types: Dict[str, str] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    hist_raw: Dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name, labels_raw, value_raw = (
            m.group("name"), m.group("labels"), m.group("value")
        )
        value = float(value_raw)
        labels = {
            k: unescape_label_value(v)
            for k, v in _LABEL_RE.findall(labels_raw or "")
        }
        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and types.get(name[: -len(suffix)]) == (
                "histogram"
            ):
                base = name[: -len(suffix)]
                break
        if base is not None:
            h = hist_raw.setdefault(
                base, {"buckets": [], "sum": 0.0, "count": 0}
            )
            if name.endswith("_bucket"):
                h["buckets"].append((labels.get("le", "+Inf"), value))
            elif name.endswith("_sum"):
                h["sum"] = value
            else:
                h["count"] = int(value)
        elif types.get(name) == "gauge":
            gauges[name] = value
        else:
            counters[name] = value
    histograms: Dict[str, dict] = {}
    for name, h in hist_raw.items():
        edges = [float(le) for le, _ in h["buckets"] if le != "+Inf"]
        cumulative = [v for _, v in h["buckets"]]
        counts = [
            int(c - (cumulative[i - 1] if i else 0))
            for i, c in enumerate(cumulative)
        ]
        histograms[name] = {
            "edges": edges,
            "counts": counts,
            "sum": h["sum"],
            "count": h["count"],
        }
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def quantile_from_buckets(hist: dict, q: float) -> float:
    """Estimate the ``q`` quantile from a parsed histogram dict.

    Linear interpolation within the containing bucket, Prometheus
    ``histogram_quantile`` style: exact only at bucket edges, bounded
    by the bucket width in between — which is why
    :data:`~repro.obs.metrics.REQUEST_LATENCY_EDGES` spaces edges
    1-2.5-5 per decade.  Returns ``nan`` with no observations; a
    quantile landing in the overflow bucket returns the top edge.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    edges, counts = hist["edges"], hist["counts"]
    total = sum(counts)
    if total == 0 or not edges:
        return math.nan
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        prev = cumulative
        cumulative += count
        if cumulative >= rank and count:
            if i >= len(edges):  # overflow bucket: no upper edge
                return float(edges[-1])
            lo = float(edges[i - 1]) if i else 0.0
            hi = float(edges[i])
            return lo + (hi - lo) * ((rank - prev) / count)
    return float(edges[-1])


def write_prometheus_text(
    registry: MetricsRegistry,
    path: Union[str, Path],
    tracer: Optional[TraceRecorder] = None,
) -> Path:
    """Write :func:`to_prometheus_text` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus_text(registry, tracer), encoding="utf-8")
    return path
