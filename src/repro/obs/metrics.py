"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately minimal — PLL-family deployments live and
die by label-size and query-time telemetry, and the instruments here are
exactly the ones those numbers need:

* :class:`Counter` — monotonically increasing totals (cases built,
  queries answered, cache hits);
* :class:`Gauge` — last-written point-in-time values (index entry
  counts, resident cases);
* :class:`Histogram` — distributions over **fixed bucket edges** chosen
  at creation time.  Edges never move, so snapshots taken at different
  times (or in different worker processes) are always mergeable
  bucket-by-bucket, and tests can assert on bucket counts without any
  wall-clock assumptions.

Registries are process-local and single-threaded by design (CPython's
unit of parallelism here is the process — see
:mod:`repro.core.parallel`, which gives each worker chunk its own
registry and merges the snapshots at join).  Nothing in this module
imports the rest of the library, so any layer may depend on it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

Number = Union[int, float]

LATENCY_SECONDS_EDGES: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)
"""Default bucket edges for wall-clock durations in seconds."""

SIZE_EDGES: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)
"""Default bucket edges for counts/sizes (label lengths, batch sizes)."""

REQUEST_LATENCY_EDGES: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0, 30.0,
)
"""Bucket edges for served request latencies (seconds).

Wider and denser than :data:`LATENCY_SECONDS_EDGES`: an in-RAM serving
path answers in the 100µs–10ms band, but a demand-paged store
(``sief serve --cache-cases``) adds LRU-miss cliffs that land requests
in the 10ms–1s band, and a drain or timeout can take seconds — p99
under paging is meaningless if everything past 10ms falls into two
buckets.  1-2.5-5 per decade keeps quantile interpolation error under
~2.5x anywhere in the range.  Pinned by a regression test; changing
these breaks mergeability with recorded snapshots.
"""


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value; last write wins (also across merges)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A distribution over fixed, strictly increasing bucket edges.

    ``counts[i]`` holds observations ``<= edges[i]``; the final slot
    holds the overflow (``> edges[-1]``), mirroring Prometheus's
    ``+Inf`` bucket.  ``sum``/``count`` track the usual aggregates.
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(self, name: str, edges: Sequence[Number]) -> None:
        edges = tuple(edges)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} edges must be strictly increasing: {edges}"
            )
        self.name = name
        self.edges: Tuple[Number, ...] = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum: Number = 0
        self.count = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Iterable[Number]) -> None:
        for v in values:
            self.observe(v)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, sum={self.sum})"
        )


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first access and cached by name; asking
    for an existing histogram with *different* edges is an error (fixed
    edges are the mergeability contract).  ``snapshot()`` returns a
    plain-dict form that pickles/JSON-serializes cleanly, and
    ``merge_snapshot()`` folds such a snapshot back in — the pair is how
    per-worker registries combine at join.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access -------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_unique(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_unique(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, edges: Optional[Sequence[Number]] = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_unique(name, self._histograms)
            h = self._histograms[name] = Histogram(
                name, LATENCY_SECONDS_EDGES if edges is None else edges
            )
        elif edges is not None and tuple(edges) != h.edges:
            raise ValueError(
                f"histogram {name!r} already registered with edges "
                f"{h.edges}, requested {tuple(edges)}"
            )
        return h

    def _check_unique(self, name: str, own: Dict[str, object]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric name {name!r} already registered as a "
                    "different instrument type"
                )

    # -- introspection ------------------------------------------------------

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def counter_value(self, name: str) -> Number:
        """The counter's total, or 0 if it was never touched."""
        c = self._counters.get(name)
        return 0 if c is None else c.value

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (pickle/JSON friendly)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the snapshot's
        value (last write wins).  Histogram edges must match exactly.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            h = self.histogram(name, data["edges"])
            counts = data["counts"]
            if len(counts) != len(h.counts):
                raise ValueError(
                    f"histogram {name!r} snapshot has {len(counts)} buckets, "
                    f"registry has {len(h.counts)}"
                )
            for i, c in enumerate(counts):
                h.counts[i] += c
            h.sum += data["sum"]
            h.count += data["count"]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (same semantics as merge_snapshot)."""
        self.merge_snapshot(other.snapshot())

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
