"""Benchmark run history and noise-aware regression detection.

The repo's ``BENCH_*.json`` files are point-in-time snapshots; this
module makes the perf trajectory a first-class artifact.  Three pieces:

* :func:`env_metadata` — the host/toolchain fingerprint stamped into
  every recorded run (python/numpy versions, platform, CPU count, git
  SHA, hostname).  Timing numbers without it are not comparable;
  :func:`compare` *refuses* cross-host comparisons unless explicitly
  overridden.
* :class:`BenchHistory` — an append-only JSON-lines store of
  :class:`BenchRun` records, keyed by benchmark id and grouped into
  named runs (one ``record`` invocation = one run label covering
  several benchmark ids).  JSONL so records append atomically, diff
  cleanly, and concatenate across CI artifacts.
* :func:`compare` / :func:`compare_runs` — the regression verdict.
  Noise-aware by construction: each run stores **all k repetition
  samples**, and the verdict compares a robust statistic (min-of-k by
  default — the standard estimator for "how fast can this code go",
  since timing noise is one-sided — or the median).  The relative
  threshold is configurable; the samples are injectable, so the tests
  that pin PASS/FAIL behaviour never touch a wall clock.

Deployed labeling schemes (Hop-Doubling, IS-LABEL) report
order-of-magnitude sensitivity of index time/size to implementation
constants — exactly the kind of erosion an append-only history plus a
machine-checked compare catches the week it happens, instead of the
month after.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

# Canonical implementation lives in repro.obs.events (the serving layer
# exports it as a /metrics gauge and must not depend on repro.bench);
# re-exported here because every bench sidecar imports it from this module.
from repro.obs.events import peak_rss_bytes  # noqa: F401

SCHEMA_VERSION = 1

STATISTICS = ("min", "median", "mean")
"""Supported comparison statistics (min-of-k is the default)."""

DEFAULT_THRESHOLD = 0.10
"""Default relative regression threshold (candidate > baseline * 1.10)."""


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def env_metadata() -> Dict[str, object]:
    """Host/toolchain fingerprint for one benchmark result.

    Everything that moves timing numbers between machines: interpreter
    and numpy versions, platform triple, CPU count, hostname — plus the
    git SHA (when available) so a history line names the code it
    measured, and the effective kernel tier (``numpy``/``numba``/
    ``cext``) so a tier switch can never masquerade as a regression or
    an improvement: :func:`compare` refuses cross-tier comparisons the
    same way it refuses cross-host ones.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    try:
        from repro.kernels import effective_tier

        kernel_tier = effective_tier()
    except Exception:  # pragma: no cover - misconfigured explicit tier
        kernel_tier = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "hostname": socket.gethostname(),
        "git_sha": _git_sha(),
        "kernel_tier": kernel_tier,
        "peak_rss_bytes": peak_rss_bytes(),
    }


@dataclass(frozen=True)
class BenchRun:
    """One recorded benchmark: all repetition samples plus provenance."""

    bench_id: str
    samples: Tuple[float, ...]
    run: str = ""
    unit: str = "seconds"
    meta: Mapping[str, object] = field(default_factory=dict)
    extra: Mapping[str, object] = field(default_factory=dict)
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError(
                f"benchmark {self.bench_id!r} recorded with no samples"
            )
        if any(s < 0 for s in self.samples):
            raise ValueError(
                f"benchmark {self.bench_id!r} has negative samples: "
                f"{self.samples}"
            )

    def value(self, statistic: str = "min") -> float:
        """The run's representative value under ``statistic``."""
        if statistic == "min":
            return min(self.samples)
        if statistic == "median":
            return float(median(self.samples))
        if statistic == "mean":
            return sum(self.samples) / len(self.samples)
        raise ValueError(
            f"unknown statistic {statistic!r}; choose from {STATISTICS}"
        )

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "bench_id": self.bench_id,
            "run": self.run,
            "samples": list(self.samples),
            "unit": self.unit,
            "meta": dict(self.meta),
            "extra": dict(self.extra),
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_json(cls, obj: Mapping) -> "BenchRun":
        return cls(
            bench_id=obj["bench_id"],
            samples=tuple(obj["samples"]),
            run=obj.get("run", ""),
            unit=obj.get("unit", "seconds"),
            meta=dict(obj.get("meta", {})),
            extra=dict(obj.get("extra", {})),
            timestamp=obj.get("timestamp", 0.0),
        )


class CrossHostError(ValueError):
    """Baseline and candidate were measured on different hosts.

    Timing ratios across hosts are meaningless; :func:`compare` raises
    this (with both hostnames in the message) unless the caller passes
    ``allow_cross_host=True``.
    """


class CrossTierError(ValueError):
    """Baseline and candidate were measured on different kernel tiers.

    A numpy-tier baseline against a numba/cext candidate measures the
    tier switch, not the code change under test; :func:`compare` raises
    this (with both tiers in the message) unless the caller passes
    ``allow_cross_tier=True`` — which is exactly what a deliberate
    cross-tier speedup measurement should do.
    """


class BenchHistory:
    """Append-only JSON-lines store of :class:`BenchRun` records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, run: BenchRun) -> None:
        """Append one record (creates the file and parents on first use)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(run.to_json()) + "\n")

    def load(
        self,
        bench_id: Optional[str] = None,
        run: Optional[str] = None,
    ) -> List[BenchRun]:
        """All records, in file order, optionally filtered."""
        if not self.path.exists():
            return []
        out: List[BenchRun] = []
        for lineno, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{self.path}:{lineno}: not valid JSON ({exc})"
                ) from exc
            rec = BenchRun.from_json(obj)
            if bench_id is not None and rec.bench_id != bench_id:
                continue
            if run is not None and rec.run != run:
                continue
            out.append(rec)
        return out

    def run_labels(self) -> List[str]:
        """Distinct run labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for rec in self.load():
            seen.setdefault(rec.run)
        return list(seen)

    def latest(
        self, bench_id: str, run: Optional[str] = None
    ) -> Optional[BenchRun]:
        """The most recently appended record for ``bench_id``."""
        recs = self.load(bench_id=bench_id, run=run)
        return recs[-1] if recs else None


@dataclass(frozen=True)
class Comparison:
    """The verdict for one benchmark id between two runs."""

    bench_id: str
    baseline_value: float
    candidate_value: float
    ratio: float
    threshold: float
    statistic: str
    regressed: bool
    improved: bool

    @property
    def verdict(self) -> str:
        return "FAIL" if self.regressed else "PASS"

    def describe(self) -> str:
        """One printable verdict line with the id and the ratio."""
        trend = (
            "slower" if self.ratio > 1 else "faster" if self.ratio < 1 else ""
        )
        note = f" ({'improved' if self.improved else trend})" if trend else ""
        return (
            f"{self.verdict} {self.bench_id}: {self.ratio:.2f}x"
            f"{note}  [{self.statistic} {self.baseline_value:.6g}s -> "
            f"{self.candidate_value:.6g}s, threshold +{self.threshold:.0%}]"
        )


def compare(
    baseline: BenchRun,
    candidate: BenchRun,
    threshold: float = DEFAULT_THRESHOLD,
    statistic: str = "min",
    allow_cross_host: bool = False,
    allow_cross_tier: bool = False,
) -> Comparison:
    """Noise-aware regression verdict for one benchmark id.

    ``regressed`` iff ``candidate / baseline > 1 + threshold`` under the
    chosen statistic; ``improved`` is the symmetric speedup flag.  Both
    runs must carry the same ``bench_id`` and (unless overridden) the
    same recorded hostname and kernel tier — comparing timings across
    hosts or tiers answers a question nobody asked.
    """
    if baseline.bench_id != candidate.bench_id:
        raise ValueError(
            f"cannot compare different benchmarks: "
            f"{baseline.bench_id!r} vs {candidate.bench_id!r}"
        )
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    base_host = baseline.meta.get("hostname")
    cand_host = candidate.meta.get("hostname")
    if (
        not allow_cross_host
        and base_host is not None
        and cand_host is not None
        and base_host != cand_host
    ):
        raise CrossHostError(
            f"benchmark {baseline.bench_id!r}: baseline was recorded on "
            f"host {base_host!r} but candidate on {cand_host!r}; timing "
            "ratios across hosts are not meaningful "
            "(pass allow_cross_host=True / --allow-cross-host to override)"
        )
    base_tier = baseline.meta.get("kernel_tier")
    cand_tier = candidate.meta.get("kernel_tier")
    if (
        not allow_cross_tier
        and base_tier is not None
        and cand_tier is not None
        and base_tier != cand_tier
    ):
        raise CrossTierError(
            f"benchmark {baseline.bench_id!r}: baseline was recorded on "
            f"kernel tier {base_tier!r} but candidate on {cand_tier!r}; "
            "that ratio measures the tier switch, not the change under "
            "test (pass allow_cross_tier=True / --allow-cross-tier to "
            "override)"
        )
    base = baseline.value(statistic)
    cand = candidate.value(statistic)
    if base <= 0:
        # A zero-time baseline can only mean injected samples; any
        # positive candidate is then "infinitely" slower.
        ratio = float("inf") if cand > 0 else 1.0
    else:
        ratio = cand / base
    return Comparison(
        bench_id=baseline.bench_id,
        baseline_value=base,
        candidate_value=cand,
        ratio=ratio,
        threshold=threshold,
        statistic=statistic,
        regressed=ratio > 1.0 + threshold,
        improved=ratio < 1.0 - threshold,
    )


def compare_runs(
    history: BenchHistory,
    baseline_run: str,
    candidate_run: str,
    threshold: float = DEFAULT_THRESHOLD,
    statistic: str = "min",
    allow_cross_host: bool = False,
    allow_cross_tier: bool = False,
) -> Tuple[List[Comparison], List[str]]:
    """Compare every benchmark id present in both runs.

    Returns ``(comparisons, missing)`` where ``missing`` lists bench ids
    present in exactly one of the two runs (a silent disappearance is a
    gating bug, so callers should surface it).
    """
    base_recs = {r.bench_id: r for r in history.load(run=baseline_run)}
    cand_recs = {r.bench_id: r for r in history.load(run=candidate_run)}
    if not base_recs:
        raise ValueError(f"no records for baseline run {baseline_run!r}")
    if not cand_recs:
        raise ValueError(f"no records for candidate run {candidate_run!r}")
    comparisons = [
        compare(
            base_recs[bid],
            cand_recs[bid],
            threshold=threshold,
            statistic=statistic,
            allow_cross_host=allow_cross_host,
            allow_cross_tier=allow_cross_tier,
        )
        for bid in sorted(set(base_recs) & set(cand_recs))
    ]
    missing = sorted(set(base_recs) ^ set(cand_recs))
    return comparisons, missing


def default_run_label(clock=time.time) -> str:
    """A unique-enough run label when the caller didn't name one."""
    return f"run-{int(clock() * 1000)}"
