"""Benchmark workload construction.

Thin, seeded wrappers over :mod:`repro.failures.model` with the
evaluation's fixed shapes: Table 4 measures average latency over random
``(s, t, failed edge)`` triples; the ablations additionally use
cross-side (Case 4) stress triples and dual-failure pairs.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np

from repro.core.index import SIEFIndex
from repro.failures.model import (
    QueryTriple,
    cross_side_query_triples,
    random_query_triples,
)
from repro.graph.graph import Graph

Edge = Tuple[int, int]

DEFAULT_QUERY_COUNT = 1000
"""Queries per dataset for the Table 4 latency comparison."""


def table4_workload(graph: Graph, count: int = DEFAULT_QUERY_COUNT) -> List[QueryTriple]:
    """The uniform random workload Table 4's averages are taken over."""
    return random_query_triples(graph, count, seed=42)


def group_by_edge(
    triples: List[QueryTriple],
) -> List[Tuple[Edge, np.ndarray]]:
    """Regroup a triple workload into per-edge ``(s, t)`` pair batches.

    :meth:`repro.core.query.SIEFQueryEngine.batch_query` answers many
    pairs under one failed edge per call; this is the adapter from the
    Table 4 workload shape to that API.  Edges keep first-appearance
    order so the workload stays deterministic.
    """
    by_edge: dict = {}
    for q in triples:
        by_edge.setdefault(q.edge, []).append((q.s, q.t))
    return [
        (edge, np.asarray(pairs, dtype=np.int64))
        for edge, pairs in by_edge.items()
    ]


def case4_workload(index: SIEFIndex, count: int = DEFAULT_QUERY_COUNT) -> List[QueryTriple]:
    """Cross-side triples: every query must consult supplemental labels."""
    return cross_side_query_triples(index, count, seed=43)


def dual_failure_workload(
    graph: Graph, count: int, seed: int = 44
) -> List[Tuple[int, int, Edge, Edge]]:
    """``(s, t, e1, e2)`` tuples with two distinct failed edges."""
    rng = random.Random(seed)
    edges = list(graph.edges())
    n = graph.num_vertices
    out = []
    for _ in range(count):
        s = rng.randrange(n)
        t = rng.randrange(n)
        while t == s:
            t = rng.randrange(n)
        e1, e2 = rng.sample(edges, 2)
        out.append((s, t, e1, e2))
    return out


def node_failure_workload(
    graph: Graph, count: int, seed: int = 45
) -> List[Tuple[int, int, int]]:
    """``(s, t, failed vertex)`` triples with the vertex distinct from both."""
    rng = random.Random(seed)
    n = graph.num_vertices
    out = []
    while len(out) < count:
        s, t, w = rng.randrange(n), rng.randrange(n), rng.randrange(n)
        if len({s, t, w}) == 3:
            out.append((s, t, w))
    return out
