"""Cached experiment pipeline shared by all benchmark modules.

A full SIEF build is by far the most expensive step of the evaluation, and
four different tables/figures consume its outputs.  ``BenchContext``
memoizes, per dataset: the graph, the PLL labeling (with indexing time —
Table 2's IT), the full SIEF index and build report (Tables 3/5,
Figures 5/6/7).  All benchmark modules go through :func:`get_context`, so
one pytest session pays each build exactly once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bench.datasets import DATASETS, DatasetSpec, load_dataset
from repro.core.builder import BuildReport, SIEFBuilder
from repro.core.index import SIEFIndex
from repro.graph.graph import Graph
from repro.labeling.label import Labeling
from repro.labeling.pll import build_pll
from repro.order.strategies import by_degree


@dataclass
class BenchContext:
    """Everything the benchmarks need for one dataset, built lazily."""

    spec: DatasetSpec
    _graph: Optional[Graph] = field(default=None, repr=False)
    _labeling: Optional[Labeling] = field(default=None, repr=False)
    _indexing_seconds: Optional[float] = field(default=None, repr=False)
    _index: Optional[SIEFIndex] = field(default=None, repr=False)
    _report: Optional[BuildReport] = field(default=None, repr=False)

    @property
    def graph(self) -> Graph:
        """The dataset graph (giant component)."""
        if self._graph is None:
            self._graph = load_dataset(self.spec.name)
        return self._graph

    @property
    def labeling(self) -> Labeling:
        """The PLL labeling (degree ordering), built once and timed."""
        if self._labeling is None:
            graph = self.graph
            started = time.perf_counter()
            self._labeling = build_pll(graph, by_degree(graph))
            self._indexing_seconds = time.perf_counter() - started
        return self._labeling

    @property
    def indexing_seconds(self) -> float:
        """Wall-clock PLL construction time (Table 2's IT)."""
        self.labeling  # ensure built
        assert self._indexing_seconds is not None
        return self._indexing_seconds

    @property
    def index(self) -> SIEFIndex:
        """The full SIEF index (BFS ALL, every edge)."""
        self._ensure_index()
        assert self._index is not None
        return self._index

    @property
    def report(self) -> BuildReport:
        """The build report accompanying :attr:`index`."""
        self._ensure_index()
        assert self._report is not None
        return self._report

    def _ensure_index(self) -> None:
        if self._index is None:
            builder = SIEFBuilder(self.graph, self.labeling, algorithm="bfs_all")
            self._index, self._report = builder.build()


_CACHE: Dict[str, BenchContext] = {}


def get_context(name: str) -> BenchContext:
    """Process-wide memoized :class:`BenchContext` for a dataset."""
    ctx = _CACHE.get(name)
    if ctx is None:
        ctx = BenchContext(spec=DATASETS[name])
        _CACHE[name] = ctx
    return ctx


def clear_cache() -> None:
    """Drop all memoized contexts (tests use this for isolation)."""
    _CACHE.clear()
