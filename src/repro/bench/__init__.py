"""Benchmark harness: datasets, workloads, runner, reporting.

The modules here are what the ``benchmarks/`` suite drives:

* :mod:`repro.bench.datasets` — the six synthetic analogues of the
  paper's SNAP graphs, plus each dataset's published reference numbers
  so every table prints "paper vs measured" side by side.
* :mod:`repro.bench.workloads` — query/failure workload construction.
* :mod:`repro.bench.runner` — cached dataset/labeling/index pipeline so a
  single pytest session builds each dataset exactly once.
* :mod:`repro.bench.reporting` — fixed-width table and bar-chart text
  renderers matching the paper's rows and series.
* :mod:`repro.bench.history` — append-only benchmark run history with
  host/env metadata and the noise-aware regression compare behind
  ``sief bench`` (the performance sentinel).
"""

from repro.bench.datasets import (
    DATASETS,
    DatasetSpec,
    PaperReference,
    load_dataset,
)
from repro.bench.history import (
    BenchHistory,
    BenchRun,
    Comparison,
    CrossHostError,
    compare,
    compare_runs,
    env_metadata,
)
from repro.bench.runner import BenchContext, get_context, clear_cache
from repro.bench.reporting import render_table, render_grouped_bars

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "PaperReference",
    "load_dataset",
    "BenchContext",
    "get_context",
    "clear_cache",
    "render_table",
    "render_grouped_bars",
    "BenchHistory",
    "BenchRun",
    "Comparison",
    "CrossHostError",
    "compare",
    "compare_runs",
    "env_metadata",
]
