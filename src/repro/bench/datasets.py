"""The six benchmark datasets: synthetic analogues of the paper's graphs.

The paper evaluates on six SNAP snapshots.  This environment has no
network access and a pure-Python engine ~100–1000× slower than the
paper's C++ testbed, so each graph is replaced by a deterministic
synthetic analogue at ~10–25× reduced scale.  Simply shrinking each graph
while keeping |E|/|V| does **not** preserve the paper's phenomena (a
small dense graph is far more failure-robust than a large one of the same
density), so the analogues were instead calibrated — generator family and
parameters chosen per dataset — to reproduce each graph's *failure
response profile*: the ordering of affected-vertex fractions
(Wik > Ore > Fac > Gnu > CaH > CaG, Table 3), Wiki-Vote's outsized
supplemental labels and Oregon's big-AU/small-SLEN pruning signature, and
the SLEN/OLEN ratio ranking of Figure 5.  See DESIGN.md §2 and
EXPERIMENTS.md for the calibration evidence.  Every spec carries the
paper's published numbers (:class:`PaperReference`) so benchmark output
prints the reproduction side by side with the original.

If the real SNAP files are available, :func:`load_snap_file` ingests them
unchanged and the whole bench suite runs on the originals instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import DatasetError
from repro.graph import generators
from repro.graph.components import largest_component_subgraph
from repro.graph.graph import Graph


@dataclass(frozen=True)
class PaperReference:
    """The published numbers for one dataset (Tables 2–5, §5)."""

    num_vertices: int
    num_edges: int
    indexing_seconds: float          # Table 2 "IT"
    label_entries_per_vertex: float  # Table 2 "LN"
    avg_affected_pct: float          # Table 3 "Avg |AU|/|V|" (percent)
    avg_affected: float              # Table 3 "Avg |AU|"
    avg_slen: float                  # Table 3 "Avg SLEN"
    bfs_query_us: float              # Table 4 BFS query time (µs)
    sief_query_us: float             # Table 4 SIEF query time (µs)
    identification_seconds: float    # Table 5


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset: generator, scale, and paper reference."""

    name: str
    short: str          # the paper's 3-letter figure label (Gnu, Fac, ...)
    domain: str
    generator: Callable[[], Graph]
    paper: PaperReference


def _gnutella() -> Graph:
    # P2P overlay: sparse preferential topology (supernode bias); tuned to
    # the paper's mid-range affected fraction (~6-7%) and moderate SLEN.
    return generators.barabasi_albert(450, 5, seed=101)


def _facebook() -> Graph:
    # Social circles: ring of locally clustered neighborhoods with some
    # long-range friendships; matches the paper's Facebook profile
    # (2nd-largest SLEN/OLEN ratio, affected fraction between Gnutella
    # and Wiki-Vote).
    return generators.watts_strogatz(300, 8, 0.1, seed=102)


def _wiki_vote() -> Graph:
    # Voting network analogue tuned to Wiki-Vote's signature: the largest
    # affected fraction (~30%) and by far the largest supplemental labels.
    return generators.watts_strogatz(240, 4, 0.02, seed=103)


def _oregon() -> Graph:
    # AS topology: robust routed core plus a large fringe of stub ASes
    # (degree-1 tails).  Reproduces Oregon's signature: big affected sets
    # (bridge failures touch whole subtrees) but very effective label
    # pruning (small SLEN).
    core = generators.powerlaw_cluster(250, 4, 0.5, seed=104)
    return generators.attach_tail(core, 190, seed=104)


def _ca_hepth() -> Graph:
    # Collaboration network: clustered power-law (co-author triangles).
    return generators.powerlaw_cluster(420, 6, 0.85, seed=105)


def _ca_grqc() -> Graph:
    # Smaller collaboration network: dense communities, the most failure-
    # robust dataset (smallest affected fraction, smallest SLEN).
    return generators.planted_partition(240, 8, 0.5, 0.05, seed=106)


DATASETS: Dict[str, DatasetSpec] = {
    "gnutella": DatasetSpec(
        name="gnutella",
        short="Gnu",
        domain="P2P file-sharing overlay",
        generator=_gnutella,
        paper=PaperReference(6301, 20777, 0.825, 163.647, 6.053, 381.386,
                             78.445, 140.329, 0.452, 43.3708),
    ),
    "facebook": DatasetSpec(
        name="facebook",
        short="Fac",
        domain="social circles",
        generator=_facebook,
        paper=PaperReference(4039, 88234, 0.173, 25.887, 16.099, 650.241,
                             47.042, 243.060, 0.522, 80.6844),
    ),
    "wiki_vote": DatasetSpec(
        name="wiki_vote",
        short="Wik",
        domain="Wikipedia voting",
        generator=_wiki_vote,
        paper=PaperReference(7115, 103689, 0.525, 69.915, 35.841, 2550.090,
                             396.971, 284.867, 1.100, 612.522),
    ),
    "oregon": DatasetSpec(
        name="oregon",
        short="Ore",
        domain="autonomous-system topology",
        generator=_oregon,
        paper=PaperReference(11174, 23409, 0.080, 11.189, 25.605, 2861.070,
                             45.323, 163.465, 4.985, 35.6307),
    ),
    "ca_hepth": DatasetSpec(
        name="ca_hepth",
        short="CaH",
        domain="HEP-Th collaboration",
        generator=_ca_hepth,
        paper=PaperReference(9877, 51971, 0.557, 75.311, 2.743, 270.881,
                             51.095, 325.196, 0.689, 36.2022),
    ),
    "ca_grqc": DatasetSpec(
        name="ca_grqc",
        short="CaG",
        domain="GR-QC collaboration",
        generator=_ca_grqc,
        paper=PaperReference(5242, 28980, 0.141, 43.828, 1.486, 77.884,
                             13.064, 159.412, 0.479, 4.32942),
    ),
}

DATASET_ORDER: List[str] = list(DATASETS)
"""Presentation order, matching the paper's tables."""


def load_dataset(name: str) -> Graph:
    """Generate the named dataset, restricted to its giant component.

    The paper's snapshots are (effectively) connected; the giant-component
    restriction makes the analogues match that, and keeps "disconnected"
    query answers attributable to *failures* rather than to baseline
    fragmentation.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    graph = spec.generator()
    giant, _mapping = largest_component_subgraph(graph)
    return giant


def load_snap_file(path: str) -> Graph:
    """Load a real SNAP edge-list file as a benchmark graph.

    Drop-in replacement for :func:`load_dataset` when the original
    datasets are on disk; applies the same giant-component restriction.
    """
    from repro.graph.io import read_edge_list

    graph, _names = read_edge_list(path)
    giant, _mapping = largest_component_subgraph(graph)
    return giant
