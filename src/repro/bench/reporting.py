"""Text renderers for the reproduced tables and figures.

The paper's figures are bar charts; in a terminal we render them as
fixed-width tables plus log-scale ASCII bars, keeping the same series
names and dataset order so EXPERIMENTS.md reads against the paper
directly.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value != 0 and (abs(value) >= 100_000 or abs(value) < 0.001):
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    note: Optional[str] = None,
) -> str:
    """A fixed-width table with a title rule, ready to print."""
    cells = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"=== {title} ==="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_grouped_bars(
    title: str,
    groups: Sequence[str],
    series: Sequence[str],
    values: Sequence[Sequence[float]],
    log_scale: bool = False,
    width: int = 46,
    unit: str = "",
) -> str:
    """ASCII grouped bar chart: one block of bars per group (dataset).

    ``values[g][s]`` is the bar for series ``s`` in group ``g``.  With
    ``log_scale`` bars are proportional to ``log10`` of the value, which
    is how the paper draws Figure 7.
    """
    flat = [v for group in values for v in group if v > 0]
    if not flat:
        return f"=== {title} ===\n(no data)"
    vmax = max(flat)
    vmin = min(flat)

    def bar_len(v: float) -> int:
        if v <= 0:
            return 0
        if log_scale:
            lo = math.log10(vmin) - 0.5
            hi = math.log10(vmax)
            if hi <= lo:
                return width
            return max(1, round(width * (math.log10(v) - lo) / (hi - lo)))
        return max(1, round(width * v / vmax))

    label_w = max(len(s) for s in series)
    lines = [f"=== {title} ==={' (log scale)' if log_scale else ''}"]
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for si, name in enumerate(series):
            v = values[gi][si]
            bar = "#" * bar_len(v)
            lines.append(
                f"  {name.ljust(label_w)} |{bar} {_format_cell(v)}{unit}"
            )
    return "\n".join(lines)


def render_env(meta: dict) -> str:
    """One-line host/toolchain footer for rendered benchmark results.

    Keyed off :func:`repro.bench.history.env_metadata`; stamped under
    every emitted table so a number in EXPERIMENTS.md always names the
    interpreter, host and commit that produced it.
    """
    parts = [
        f"python {meta.get('python')}",
        f"numpy {meta.get('numpy')}",
        f"{meta.get('machine')} x{meta.get('cpu_count')}",
        f"host {meta.get('hostname')}",
    ]
    sha = meta.get("git_sha")
    if sha:
        parts.append(f"git {sha}")
    return "env: " + ", ".join(str(p) for p in parts)


def render_ratio_line(label: str, ours: float, paper: float) -> str:
    """One "measured vs paper" comparison line for EXPERIMENTS.md."""
    if paper == 0:
        return f"{label}: measured {_format_cell(ours)} (paper: 0)"
    return (
        f"{label}: measured {_format_cell(ours)} "
        f"vs paper {_format_cell(paper)} "
        f"(x{ours / paper:.2f})"
    )
