"""Assemble all rendered benchmark results into one report.

``pytest benchmarks/ --benchmark-only`` writes each table/figure to
``benchmarks/results/<name>.txt``; this module stitches them into a
single Markdown document so a fresh run's full evidence can be reviewed
(or diffed against EXPERIMENTS.md) in one place::

    python -m repro.bench.report_all [results_dir] [-o report.md]
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

# Presentation order: the paper's tables/figures first, then our extras.
SECTION_ORDER = [
    ("table2_datasets", "Table 2 — datasets and PLL statistics"),
    ("table3_affected", "Table 3 — affected vertices"),
    ("table4_query_time", "Table 4 — query time"),
    ("table5_identification", "Table 5 — identification time"),
    ("fig5_label_entries", "Figure 5 — SLEN vs OLEN"),
    ("fig6_index_size", "Figure 6 — index size"),
    ("fig7_labeling_time", "Figure 7 — relabeling cost"),
    ("scaling_query_speedup", "Scaling — query speedup vs graph size"),
    ("ablation_ordering", "Ablation — vertex ordering"),
    ("ablation_substrate", "Ablation — labeling substrate (PLL vs ISL)"),
    ("ablation_lazy_dynamic", "Ablation — lazy index & dynamic repair"),
    ("ablation_extensions", "Ablation — weighted & directed SIEF"),
    ("ablation_failures", "Ablation — dual-edge & node failure oracles"),
]


def collect_sections(results_dir: Path) -> List[Tuple[str, str]]:
    """(title, body) pairs for every known result file present, in order,
    followed by any unknown ``*.txt`` files alphabetically."""
    sections: List[Tuple[str, str]] = []
    known = set()
    for stem, title in SECTION_ORDER:
        path = results_dir / f"{stem}.txt"
        known.add(path.name)
        if path.exists():
            sections.append((title, path.read_text(encoding="utf-8").strip()))
    for path in sorted(results_dir.glob("*.txt")):
        if path.name not in known:
            sections.append((path.stem, path.read_text(encoding="utf-8").strip()))
    return sections


def build_report(results_dir: Path) -> str:
    """The assembled Markdown document."""
    sections = collect_sections(results_dir)
    lines = [
        "# SIEF reproduction — benchmark report",
        "",
        f"Assembled from `{results_dir}`; regenerate the inputs with "
        "`pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    if not sections:
        lines.append(
            "*No results found — run the benchmark suite first.*"
        )
    for title, body in sections:
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.report_all",
        description="assemble benchmarks/results/*.txt into one report",
    )
    default_dir = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    parser.add_argument(
        "results_dir", nargs="?", default=str(default_dir),
        help=f"directory of rendered results (default: {default_dir})",
    )
    parser.add_argument("--output", "-o", default="-",
                        help="output file ('-' = stdout)")
    args = parser.parse_args(argv)
    report = build_report(Path(args.results_dir))
    if args.output == "-":
        print(report)
    else:
        Path(args.output).write_text(report, encoding="utf-8")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
