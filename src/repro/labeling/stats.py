"""Labeling size statistics (Table 2's LN column, Figure 6's byte sizes).

The byte model matches the paper's C++ layout: one label entry is a
32-bit hub id plus a 32-bit distance = 8 bytes (:data:`BYTES_PER_ENTRY`),
plus an 8-byte offset per vertex for the per-vertex array header.  The
paper's "slightly more than 5 MB" for Gnutella corresponds to ~1.03 M
entries under a similar accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.labeling.label import Labeling

BYTES_PER_ENTRY = 8
"""Modelled bytes per label entry (4 B hub id + 4 B distance)."""

BYTES_PER_VERTEX_OVERHEAD = 8
"""Modelled per-vertex offset overhead."""


@dataclass(frozen=True)
class LabelingStats:
    """Size summary of one labeling."""

    num_vertices: int
    total_entries: int
    avg_entries: float
    max_entries: int
    min_entries: int
    bytes_modelled: int

    @property
    def megabytes(self) -> float:
        """Modelled size in MB (10^6 bytes, as the paper reports)."""
        return self.bytes_modelled / 1_000_000

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for table rendering."""
        return {
            "num_vertices": self.num_vertices,
            "total_entries": self.total_entries,
            "avg_entries": self.avg_entries,
            "max_entries": self.max_entries,
            "min_entries": self.min_entries,
            "bytes_modelled": self.bytes_modelled,
            "megabytes": self.megabytes,
        }


def labeling_bytes(total_entries: int, num_vertices: int) -> int:
    """Apply the byte model to raw counts."""
    return (
        total_entries * BYTES_PER_ENTRY
        + num_vertices * BYTES_PER_VERTEX_OVERHEAD
    )


def labeling_stats(labeling: Labeling) -> LabelingStats:
    """Compute :class:`LabelingStats` for ``labeling`` (either backend)."""
    n = labeling.num_vertices
    if labeling.offsets is not None:
        # Frozen backend: sizes are one vectorized diff over the offsets.
        sizes_arr = np.diff(labeling.offsets)
        total = int(sizes_arr.sum())
        max_e = int(sizes_arr.max()) if n else 0
        min_e = int(sizes_arr.min()) if n else 0
    else:
        sizes = [labeling.label_size(v) for v in range(n)]
        total = sum(sizes)
        max_e = max(sizes) if sizes else 0
        min_e = min(sizes) if sizes else 0
    return LabelingStats(
        num_vertices=n,
        total_entries=total,
        avg_entries=total / n if n else 0.0,
        max_entries=max_e,
        min_entries=min_e,
        bytes_modelled=labeling_bytes(total, n),
    )
