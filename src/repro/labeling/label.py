"""Label data structures for 2-hop distance labelings.

Internally hubs are stored as **ranks** (positions in the vertex
ordering), not vertex ids: every algorithm in the paper compares hubs by
``σ``, and rank-keyed labels make the well-ordering property a simple
"sorted, all entries < my own rank" invariant and distance queries a merge
join of two ascending arrays.  The public accessors translate back to
vertex ids for display.

Storage backends
----------------

A :class:`Labeling` has two interchangeable representations:

* **thawed** (the construction form) — per-vertex Python lists
  ``hub_ranks[v]`` / ``hub_dists[v]``; cheap appends, the form every
  builder (PLL, ISL, dynamic maintenance) writes into.
* **frozen** (the query form) — three flat numpy arrays in CSR style:
  ``offsets`` (``int64``, length ``n+1``), ``hubs_flat`` and
  ``dists_flat`` (length ``total_entries``), where ``L(v)`` occupies
  ``hubs_flat[offsets[v]:offsets[v+1]]``.  This is the cache-friendly layout
  of Akiba et al.'s PLL implementation and the substrate the vectorized
  batch queries (:func:`repro.labeling.query.batch_dist_query`) run on.

:meth:`Labeling.freeze` converts lists → arrays in place (dropping the
lists); :meth:`Labeling.thaw` converts back.  While frozen, ``hub_ranks``
and ``hub_dists`` are read-only row views that materialize each row as a
fresh Python list, so every read path (scalar queries, verification,
serialization, path extraction) works identically on both backends.
Mutating code must call :meth:`~Labeling.thaw` first — assigning into a
frozen row view raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import LabelingError
from repro.order.ordering import VertexOrdering


@dataclass(frozen=True)
class LabelEntry:
    """One ``(hub vertex, distance)`` pair as presented to users."""

    hub: int
    distance: int


class _FlatRows:
    """Read-only per-vertex row view over a frozen (offsets, data) pair.

    ``rows[v]`` materializes row ``v`` as a fresh Python list, which keeps
    list-era call sites (``.index``, slicing, iteration, JSON encoding)
    working unchanged against the flat arrays.  Writes are rejected: a
    frozen labeling must be thawed before mutation.
    """

    __slots__ = ("offsets", "data")

    def __init__(self, offsets: np.ndarray, data: np.ndarray) -> None:
        self.offsets = offsets
        self.data = data

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __getitem__(self, v: int) -> List[int]:
        return self.data[self.offsets[v] : self.offsets[v + 1]].tolist()

    def __setitem__(self, v: int, value) -> None:
        raise LabelingError(
            "labeling is frozen (flat numpy backend); call thaw() before mutating"
        )

    def __iter__(self) -> Iterator[List[int]]:
        for v in range(len(self)):
            yield self[v]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _FlatRows):
            return bool(
                np.array_equal(self.offsets, other.offsets)
                and np.array_equal(self.data, other.data)
            )
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                self[v] == list(other[v]) for v in range(len(self))
            )
        return NotImplemented


class Labeling:
    """A 2-hop distance labeling bound to a vertex ordering.

    Per vertex ``v`` the labeling keeps two parallel sequences:
    ``hub_ranks[v]`` (strictly ascending ranks) and ``hub_dists[v]``.
    Construction code appends entries in ascending-rank rounds, so the
    invariant holds for free; :meth:`validate` re-checks it.  See the
    module docstring for the thawed (list) vs frozen (flat numpy)
    backends.
    """

    __slots__ = (
        "ordering",
        "hub_ranks",
        "hub_dists",
        "offsets",
        "hubs_flat",
        "dists_flat",
        "_batch_cache",
    )

    def __init__(
        self,
        ordering: VertexOrdering,
        hub_ranks: Sequence[List[int]],
        hub_dists: Sequence[List[int]],
    ) -> None:
        if len(hub_ranks) != len(ordering) or len(hub_dists) != len(ordering):
            raise LabelingError(
                f"label arrays cover {len(hub_ranks)}/{len(hub_dists)} vertices, "
                f"ordering has {len(ordering)}"
            )
        self.ordering = ordering
        self.hub_ranks: List[List[int]] = list(hub_ranks)
        self.hub_dists: List[List[int]] = list(hub_dists)
        self.offsets: Optional[np.ndarray] = None
        self.hubs_flat: Optional[np.ndarray] = None
        self.dists_flat: Optional[np.ndarray] = None
        #: lazily built acceleration structures for batch queries
        #: (owned by :mod:`repro.labeling.query`); valid only while frozen.
        self._batch_cache = None

    # -- construction helpers ---------------------------------------------

    @classmethod
    def empty(cls, ordering: VertexOrdering) -> "Labeling":
        """A labeling with no entries (used by builders)."""
        n = len(ordering)
        return cls(ordering, [[] for _ in range(n)], [[] for _ in range(n)])

    @classmethod
    def from_flat(
        cls,
        ordering: VertexOrdering,
        offsets: np.ndarray,
        hubs: np.ndarray,
        dists: np.ndarray,
    ) -> "Labeling":
        """Build a labeling directly in the frozen form (zero-copy).

        ``offsets`` must have length ``n+1`` with ``offsets[0] == 0`` and
        ``offsets[-1] == len(hubs) == len(dists)``.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        hubs = np.asarray(hubs)
        dists = np.asarray(dists)
        n = len(ordering)
        if len(offsets) != n + 1 or (n >= 0 and (len(offsets) == 0 or offsets[0] != 0)):
            raise LabelingError(
                f"offsets length {len(offsets)} does not match {n} vertices"
            )
        if offsets[-1] != len(hubs) or len(hubs) != len(dists):
            raise LabelingError(
                "flat arrays inconsistent: offsets[-1] "
                f"{int(offsets[-1])}, hubs {len(hubs)}, dists {len(dists)}"
            )
        labeling = cls.empty(ordering)
        labeling.offsets = offsets
        labeling.hubs_flat = hubs
        labeling.dists_flat = dists
        labeling.hub_ranks = _FlatRows(offsets, hubs)
        labeling.hub_dists = _FlatRows(offsets, dists)
        return labeling

    # -- backend lifecycle -------------------------------------------------

    @property
    def frozen(self) -> bool:
        """Whether the flat numpy backend is active."""
        return self.offsets is not None

    def freeze(self) -> "Labeling":
        """Switch to the flat numpy backend in place (idempotent).

        Concatenates the per-vertex lists into ``offsets``/``hubs``/
        ``dists`` and replaces ``hub_ranks``/``hub_dists`` with read-only
        row views.  Distances freeze to ``int32`` when every value is
        integral (the unweighted case) and ``float64`` otherwise, so the
        weighted PLL variant freezes losslessly too.  Returns ``self``.
        """
        if self.frozen:
            return self
        n = len(self.hub_ranks)
        sizes = np.fromiter(
            (len(r) for r in self.hub_ranks), count=n, dtype=np.int64
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        total = int(offsets[-1])
        hubs = np.empty(total, dtype=np.int32)
        dists_f = np.empty(total, dtype=np.float64)
        pos = 0
        for ranks_v, dists_v in zip(self.hub_ranks, self.hub_dists):
            k = len(ranks_v)
            hubs[pos : pos + k] = ranks_v
            dists_f[pos : pos + k] = dists_v
            pos += k
        as_int = dists_f.astype(np.int64)
        if np.array_equal(as_int, dists_f):
            dists = as_int.astype(np.int32) if total == 0 or (
                as_int.size and abs(as_int).max() < 2**31
            ) else as_int
        else:
            dists = dists_f
        self.offsets = offsets
        self.hubs_flat = hubs
        self.dists_flat = dists
        self.hub_ranks = _FlatRows(offsets, hubs)
        self.hub_dists = _FlatRows(offsets, dists)
        return self

    def thaw(self) -> "Labeling":
        """Switch back to the per-vertex list backend (idempotent).

        Rebuilds the Python lists from the flat arrays and drops the
        arrays; call before any in-place mutation.  Returns ``self``.
        """
        if not self.frozen:
            return self
        self.hub_ranks = [row for row in self.hub_ranks]
        self.hub_dists = [row for row in self.hub_dists]
        self.offsets = None
        self.hubs_flat = None
        self.dists_flat = None
        self._batch_cache = None
        return self

    # -- accessors ----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of labeled vertices."""
        return len(self.hub_ranks)

    def label_size(self, v: int) -> int:
        """Number of entries in ``L(v)``."""
        if self.offsets is not None:
            return int(self.offsets[v + 1] - self.offsets[v])
        return len(self.hub_ranks[v])

    def total_entries(self) -> int:
        """Total label entries over all vertices."""
        if self.offsets is not None:
            return int(self.offsets[-1])
        return sum(len(ranks) for ranks in self.hub_ranks)

    def entries(self, v: int) -> List[LabelEntry]:
        """``L(v)`` as user-facing ``(hub vertex id, distance)`` pairs."""
        vertex = self.ordering.vertex
        return [
            LabelEntry(vertex(r), d)
            for r, d in zip(self.hub_ranks[v], self.hub_dists[v])
        ]

    def hubs(self, v: int) -> List[int]:
        """Hub vertex ids of ``L(v)``, ascending by rank."""
        vertex = self.ordering.vertex
        return [vertex(r) for r in self.hub_ranks[v]]

    def iter_raw(self) -> Iterator[Tuple[int, List[int], List[int]]]:
        """Yield ``(vertex, hub_ranks, hub_dists)`` triples (internal form)."""
        for v, (ranks, dists) in enumerate(zip(self.hub_ranks, self.hub_dists)):
            yield v, ranks, dists

    # -- invariants -----------------------------------------------------------

    def validate(self) -> List[str]:
        """Check structural invariants; returns violations (empty == ok)."""
        problems: List[str] = []
        n = self.num_vertices
        if self.offsets is not None:
            if int(self.offsets[0]) != 0 or np.any(np.diff(self.offsets) < 0):
                problems.append("offsets not non-decreasing from 0")
        for v in range(n):
            ranks = self.hub_ranks[v]
            dists = self.hub_dists[v]
            if len(ranks) != len(dists):
                problems.append(f"L({v}): rank/dist length mismatch")
                continue
            own = self.ordering.rank(v)
            for i, (r, d) in enumerate(zip(ranks, dists)):
                if not 0 <= r < n:
                    problems.append(f"L({v})[{i}]: hub rank {r} out of range")
                if d < 0:
                    problems.append(f"L({v})[{i}]: negative distance {d}")
                if r > own:
                    problems.append(
                        f"L({v})[{i}]: hub rank {r} exceeds own rank {own} "
                        "(well-ordering violated)"
                    )
            if any(ranks[i] >= ranks[i + 1] for i in range(len(ranks) - 1)):
                problems.append(f"L({v}): hub ranks not strictly ascending")
        return problems

    def copy(self) -> "Labeling":
        """Deep copy (same ordering object, same backend)."""
        if self.frozen:
            return Labeling.from_flat(
                self.ordering,
                self.offsets.copy(),
                self.hubs_flat.copy(),
                self.dists_flat.copy(),
            )
        return Labeling(
            self.ordering,
            [list(r) for r in self.hub_ranks],
            [list(d) for d in self.hub_dists],
        )

    def __eq__(self, other: object) -> bool:
        """Content equality, independent of which backend either side uses."""
        if not isinstance(other, Labeling):
            return NotImplemented
        if self.ordering != other.ordering:
            return False
        if self.num_vertices != other.num_vertices:
            return False
        return all(
            self.hub_ranks[v] == other.hub_ranks[v]
            and self.hub_dists[v] == other.hub_dists[v]
            for v in range(self.num_vertices)
        )

    def __repr__(self) -> str:
        backend = "flat" if self.frozen else "lists"
        return (
            f"Labeling(n={self.num_vertices}, "
            f"entries={self.total_entries()}, backend={backend})"
        )
