"""Label data structures for 2-hop distance labelings.

Internally hubs are stored as **ranks** (positions in the vertex
ordering), not vertex ids: every algorithm in the paper compares hubs by
``σ``, and rank-keyed labels make the well-ordering property a simple
"sorted, all entries < my own rank" invariant and distance queries a merge
join of two ascending arrays.  The public accessors translate back to
vertex ids for display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.exceptions import LabelingError
from repro.order.ordering import VertexOrdering


@dataclass(frozen=True)
class LabelEntry:
    """One ``(hub vertex, distance)`` pair as presented to users."""

    hub: int
    distance: int


class Labeling:
    """A 2-hop distance labeling bound to a vertex ordering.

    Per vertex ``v`` the labeling keeps two parallel lists:
    ``hub_ranks[v]`` (strictly ascending ranks) and ``hub_dists[v]``.
    Construction code appends entries in ascending-rank rounds, so the
    invariant holds for free; :meth:`validate` re-checks it.
    """

    __slots__ = ("ordering", "hub_ranks", "hub_dists")

    def __init__(
        self,
        ordering: VertexOrdering,
        hub_ranks: Sequence[List[int]],
        hub_dists: Sequence[List[int]],
    ) -> None:
        if len(hub_ranks) != len(ordering) or len(hub_dists) != len(ordering):
            raise LabelingError(
                f"label arrays cover {len(hub_ranks)}/{len(hub_dists)} vertices, "
                f"ordering has {len(ordering)}"
            )
        self.ordering = ordering
        self.hub_ranks: List[List[int]] = list(hub_ranks)
        self.hub_dists: List[List[int]] = list(hub_dists)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def empty(cls, ordering: VertexOrdering) -> "Labeling":
        """A labeling with no entries (used by builders)."""
        n = len(ordering)
        return cls(ordering, [[] for _ in range(n)], [[] for _ in range(n)])

    # -- accessors ----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of labeled vertices."""
        return len(self.hub_ranks)

    def label_size(self, v: int) -> int:
        """Number of entries in ``L(v)``."""
        return len(self.hub_ranks[v])

    def total_entries(self) -> int:
        """Total label entries over all vertices."""
        return sum(len(ranks) for ranks in self.hub_ranks)

    def entries(self, v: int) -> List[LabelEntry]:
        """``L(v)`` as user-facing ``(hub vertex id, distance)`` pairs."""
        vertex = self.ordering.vertex
        return [
            LabelEntry(vertex(r), d)
            for r, d in zip(self.hub_ranks[v], self.hub_dists[v])
        ]

    def hubs(self, v: int) -> List[int]:
        """Hub vertex ids of ``L(v)``, ascending by rank."""
        vertex = self.ordering.vertex
        return [vertex(r) for r in self.hub_ranks[v]]

    def iter_raw(self) -> Iterator[Tuple[int, List[int], List[int]]]:
        """Yield ``(vertex, hub_ranks, hub_dists)`` triples (internal form)."""
        for v, (ranks, dists) in enumerate(zip(self.hub_ranks, self.hub_dists)):
            yield v, ranks, dists

    # -- invariants -----------------------------------------------------------

    def validate(self) -> List[str]:
        """Check structural invariants; returns violations (empty == ok)."""
        problems: List[str] = []
        n = self.num_vertices
        for v in range(n):
            ranks = self.hub_ranks[v]
            dists = self.hub_dists[v]
            if len(ranks) != len(dists):
                problems.append(f"L({v}): rank/dist length mismatch")
                continue
            own = self.ordering.rank(v)
            for i, (r, d) in enumerate(zip(ranks, dists)):
                if not 0 <= r < n:
                    problems.append(f"L({v})[{i}]: hub rank {r} out of range")
                if d < 0:
                    problems.append(f"L({v})[{i}]: negative distance {d}")
                if r > own:
                    problems.append(
                        f"L({v})[{i}]: hub rank {r} exceeds own rank {own} "
                        "(well-ordering violated)"
                    )
            if any(ranks[i] >= ranks[i + 1] for i in range(len(ranks) - 1)):
                problems.append(f"L({v}): hub ranks not strictly ascending")
        return problems

    def copy(self) -> "Labeling":
        """Deep copy (same ordering object)."""
        return Labeling(
            self.ordering,
            [list(r) for r in self.hub_ranks],
            [list(d) for d in self.hub_dists],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Labeling):
            return NotImplemented
        return (
            self.ordering == other.ordering
            and self.hub_ranks == other.hub_ranks
            and self.hub_dists == other.hub_dists
        )

    def __repr__(self) -> str:
        return (
            f"Labeling(n={self.num_vertices}, entries={self.total_entries()})"
        )
