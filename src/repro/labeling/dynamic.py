"""Incremental 2-hop labeling maintenance for edge insertions.

The paper's related work (§2) discusses Akiba, Iwata & Yoshida's dynamic
PLL (WWW 2014): on *insertion* of an edge, the labeling can be repaired
by resuming pruned BFS from the affected hubs, keeping outdated entries —
they are overestimates, and queries take a minimum, so correctness
survives while minimality is (deliberately) given up.  *Deletions* cannot
be handled this way, which is precisely the gap SIEF fills.

This module supplies that insertion-side maintenance, making the library
cover both directions of change: insertions via :func:`insert_edge`,
single-edge deletions via the SIEF supplemental index.

Algorithm (per new edge ``(a, b)``):

1. Collect the hubs of ``L(a)`` and ``L(b)``, process ascending by rank.
2. For hub ``r`` from ``L(a)``'s side: new shortest paths through the
   edge enter ``b`` at distance ``dist(r, a) + 1``; resume a pruned BFS
   from ``b`` at that distance over the *new* graph, appending
   ``(rank(r), d)`` to every visited vertex whose current query distance
   to ``r`` exceeds ``d`` (and whose rank permits the entry under
   well-ordering).  Symmetrically for hubs of ``L(b)`` starting at ``a``.

Entries are inserted in rank position, so all structural invariants of
:class:`~repro.labeling.label.Labeling` (sorted, well-ordered) keep
holding, and the labeling remains an exact distance cover of the grown
graph — property-tested against BFS in ``tests/test_dynamic_labeling.py``.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Dict, List, Set, Tuple

from repro.exceptions import LabelingError
from repro.graph.graph import Graph
from repro.labeling.label import Labeling
from repro.labeling.query import dist_query


def _upsert_entry(labeling: Labeling, w: int, rank: int, d: int) -> None:
    """Insert ``(rank, d)`` into ``L(w)`` keeping ranks ascending.

    An existing entry for the same hub is overwritten when the new
    distance improves it.
    """
    ranks = labeling.hub_ranks[w]
    dists = labeling.hub_dists[w]
    i = bisect.bisect_left(ranks, rank)
    if i < len(ranks) and ranks[i] == rank:
        if d < dists[i]:
            dists[i] = d
        return
    ranks.insert(i, rank)
    dists.insert(i, d)


def _resume_pruned_bfs(
    graph: Graph,
    labeling: Labeling,
    hub_rank: int,
    start: int,
    start_dist: int,
) -> int:
    """Resume the hub's pruned BFS at ``start``; returns entries touched.

    Visits only vertices whose distance-to-hub improves below what the
    current labeling answers — everything else is pruned, which keeps
    the repair proportional to the insertion's impact.
    """
    hub = labeling.ordering.vertex(hub_rank)
    rank_of = labeling.ordering.rank
    adj = graph.adjacency()
    touched = 0
    seen: Dict[int, int] = {start: start_dist}
    queue = deque(((start, start_dist),))
    while queue:
        w, d = queue.popleft()
        if dist_query(labeling, hub, w) <= d:
            continue  # already covered: nothing below here improves
        if rank_of(w) >= hub_rank:
            _upsert_entry(labeling, w, hub_rank, d)
            touched += 1
        # Even when well-ordering forbids storing the entry at w (w is
        # ranked above the hub... i.e. below numerically), the improved
        # distance may still propagate to storable vertices behind it.
        nd = d + 1
        for x in adj[w]:
            if x not in seen or seen[x] > nd:
                seen[x] = nd
                queue.append((x, nd))
    return touched


def insert_edge(graph: Graph, labeling: Labeling, a: int, b: int) -> int:
    """Add edge ``(a, b)`` to ``graph`` and repair ``labeling`` in place.

    Returns the number of label entries written.  After the call the
    labeling is an exact (possibly non-minimal) well-ordered distance
    cover of the grown graph; stale entries are retained as the dynamic
    PLL paper prescribes.

    Raises
    ------
    LabelingError
        If the labeling does not cover this graph's vertex count.
    """
    if labeling.num_vertices != graph.num_vertices:
        raise LabelingError(
            f"labeling covers {labeling.num_vertices} vertices, "
            f"graph has {graph.num_vertices}"
        )
    labeling.thaw()  # repair appends into the per-vertex lists
    graph.add_edge(a, b)

    # Affected hubs: every hub of either endpoint (new paths through the
    # edge must pass one endpoint right before crossing it).
    hub_ranks: Set[int] = set(labeling.hub_ranks[a])
    hub_ranks.update(labeling.hub_ranks[b])

    touched = 0
    for rank in sorted(hub_ranks):
        hub = labeling.ordering.vertex(rank)
        da = dist_query(labeling, hub, a)
        db = dist_query(labeling, hub, b)
        # Resume toward whichever endpoint the edge now improves.
        if da + 1 < db:
            touched += _resume_pruned_bfs(graph, labeling, rank, b, da + 1)
        elif db + 1 < da:
            touched += _resume_pruned_bfs(graph, labeling, rank, a, db + 1)
        else:
            # The edge creates alternative same-length paths; distances
            # from this hub are unchanged.
            continue
    return touched


def insert_edges(
    graph: Graph, labeling: Labeling, edges: List[Tuple[int, int]]
) -> int:
    """Insert several edges, repairing after each; returns total entries."""
    return sum(insert_edge(graph, labeling, a, b) for a, b in edges)
