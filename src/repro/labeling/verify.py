"""Labeling verification: well-ordering and distance-cover checks.

These checks are the test suite's backbone: a labeling that passes
:func:`verify_labeling` satisfies exactly the preconditions the SIEF
theorems (Lemmas 1–4) assume.
"""

from __future__ import annotations

from typing import List

from repro.graph.traversal import UNREACHED, bfs_distances
from repro.labeling.label import Labeling
from repro.labeling.query import INF, dist_query


def is_well_ordered(labeling: Labeling) -> bool:
    """Definition 1: no label of ``v`` contains a hub ranked above ``v``.

    With rank-keyed labels this is simply "every entry rank <= own rank";
    structural validity (sortedness etc.) is checked too.
    """
    return not labeling.validate()


def is_distance_cover(labeling: Labeling, graph) -> bool:
    """Whether ``dist_query`` matches BFS distance for **all** pairs.

    Exhaustive (one BFS per vertex) — intended for the small graphs used
    in tests, not for benchmark datasets.
    """
    return not cover_violations(labeling, graph, limit=1)


def cover_violations(labeling: Labeling, graph, limit: int = 10) -> List[str]:
    """Describe up to ``limit`` pairs where the labeling disagrees with BFS."""
    problems: List[str] = []
    n = graph.num_vertices
    for s in range(n):
        truth = bfs_distances(graph, s)
        for t in range(s, n):
            expected = truth[t] if truth[t] != UNREACHED else INF
            got = dist_query(labeling, s, t)
            if got != expected:
                problems.append(
                    f"dist({s}, {t}): labeling says {got}, BFS says {expected}"
                )
                if len(problems) >= limit:
                    return problems
    return problems


def verify_labeling(labeling: Labeling, graph) -> None:
    """Assert both well-ordering and exact distance cover (test helper)."""
    structural = labeling.validate()
    if structural:
        raise AssertionError(
            "labeling structurally invalid:\n  " + "\n  ".join(structural)
        )
    cover = cover_violations(labeling, graph)
    if cover:
        raise AssertionError(
            "labeling is not a distance cover:\n  " + "\n  ".join(cover)
        )


def hub_is_on_shortest_path(labeling: Labeling, graph, s: int, t: int) -> bool:
    """Lemma 2/3 sanity probe: the minimizing hub lies on a shortest path.

    Returns True when the hub achieving ``dist(s, t, L)`` satisfies
    ``d(s,h) + d(h,t) == d(s,t)`` per BFS ground truth.
    """
    best = dist_query(labeling, s, t)
    if best == INF or s == t:
        return True
    from_s = bfs_distances(graph, s)
    from_t = bfs_distances(graph, t)
    for rank, d_hs in zip(labeling.hub_ranks[s], labeling.hub_dists[s]):
        # Find matching entry in L(t).
        try:
            j = labeling.hub_ranks[t].index(rank)
        except ValueError:
            continue
        if d_hs + labeling.hub_dists[t][j] == best:
            h = labeling.ordering.vertex(rank)
            if from_s[h] + from_t[h] == best:
                return True
    return False
