"""IS-Label: independent-set based 2-hop labeling (Fu et al., VLDB 2013).

The paper's related work (§2) surveys ISL as the memory-constrained
alternative to PLL: repeatedly peel an *independent set* of low-degree
vertices off the graph, adding augmenting edges between each peeled
vertex's neighbors so the remaining graph preserves all distances; stop
at a small core; then derive labels top-down — a core vertex knows its
distance to every lower-ranked core vertex, and a peeled vertex merges
its (augmented-graph) neighbors' labels plus one hop.

The result is a **well-ordered 2-hop distance cover** under the order
"core first (by degree), then by descending peel level" — exactly the
property SIEF's Definition 1 requires — so the SIEF supplemental
construction runs on ISL labels unchanged.  ``tests/test_isl.py``
verifies both the cover and SIEF-on-ISL end to end, backing the paper's
claim that the framework is generic over well-ordered labelings.

This implementation targets the unweighted graphs of the paper's
evaluation; augmenting edges carry integer weights internally.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import LabelingError
from repro.graph.graph import Graph
from repro.labeling.label import Labeling
from repro.order.ordering import VertexOrdering

_CORE_LIMIT_DEFAULT = 16


def _greedy_independent_set(
    adjacency: Dict[int, Dict[int, int]], alive: List[int]
) -> Set[int]:
    """Low-degree-first greedy independent set over the current graph."""
    chosen: Set[int] = set()
    blocked: Set[int] = set()
    for v in sorted(alive, key=lambda x: (len(adjacency[x]), x)):
        if v in blocked:
            continue
        chosen.add(v)
        blocked.add(v)
        blocked.update(adjacency[v])
    return chosen


def _peel(
    graph: Graph, core_limit: int
) -> Tuple[Dict[int, Dict[int, int]], List[int], List[Set[int]], Dict[int, Dict[int, int]]]:
    """Run the peeling hierarchy.

    Returns ``(core_adjacency, core_vertices, levels, removal_nbrs)``
    where ``levels[i]`` is the independent set peeled at level ``i`` and
    ``removal_nbrs[v]`` the weighted neighborhood ``v`` had at its
    removal (the merge set for its label).
    """
    adjacency: Dict[int, Dict[int, int]] = {
        v: {w: 1 for w in graph.neighbors(v)} for v in graph.vertices()
    }
    alive = list(graph.vertices())
    levels: List[Set[int]] = []
    removal_nbrs: Dict[int, Dict[int, int]] = {}

    while len(alive) > core_limit:
        peel = _greedy_independent_set(adjacency, alive)
        # Never peel everything: keep at least one vertex per component
        # moving upward so the core exists.
        if len(peel) == len(alive):
            keep = max(alive, key=lambda v: len(adjacency[v]))
            peel.discard(keep)
            if not peel:
                break
        levels.append(peel)
        for v in peel:
            nbrs = adjacency.pop(v)
            removal_nbrs[v] = nbrs
            items = list(nbrs.items())
            for a, wa in items:
                del adjacency[a][v]
            # Augment: distances through v must survive its removal.
            for i, (a, wa) in enumerate(items):
                for b, wb in items[i + 1 :]:
                    through = wa + wb
                    current = adjacency[a].get(b)
                    if current is None or through < current:
                        adjacency[a][b] = through
                        adjacency[b][a] = through
        alive = [v for v in alive if v not in peel]

    core_adjacency = {v: dict(adjacency[v]) for v in alive}
    return core_adjacency, alive, levels, removal_nbrs


def _core_distances(
    core_adjacency: Dict[int, Dict[int, int]], core: List[int]
) -> Dict[int, Dict[int, int]]:
    """All-pairs Dijkstra over the (small, weighted) core graph."""
    result: Dict[int, Dict[int, int]] = {}
    for s in core:
        dist = {s: 0}
        heap: List[Tuple[int, int]] = [(0, s)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist.get(v, 1 << 60):
                continue
            for w, weight in core_adjacency[v].items():
                nd = d + weight
                if nd < dist.get(w, 1 << 60):
                    dist[w] = nd
                    heapq.heappush(heap, (nd, w))
        result[s] = dist
    return result


def build_isl(graph: Graph, core_limit: int = _CORE_LIMIT_DEFAULT) -> Labeling:
    """Build an ISL-style well-ordered 2-hop distance cover.

    Parameters
    ----------
    graph:
        Undirected, unweighted graph.
    core_limit:
        Peeling stops once at most this many vertices remain; the core
        gets explicit all-pairs labels.  Larger cores mean fewer peel
        levels (faster build, bigger core labels).

    Notes
    -----
    The ordering ranks core vertices first (degree-descending within the
    core), then peel levels from last-peeled to first-peeled: a vertex's
    label only ever references vertices that outlived it, which is what
    makes the result well-ordered.
    """
    if core_limit < 1:
        raise LabelingError(f"core_limit must be >= 1, got {core_limit}")
    core_adjacency, core, levels, removal_nbrs = _peel(graph, core_limit)

    # Ordering: core (by descending core degree), then levels top-down.
    sequence: List[int] = sorted(
        core, key=lambda v: (-len(core_adjacency[v]), v)
    )
    for level in reversed(levels):
        sequence.extend(sorted(level))
    ordering = VertexOrdering(sequence)
    rank_of = ordering.rank

    labeling = Labeling.empty(ordering)
    hub_ranks = labeling.hub_ranks
    hub_dists = labeling.hub_dists

    # Core labels: every lower-or-equal-ranked core vertex is a hub.
    core_dist = _core_distances(core_adjacency, core)
    for v in core:
        pairs = sorted(
            (rank_of(c), d)
            for c, d in core_dist[v].items()
            if rank_of(c) <= rank_of(v)
        )
        hub_ranks[v] = [r for r, _ in pairs]
        hub_dists[v] = [d for _, d in pairs]

    # Peeled labels, top level first: merge the removal neighborhood's
    # labels (all neighbors outrank the vertex, so they are done).
    for level in reversed(levels):
        for v in sorted(level):
            best: Dict[int, int] = {}
            for a, wa in removal_nbrs[v].items():
                ranks_a = hub_ranks[a]
                dists_a = hub_dists[a]
                for i in range(len(ranks_a)):
                    total = wa + dists_a[i]
                    r = ranks_a[i]
                    if total < best.get(r, 1 << 60):
                        best[r] = total
            best[rank_of(v)] = 0
            pairs = sorted(best.items())
            hub_ranks[v] = [r for r, _ in pairs]
            hub_dists[v] = [d for _, d in pairs]

    return labeling
