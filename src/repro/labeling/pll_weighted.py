"""Pruned-Dijkstra landmark labeling for positively weighted graphs.

The paper notes its method "can be extended to weighted ... graphs"; this
module supplies that extension's substrate: the same pruned-landmark
scheme with Dijkstra searches instead of BFS.  Distances are floats.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.exceptions import LabelingError
from repro.graph.weighted import WeightedGraph
from repro.labeling.label import Labeling
from repro.labeling.query import INF
from repro.order.ordering import VertexOrdering


class WeightedLabeling(Labeling):
    """A :class:`Labeling` whose distances are floats.

    Shares all structure and query machinery with the unweighted class;
    the subclass exists for type clarity and float-aware serialization.
    """


def _weighted_degree_order(wgraph: WeightedGraph) -> VertexOrdering:
    vertices = sorted(
        wgraph.vertices(), key=lambda v: (-wgraph.degree(v), v)
    )
    return VertexOrdering(vertices)


def build_weighted_pll(
    wgraph: WeightedGraph, ordering: Optional[VertexOrdering] = None
) -> WeightedLabeling:
    """Build a well-ordered 2-hop distance cover of a weighted graph.

    Pruning mirrors :func:`repro.labeling.pll.build_pll`: a settled vertex
    whose label-based distance to the root is already ``<=`` its Dijkstra
    distance is neither labeled nor expanded.
    """
    if ordering is None:
        ordering = _weighted_degree_order(wgraph)
    if len(ordering) != wgraph.num_vertices:
        raise LabelingError(
            f"ordering covers {len(ordering)} vertices, "
            f"graph has {wgraph.num_vertices}"
        )
    from repro.obs import hooks as _obs

    if _obs.registry is not None or _obs.tracer is not None:
        import time

        from repro.labeling.pll import record_labeling_obs

        with _obs.span("pll.build.weighted"):
            t0 = time.perf_counter()
            labeling = _build_weighted_impl(wgraph, ordering)
            record_labeling_obs(
                labeling, "dijkstra", time.perf_counter() - t0
            )
        return labeling
    return _build_weighted_impl(wgraph, ordering)


def _build_weighted_impl(
    wgraph: WeightedGraph, ordering: VertexOrdering
) -> WeightedLabeling:
    n = wgraph.num_vertices
    base = Labeling.empty(ordering)
    labeling = WeightedLabeling(ordering, base.hub_ranks, base.hub_dists)
    hub_ranks = labeling.hub_ranks
    hub_dists = labeling.hub_dists

    root_cover: List[float] = [INF] * n

    for rank, root in enumerate(ordering):
        for r, d in zip(hub_ranks[root], hub_dists[root]):
            root_cover[r] = d

        dist: List[float] = [INF] * n
        dist[root] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, root)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            covered = False
            ranks_v = hub_ranks[v]
            dists_v = hub_dists[v]
            for i in range(len(ranks_v)):
                rc = root_cover[ranks_v[i]]
                if rc + dists_v[i] <= d:
                    covered = True
                    break
            if covered:
                continue
            ranks_v.append(rank)
            dists_v.append(d)
            for w, weight in wgraph.neighbors(v):
                nd = d + weight
                if nd < dist[w]:
                    dist[w] = nd
                    heapq.heappush(heap, (nd, w))

        for r in hub_ranks[root]:
            root_cover[r] = INF

    return labeling
