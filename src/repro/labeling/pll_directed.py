"""Directed pruned landmark labeling (in/out labels).

For a directed graph each vertex carries an *out* label (hubs it can
reach) and an *in* label (hubs that reach it);
``dist(s → t) = min over shared hubs h of δ(s → h) + δ(h → t)``.
Construction does a forward and a backward pruned BFS per root.  The SIEF
evaluation is undirected, so this exists for the paper's "can be extended
to directed graphs" claim and the corresponding tests.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.exceptions import LabelingError
from repro.graph.digraph import DiGraph
from repro.labeling.query import merge_min_sum
from repro.order.ordering import VertexOrdering

_UNSET = -1


class DirectedLabeling:
    """In/out 2-hop labels over a vertex ordering.

    ``out_ranks[v]/out_dists[v]`` hold hubs reachable *from* ``v``;
    ``in_ranks[v]/in_dists[v]`` hold hubs that reach ``v``.
    """

    __slots__ = ("ordering", "out_ranks", "out_dists", "in_ranks", "in_dists")

    def __init__(self, ordering: VertexOrdering) -> None:
        n = len(ordering)
        self.ordering = ordering
        self.out_ranks: List[List[int]] = [[] for _ in range(n)]
        self.out_dists: List[List[int]] = [[] for _ in range(n)]
        self.in_ranks: List[List[int]] = [[] for _ in range(n)]
        self.in_dists: List[List[int]] = [[] for _ in range(n)]

    @property
    def num_vertices(self) -> int:
        """Number of labeled vertices."""
        return len(self.out_ranks)

    def total_entries(self) -> int:
        """Total in+out label entries."""
        return sum(len(r) for r in self.out_ranks) + sum(
            len(r) for r in self.in_ranks
        )

    def query(self, s: int, t: int):
        """``dist(s → t)`` (``INF`` if unreachable)."""
        if s == t:
            return 0
        return merge_min_sum(
            self.out_ranks[s], self.out_dists[s], self.in_ranks[t], self.in_dists[t]
        )


def _degree_order(dgraph: DiGraph) -> VertexOrdering:
    vertices = sorted(
        dgraph.vertices(),
        key=lambda v: (-(dgraph.out_degree(v) + dgraph.in_degree(v)), v),
    )
    return VertexOrdering(vertices)


def build_directed_pll(
    dgraph: DiGraph, ordering: Optional[VertexOrdering] = None
) -> DirectedLabeling:
    """Build a directed 2-hop distance cover with pruned forward/backward BFS."""
    if ordering is None:
        ordering = _degree_order(dgraph)
    if len(ordering) != dgraph.num_vertices:
        raise LabelingError(
            f"ordering covers {len(ordering)} vertices, "
            f"graph has {dgraph.num_vertices}"
        )
    n = dgraph.num_vertices
    labeling = DirectedLabeling(ordering)

    dist = [_UNSET] * n
    touched: List[int] = []

    def sweep(root: int, rank: int, forward: bool) -> None:
        """One pruned BFS.

        ``forward=True`` follows arcs and writes *in* labels (root reaches
        w, so root becomes an in-hub of w); ``forward=False`` walks arcs
        backwards and writes *out* labels.
        """
        if forward:
            adjacency = dgraph.successors
            write_ranks, write_dists = labeling.in_ranks, labeling.in_dists
            root_ranks, root_dists = labeling.out_ranks[root], labeling.out_dists[root]
        else:
            adjacency = dgraph.predecessors
            write_ranks, write_dists = labeling.out_ranks, labeling.out_dists
            root_ranks, root_dists = labeling.in_ranks[root], labeling.in_dists[root]

        root_cover = {}
        for r, d in zip(root_ranks, root_dists):
            root_cover[r] = d

        dist[root] = 0
        touched.append(root)
        queue = deque((root,))
        while queue:
            v = queue.popleft()
            d = dist[v]
            # Prune: is dist(root -> v) (forward) already covered?  The
            # covering path root -> h -> v uses h in out(root) ∩ in(v) for
            # the forward sweep, i.e. root_cover vs the opposite side of v.
            covered = False
            check_ranks = (
                labeling.in_ranks[v] if forward else labeling.out_ranks[v]
            )
            check_dists = (
                labeling.in_dists[v] if forward else labeling.out_dists[v]
            )
            for i in range(len(check_ranks)):
                rc = root_cover.get(check_ranks[i])
                if rc is not None and rc + check_dists[i] <= d:
                    covered = True
                    break
            if covered:
                continue
            write_ranks[v].append(rank)
            write_dists[v].append(d)
            nd = d + 1
            for w in adjacency(v):
                if dist[w] == _UNSET:
                    dist[w] = nd
                    touched.append(w)
                    queue.append(w)

        for v in touched:
            dist[v] = _UNSET
        touched.clear()

    from repro.obs import hooks as _obs

    if _obs.registry is not None or _obs.tracer is not None:
        import time

        from repro.labeling.pll import record_labeling_obs

        with _obs.span("pll.build.directed"):
            t0 = time.perf_counter()
            for rank, root in enumerate(ordering):
                sweep(root, rank, forward=True)
                sweep(root, rank, forward=False)
            record_labeling_obs(
                labeling, "directed_bfs", time.perf_counter() - t0
            )
        return labeling

    for rank, root in enumerate(ordering):
        sweep(root, rank, forward=True)
        sweep(root, rank, forward=False)

    return labeling
