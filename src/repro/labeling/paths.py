"""Shortest-*path* (not just distance) retrieval from 2-hop labelings.

2-hop labels store distances only, but paths fall out of them by the
standard neighbor-stepping argument: from ``s``, some neighbor ``w``
satisfies ``d(w, t) == d(s, t) - 1`` (the next vertex of a shortest
path), and each step costs one label query per neighbor.  Total cost
``O(path length × max degree × label size)`` — microseconds on the
graphs this library targets, with no extra index state.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from repro.labeling.label import Labeling
from repro.labeling.query import INF, dist_query

Distance = Union[int, float]


def _walk(
    adjacency,
    distance_to_target: Callable[[int], Distance],
    s: int,
    t: int,
    total: Distance,
) -> Optional[List[int]]:
    """Greedy descent along strictly decreasing distance-to-target."""
    path = [s]
    current = s
    remaining = total
    while current != t:
        for w in adjacency(current):
            if distance_to_target(w) == remaining - 1:
                path.append(w)
                current = w
                remaining -= 1
                break
        else:  # pragma: no cover - impossible for exact distance functions
            return None
    return path


def shortest_path_via_labeling(
    graph, labeling: Labeling, s: int, t: int
) -> Optional[List[int]]:
    """One shortest ``s``–``t`` path using only label queries.

    Returns ``None`` when the vertices are disconnected.  The returned
    path's length always equals ``dist_query(labeling, s, t)``.
    """
    total = dist_query(labeling, s, t)
    if total == INF:
        return None
    return _walk(
        graph.neighbors, lambda w: dist_query(labeling, w, t), s, t, total
    )


def failure_shortest_path(
    graph, engine, s: int, t: int, failed_edge: Tuple[int, int]
) -> Optional[List[int]]:
    """One shortest path in ``G - failed_edge`` via SIEF queries.

    ``engine`` is a :class:`repro.core.query.SIEFQueryEngine`.  The walk
    never traverses the failed edge (a neighbor reached through it cannot
    satisfy the distance-decrease test, but the edge is also skipped
    explicitly for clarity).  Returns ``None`` when the failure
    disconnects the pair.
    """
    total = engine.distance(s, t, failed_edge)
    if total == INF:
        return None
    a, b = failed_edge

    def neighbors(v: int):
        for w in graph.neighbors(v):
            if (v == a and w == b) or (v == b and w == a):
                continue
            yield w

    return _walk(
        neighbors,
        lambda w: engine.distance(w, t, failed_edge),
        s,
        t,
        total,
    )


def hub_of_pair(labeling: Labeling, s: int, t: int) -> Optional[int]:
    """The hub vertex achieving ``dist(s, t, L)`` (lowest rank on ties).

    ``None`` when the pair shares no hub (different components).  By
    Lemma 2 the returned vertex lies on some shortest ``s``–``t`` path.
    """
    best: Distance = INF
    best_rank: Optional[int] = None
    ranks_s = labeling.hub_ranks[s]
    dists_s = labeling.hub_dists[s]
    ranks_t = labeling.hub_ranks[t]
    dists_t = labeling.hub_dists[t]
    i = j = 0
    while i < len(ranks_s) and j < len(ranks_t):
        rs, rt = ranks_s[i], ranks_t[j]
        if rs == rt:
            total = dists_s[i] + dists_t[j]
            if total < best:
                best = total
                best_rank = rs
            i += 1
            j += 1
        elif rs < rt:
            i += 1
        else:
            j += 1
    if best_rank is None:
        return None
    return labeling.ordering.vertex(best_rank)
