"""Distance query evaluation over 2-hop labelings (Equation 1).

``dist(s, t, L) = min { δ(h,s) + δ(h,t) : h ∈ hubs(s) ∩ hubs(t) }`` — a
merge join of two ascending rank arrays.  Returns :data:`INF` when the
labels share no hub, which for a distance cover means "different
components" (§3.2 of the paper).
"""

from __future__ import annotations

from typing import List, Union

INF = float("inf")
"""Distance reported for disconnected pairs."""

Distance = Union[int, float]


def merge_min_sum(
    ranks_a: List[int],
    dists_a: List[Distance],
    ranks_b: List[int],
    dists_b: List[Distance],
) -> Distance:
    """Minimum ``dists_a[i] + dists_b[j]`` over positions with equal ranks.

    Both rank arrays must be strictly ascending (the labeling invariant).
    """
    best: Distance = INF
    i = j = 0
    len_a = len(ranks_a)
    len_b = len(ranks_b)
    while i < len_a and j < len_b:
        ra = ranks_a[i]
        rb = ranks_b[j]
        if ra == rb:
            total = dists_a[i] + dists_b[j]
            if total < best:
                best = total
            i += 1
            j += 1
        elif ra < rb:
            i += 1
        else:
            j += 1
    return best


def dist_query(labeling, s: int, t: int) -> Distance:
    """``dist(s, t, L)`` for an undirected labeling.

    For a verified 2-hop distance cover this equals the true graph
    distance ``d_G(s, t)`` (or :data:`INF` across components).
    """
    if s == t:
        return 0
    return merge_min_sum(
        labeling.hub_ranks[s],
        labeling.hub_dists[s],
        labeling.hub_ranks[t],
        labeling.hub_dists[t],
    )


def dist_query_directed(dlabeling, s: int, t: int) -> Distance:
    """``dist(s → t)`` for a directed labeling (out-label of s, in-label of t)."""
    if s == t:
        return 0
    return merge_min_sum(
        dlabeling.out_ranks[s],
        dlabeling.out_dists[s],
        dlabeling.in_ranks[t],
        dlabeling.in_dists[t],
    )
