"""Distance query evaluation over 2-hop labelings (Equation 1).

``dist(s, t, L) = min { δ(h,s) + δ(h,t) : h ∈ hubs(s) ∩ hubs(t) }`` — a
merge join of two ascending rank arrays.  Returns :data:`INF` when the
labels share no hub, which for a distance cover means "different
components" (§3.2 of the paper).

Two evaluation paths share this module:

* :func:`dist_query` — one pair at a time.  On a thawed labeling it
  merge-joins the per-vertex lists; on a frozen labeling it reuses the
  batch path's dense hub-prefix matrix (built lazily on first use, see
  below): the sub-:data:`_DENSE_HUB_WIDTH` half of Equation 1 is one
  vectorized ``min(D[s] + D[t])`` over two short rows, and only the
  residual high-rank tails go through the scalar merge join.  Labelings
  the dense matrix cannot represent (float or very large distances)
  fall back to a merge join / ``searchsorted`` intersection chosen by
  label size.
* :func:`batch_dist_query` — many pairs per call, vectorized over the
  frozen flat arrays.  Two tricks keep it memory-friendly (the join
  touches ``O(sum of label sizes)`` data, so bandwidth, not FLOPs, is
  the budget):

  - **chunking** — pairs are processed ~2k at a time so every expanded
    intermediate (ragged gather, composite keys, join positions) stays
    cache-resident instead of streaming tens of MB through DRAM;
  - **dense hub prefix** — hub ranks are ascending within each label,
    so entries with rank below :data:`_DENSE_HUB_WIDTH` form a prefix
    of every row.  Those land in a lazily built ``(n, H)`` ``int16``
    distance matrix (``_DENSE_INF`` marks "hub not in label"), and the
    dense half of Equation 1 becomes ``min(D[s] + D[t])`` — no
    expansion at all.  Only the rank-``>= H`` residual tail goes
    through the sparse sorted-key join (``searchsorted`` +
    ``minimum.reduceat``).  On scale-free orderings the dense prefix
    absorbs roughly half of all label entries.

  The dense matrix only applies to integral distances that fit the
  ``int16`` sentinel arithmetic; weighted (float) labelings fall back
  to the pure sparse join, which is exact for any dtype.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro import kernels as _kernels
from repro.obs import hooks as _obs
from repro.obs.metrics import SIZE_EDGES

INF = float("inf")
"""Distance reported for disconnected pairs."""

Distance = Union[int, float]

VECTOR_LABEL_THRESHOLD = 64
"""Minimum label size (both sides) before the scalar path on a frozen
labeling switches from the merge join to a numpy set intersection."""

_SCALAR_BATCH_THRESHOLD = 4
"""Batches smaller than this skip array setup and loop scalar queries."""

_BATCH_CHUNK = 2048
"""Pairs evaluated per chunk of :func:`batch_dist_query`.  Sized so the
expanded per-chunk intermediates (a few entries × avg label size × 8 B)
stay within CPU cache — the join is bandwidth-bound, and chunking it is
worth ~10x over one monolithic pass at 200k pairs."""

_DENSE_HUB_WIDTH = 256
"""Hub ranks below this are served from the dense prefix matrix."""

_DENSE_INF = np.int16(16000)
"""Sentinel for "hub absent" in the dense matrix.  Two sentinels sum to
32000, still inside ``int16`` — so ``min(D[s] + D[t])`` needs no masking."""

_DENSE_MAX_DIST = 8000
"""Largest distance the dense path can represent (guards the sentinel
arithmetic); labelings with larger or float distances skip the dense
matrix entirely."""


def merge_min_sum(
    ranks_a: List[int],
    dists_a: List[Distance],
    ranks_b: List[int],
    dists_b: List[Distance],
) -> Distance:
    """Minimum ``dists_a[i] + dists_b[j]`` over positions with equal ranks.

    Both rank arrays must be strictly ascending (the labeling invariant).
    """
    best: Distance = INF
    i = j = 0
    len_a = len(ranks_a)
    len_b = len(ranks_b)
    while i < len_a and j < len_b:
        ra = ranks_a[i]
        rb = ranks_b[j]
        if ra == rb:
            total = dists_a[i] + dists_b[j]
            if total < best:
                best = total
            i += 1
            j += 1
        elif ra < rb:
            i += 1
        else:
            j += 1
    return best


def _merge_min_sum_flat(labeling, s: int, t: int) -> Distance:
    """Frozen-backend scalar evaluation of Equation 1.

    With a dense hub-prefix matrix available (integral distances), the
    low-rank half is ``min(D[s] + D[t])`` — two 256-entry rows, one
    vectorized add — and only the residual high-rank tails are merge-
    joined as lists.  The dense prefix absorbs roughly half of every
    label on scale-free orderings, so the interpreted merge runs on a
    fraction of the entries; this is what makes the frozen scalar path
    faster than the list backend, not merely equal to it.

    Ineligible labelings (float or oversized distances) fall back to
    the original strategy: list merge join for small labels,
    ``searchsorted`` intersection once both slices hold ~64+ entries.
    """
    offsets = labeling.offsets
    hubs = labeling.hubs_flat
    dists = labeling.dists_flat
    cache = labeling._batch_cache
    if cache is None:
        cache = _get_batch_cache(labeling)
    if cache.dense is not None:
        res_hubs = cache.res_hubs
        if res_hubs is None:
            res_hubs = _materialize_residuals(labeling, cache)
        sums = cache.dense[s] + cache.dense[t]
        best = int(sums.min())
        ha = res_hubs[s]
        hb = res_hubs[t]
        if ha and hb:
            res_dists = cache.res_dists
            residual = merge_min_sum(ha, res_dists[s], hb, res_dists[t])
        else:
            residual = INF
        if best < _DENSE_INF:
            return best if best <= residual else residual
        return residual
    a0, a1 = int(offsets[s]), int(offsets[s + 1])
    b0, b1 = int(offsets[t]), int(offsets[t + 1])
    la = a1 - a0
    lb = b1 - b0
    if la == 0 or lb == 0:
        return INF
    if la < VECTOR_LABEL_THRESHOLD or lb < VECTOR_LABEL_THRESHOLD:
        return merge_min_sum(
            hubs[a0:a1].tolist(),
            dists[a0:a1].tolist(),
            hubs[b0:b1].tolist(),
            dists[b0:b1].tolist(),
        )
    ranks_a = hubs[a0:a1]
    ranks_b = hubs[b0:b1]
    pos = np.searchsorted(ranks_a, ranks_b)
    valid = pos < la
    hit = np.nonzero(valid)[0]
    hit = hit[ranks_a[pos[hit]] == ranks_b[hit]]
    if hit.size == 0:
        return INF
    wide = np.float64 if dists.dtype.kind == "f" else np.int64
    totals = dists[a0:a1][pos[hit]].astype(wide, copy=False) + dists[b0:b1][hit]
    return totals.min().item()


def dist_query(labeling, s: int, t: int) -> Distance:
    """``dist(s, t, L)`` for an undirected labeling.

    For a verified 2-hop distance cover this equals the true graph
    distance ``d_G(s, t)`` (or :data:`INF` across components).  Works on
    both backends; see the module docstring for how the frozen path
    evaluates.
    """
    reg = _obs.registry
    if reg is not None:
        # Hub-scan length: entries Equation 1 walks for this pair.
        if labeling.offsets is not None:
            offsets = labeling.offsets
            scanned = int(
                (offsets[s + 1] - offsets[s]) + (offsets[t + 1] - offsets[t])
            )
        else:
            scanned = len(labeling.hub_ranks[s]) + len(labeling.hub_ranks[t])
        reg.counter("label.query.scalar").inc()
        reg.histogram("label.query.hub_scan", SIZE_EDGES).observe(scanned)
    if s == t:
        return 0
    if labeling.offsets is not None:
        return _merge_min_sum_flat(labeling, s, t)
    return merge_min_sum(
        labeling.hub_ranks[s],
        labeling.hub_dists[s],
        labeling.hub_ranks[t],
        labeling.hub_dists[t],
    )


def dist_query_directed(dlabeling, s: int, t: int) -> Distance:
    """``dist(s → t)`` for a directed labeling (out-label of s, in-label of t)."""
    if s == t:
        return 0
    return merge_min_sum(
        dlabeling.out_ranks[s],
        dlabeling.out_dists[s],
        dlabeling.in_ranks[t],
        dlabeling.in_dists[t],
    )


def validate_pairs(pairs: Sequence[Tuple[int, int]], n: int) -> np.ndarray:
    """Normalize a pairs argument to an ``(k, 2)`` int64 array, checked.

    Shared by every batch entry point so malformed input fails with one
    clear message instead of a numpy index error deep in the join (or —
    worse — a silently wrong answer from negative-index wraparound).
    An empty input is allowed and returns an empty ``(0, 2)`` array.
    """
    p = np.asarray(pairs, dtype=np.int64)
    if p.size == 0:
        return p.reshape(0, 2)
    if p.ndim != 2 or p.shape[1] != 2:
        raise ValueError(f"pairs must have shape (k, 2), got {p.shape}")
    lo = int(p.min())
    hi = int(p.max())
    if lo < 0 or hi >= n:
        raise IndexError(
            f"pair vertex out of range for {n} vertices: "
            f"ids span [{lo}, {hi}], valid range is [0, {n - 1}]"
        )
    return p


def _ragged_gather(
    offsets: np.ndarray, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices into the flat arrays covering ``L(v)`` for every ``v``.

    Returns ``(idx, pair_id)``: ``idx`` walks each queried label slice in
    order, ``pair_id[i]`` names the position in ``vertices`` that entry
    ``idx[i]`` belongs to.  Pure numpy — no per-vertex Python loop.
    """
    starts = offsets[vertices]
    counts = offsets[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    cum = np.zeros(len(vertices) + 1, dtype=np.int64)
    np.cumsum(counts, out=cum[1:])
    idx = (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum[:-1], counts)
        + np.repeat(starts, counts)
    )
    pair_id = np.repeat(np.arange(len(vertices), dtype=np.int64), counts)
    return idx, pair_id


class _BatchCache:
    """Per-labeling acceleration state for :func:`batch_dist_query`.

    ``dense`` is the ``(n, H)`` int16 hub-prefix distance matrix (or
    ``None`` when the labeling is ineligible — float/huge distances);
    ``res_start[v]`` is the flat index where the sparse residual of
    ``L(v)`` (entries with hub rank ``>= H``) begins, so the residual
    slice is ``[res_start[v], offsets[v+1])``.

    ``offsets_list`` / ``res_start_list`` mirror ``offsets`` and
    ``res_start`` as plain Python lists for the *scalar* frozen query
    path, whose per-call budget is a few microseconds — indexing a
    Python list there is several times cheaper than unboxing a numpy
    scalar.  They are only materialized when ``dense`` exists (the
    scalar fallback paths read ``offsets`` directly).

    ``res_hubs`` / ``res_dists`` are the per-vertex residual label
    slices as plain lists, filled in by the first scalar frozen query
    (batch-only users never pay for them): with the slices
    pre-materialized, the scalar residual merge runs straight on Python
    lists — no per-query ``ndarray.tolist`` — which is where the frozen
    scalar path wins over the thawed list backend.
    """

    __slots__ = (
        "dense",
        "res_start",
        "offsets_list",
        "res_start_list",
        "res_hubs",
        "res_dists",
    )

    def __init__(self, dense, res_start, offsets_list=None, res_start_list=None) -> None:
        self.dense = dense
        self.res_start = res_start
        self.offsets_list = offsets_list
        self.res_start_list = res_start_list
        self.res_hubs = None
        self.res_dists = None


def _get_batch_cache(labeling) -> _BatchCache:
    """Build (once) and return the batch acceleration cache.

    Stored on ``labeling._batch_cache``; :meth:`Labeling.thaw` clears it,
    so mutation always invalidates.  Cost is one pass over the flat
    arrays plus a 2-byte-per-cell matrix scatter.
    """
    cache = labeling._batch_cache
    if cache is not None:
        return cache
    offsets = labeling.offsets
    hubs = labeling.hubs_flat
    dists = labeling.dists_flat
    n = labeling.num_vertices
    width = min(_DENSE_HUB_WIDTH, n)
    eligible = (
        width > 0
        and hubs.size > 0
        and dists.dtype.kind in "iu"
        # Strict bound: two maximal distances must sum *below* the
        # absent-hub sentinel, or a farthest valid pair would be
        # indistinguishable from "no shared dense hub".
        and int(dists.max()) < _DENSE_MAX_DIST
    )
    if not eligible:
        cache = _BatchCache(None, offsets[:-1])
    else:
        counts = np.diff(offsets)
        row = np.repeat(np.arange(n, dtype=np.int64), counts)
        prefix = hubs < width
        dense = np.full((n, width), _DENSE_INF, dtype=np.int16)
        dense[row[prefix], hubs[prefix]] = dists[prefix]
        # Ranks ascend within each row, so the sub-`width` entries are a
        # prefix; its length per vertex comes from one cumsum of the mask.
        cum = np.zeros(hubs.size + 1, dtype=np.int64)
        np.cumsum(prefix, out=cum[1:])
        res_start = offsets[:-1] + (cum[offsets[1:]] - cum[offsets[:-1]])
        cache = _BatchCache(
            dense, res_start, offsets.tolist(), res_start.tolist()
        )
    labeling._batch_cache = cache
    return cache


def _materialize_residuals(labeling, cache: _BatchCache):
    """Fill ``cache.res_hubs`` / ``res_dists`` (one pass, then cached).

    One ``tolist`` of each flat array plus a list-slice per vertex —
    ``O(total entries)``, paid once by the first scalar frozen query.
    """
    starts = cache.res_start_list
    ends = cache.offsets_list
    hubs_l = labeling.hubs_flat.tolist()
    dists_l = labeling.dists_flat.tolist()
    n = labeling.num_vertices
    cache.res_hubs = [hubs_l[starts[v] : ends[v + 1]] for v in range(n)]
    cache.res_dists = [dists_l[starts[v] : ends[v + 1]] for v in range(n)]
    return cache.res_hubs


def _batch_chunk(
    best: np.ndarray,
    s: np.ndarray,
    t: np.ndarray,
    offsets: np.ndarray,
    hubs: np.ndarray,
    dists: np.ndarray,
    n: int,
    cache: _BatchCache,
    wide,
) -> None:
    """Evaluate Equation 1 for one chunk of pairs into ``best`` (a view).

    ``best`` arrives as ``inf`` and leaves holding the chunk's minima;
    the caller fixes up ``s == t`` afterwards.
    """
    m = len(s)
    if cache.dense is not None:
        # Dense half: hubs with rank < H, no expansion.  Sentinel sums
        # (absent hub on either side) stay >= _DENSE_INF and are masked.
        sums = cache.dense[s] + cache.dense[t]
        dense_min = sums.min(axis=1)
        found = dense_min < _DENSE_INF
        best[found] = dense_min[found]

    # Sparse half: ragged gather of each pair's residual label slices.
    st_a = cache.res_start[s]
    cnt_a = offsets[s + 1] - st_a
    st_b = cache.res_start[t]
    cnt_b = offsets[t + 1] - st_b
    cum_a = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(cnt_a, out=cum_a[1:])
    cum_b = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(cnt_b, out=cum_b[1:])
    tot_a = int(cum_a[-1])
    tot_b = int(cum_b[-1])
    if tot_a == 0 or tot_b == 0:
        return
    idx_a = np.arange(tot_a, dtype=np.int64) - np.repeat(
        cum_a[:-1] - st_a, cnt_a
    )
    idx_b = np.arange(tot_b, dtype=np.int64) - np.repeat(
        cum_b[:-1] - st_b, cnt_b
    )
    # Composite (pair, hub) keys.  Within each side keys are globally
    # sorted and unique: pair blocks appear in order and hub ranks are
    # strictly ascending inside a block — so one searchsorted join finds
    # every shared hub without re-sorting.  int32 keys when they fit
    # (chunk * n < 2^31) halve the bandwidth of the search.
    if m * n < 2**31:
        key_t = np.int32
    else:
        key_t = np.int64
    pid_a = np.repeat(np.arange(m, dtype=key_t), cnt_a)
    pid_b = np.repeat(np.arange(m, dtype=key_t), cnt_b)
    keys_a = pid_a * key_t(n) + hubs[idx_a].astype(key_t, copy=False)
    keys_b = pid_b * key_t(n) + hubs[idx_b].astype(key_t, copy=False)
    pos = np.searchsorted(keys_a, keys_b)
    np.minimum(pos, keys_a.size - 1, out=pos)
    hit_b = np.flatnonzero(keys_a[pos] == keys_b)
    if hit_b.size == 0:
        return
    hit_a = pos[hit_b]
    totals = dists[idx_a[hit_a]].astype(wide, copy=False) + dists[idx_b[hit_b]]
    # Matched entries stay grouped by pair (keys_b was sorted by pair id),
    # so a segmented reduceat replaces the much slower minimum.at.
    seg = pid_b[hit_b]
    starts = np.flatnonzero(np.r_[True, seg[1:] != seg[:-1]])
    mins = np.minimum.reduceat(totals, starts)
    tgt = seg[starts]
    best[tgt] = np.minimum(best[tgt], mins)


def batch_dist_query(labeling, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Vectorized ``dist(s, t, L)`` for many pairs at once.

    Parameters
    ----------
    labeling:
        A :class:`~repro.labeling.label.Labeling`.  Thawed labelings are
        frozen in place on first use (an ``O(total entries)`` one-time
        conversion).
    pairs:
        ``(k, 2)`` array-like of ``(s, t)`` vertex ids.

    Returns
    -------
    numpy.ndarray
        ``float64`` array of length ``k``; ``numpy.inf`` marks
        disconnected pairs and ``0.0`` the ``s == t`` pairs.  Values are
        exact — identical to looping :func:`dist_query`.
    """
    reg = _obs.registry
    t_start = time.perf_counter() if reg is not None else 0.0
    p = validate_pairs(pairs, labeling.num_vertices)
    if p.size == 0:
        return np.zeros(0, dtype=np.float64)
    if labeling.offsets is None:
        labeling.freeze()
    k = len(p)
    if k < _SCALAR_BATCH_THRESHOLD:
        return np.fromiter(
            (dist_query(labeling, int(s), int(t)) for s, t in p),
            count=k,
            dtype=np.float64,
        )
    s = p[:, 0]
    t = p[:, 1]
    n = labeling.num_vertices
    offsets = labeling.offsets
    hubs = labeling.hubs_flat
    dists = labeling.dists_flat

    # Compiled hub-join: one kernel call over all pairs replaces the
    # chunked dense-prefix + sparse-residual machinery.  Exact for the
    # same reason the numpy path is — every candidate is a single
    # widened add, and the minimum over an identical candidate set is
    # bit-identical regardless of evaluation order.
    tier, kern = _kernels.resolve("hub_join")
    if kern is not None and dists.dtype in _kernels.HUB_JOIN_DTYPES:
        out = np.empty(k, dtype=np.float64)
        with _obs.span("label.query.batch"):
            kern(
                offsets,
                hubs,
                dists,
                np.ascontiguousarray(s),
                np.ascontiguousarray(t),
                out,
            )
            out[s == t] = 0.0
        if reg is not None:
            reg.counter("label.query.batch_calls").inc()
            reg.counter("label.query.batch_pairs").inc(k)
            reg.counter(f"kernels.hub_join.{tier}").inc()
            # The compiled join is one chunk spanning the whole batch.
            reg.histogram("label.query.batch_chunk_size", SIZE_EDGES).observe(
                k
            )
            reg.histogram("label.query.batch_seconds").observe(
                time.perf_counter() - t_start
            )
        return out

    cache = _get_batch_cache(labeling)
    wide = np.float64 if dists.dtype.kind == "f" else np.int64

    chunk_hist = (
        reg.histogram("label.query.batch_chunk_size", SIZE_EDGES)
        if reg is not None
        else None
    )
    out = np.full(k, np.inf, dtype=np.float64)
    with _obs.span("label.query.batch"):
        for lo in range(0, k, _BATCH_CHUNK):
            hi = min(lo + _BATCH_CHUNK, k)
            if chunk_hist is not None:
                chunk_hist.observe(hi - lo)
            _batch_chunk(
                out[lo:hi],
                s[lo:hi],
                t[lo:hi],
                offsets,
                hubs,
                dists,
                n,
                cache,
                wide,
            )
        out[s == t] = 0.0
    if reg is not None:
        reg.counter("label.query.batch_calls").inc()
        reg.counter("label.query.batch_pairs").inc(k)
        reg.histogram("label.query.batch_seconds").observe(
            time.perf_counter() - t_start
        )
    return out
