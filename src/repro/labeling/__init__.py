"""2-hop distance labeling: structures, PLL construction, query, checks.

A 2-hop distance labeling (Cohen et al., SODA 2002) stores for every
vertex ``v`` a set of *(hub, distance)* pairs such that the distance of
any pair ``(s, t)`` is the minimum of ``δ(h,s) + δ(h,t)`` over shared hubs
``h``.  This package builds *well-ordered* labelings (Definition 1 of the
SIEF paper) with Pruned Landmark Labeling — unweighted (pruned BFS),
weighted (pruned Dijkstra), and directed (in/out labels) — and provides
query evaluation, verification, redundancy analysis (Lemma 4), statistics
and serialization.
"""

from repro.labeling.label import Labeling, LabelEntry
from repro.labeling.pll import build_pll
from repro.labeling.pll_weighted import build_weighted_pll, WeightedLabeling
from repro.labeling.pll_directed import build_directed_pll, DirectedLabeling
from repro.labeling.query import batch_dist_query, dist_query, INF
from repro.labeling.verify import (
    is_well_ordered,
    is_distance_cover,
    verify_labeling,
)
from repro.labeling.prune import find_redundant_entries, prune_redundant
from repro.labeling.stats import LabelingStats, labeling_stats, BYTES_PER_ENTRY
from repro.labeling.paths import (
    shortest_path_via_labeling,
    failure_shortest_path,
    hub_of_pair,
)
from repro.labeling.dynamic import insert_edge, insert_edges
from repro.labeling.isl import build_isl
from repro.labeling import serialize

__all__ = [
    "Labeling",
    "LabelEntry",
    "build_pll",
    "build_weighted_pll",
    "WeightedLabeling",
    "build_directed_pll",
    "DirectedLabeling",
    "dist_query",
    "batch_dist_query",
    "INF",
    "is_well_ordered",
    "is_distance_cover",
    "verify_labeling",
    "find_redundant_entries",
    "prune_redundant",
    "LabelingStats",
    "labeling_stats",
    "BYTES_PER_ENTRY",
    "serialize",
    "shortest_path_via_labeling",
    "failure_shortest_path",
    "hub_of_pair",
    "insert_edge",
    "insert_edges",
    "build_isl",
]
