"""Pruned Landmark Labeling (Akiba, Iwata, Yoshida — SIGMOD 2013).

PLL performs one BFS per vertex, in ascending order rank, and *prunes* any
visited vertex whose distance is already covered by previously created
labels.  The result is a well-ordered 2-hop distance cover (Definition 1),
the exact input SIEF's supplemental construction assumes.

The implementation uses the standard constant-time-amortized prune test:
before the BFS from root ``r`` we scatter ``L(r)`` into a rank-indexed
array, so testing "is ``dist(r, w, L) <= d``" is one pass over ``L(w)``.

Storage discipline (mirroring the flat layout of the original PLL code):
the BFS walks the graph through its **CSR adjacency** — one flat
neighbor array plus an offset array from :class:`repro.graph.csr.CSRGraph`
— instead of list-of-lists, and labels accumulate in per-vertex append
lists whose entries arrive in ascending-rank rounds.  Those per-round
append lists are exactly the frozen flat layout split per vertex, which
is why :meth:`~repro.labeling.label.Labeling.freeze` can concatenate them
into the query-time arrays without any re-sorting.  Pass
``freeze=True`` to get the flat backend straight out of the build.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Union

from repro import kernels
from repro.exceptions import LabelingError
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.labeling.label import Labeling
from repro.obs import hooks as _obs
from repro.obs.metrics import SIZE_EDGES
from repro.order.ordering import VertexOrdering
from repro.order.strategies import by_degree

_UNSET = -1


def record_labeling_obs(labeling, kind: str, seconds: float) -> None:
    """Record one finished labeling build into the active registry.

    Shared by all ``build_*pll`` variants so the metric names stay
    uniform; a no-op when no registry is installed.  Runs one pass over
    the per-vertex labels — after the build, never inside its hot loop.
    """
    reg = _obs.registry
    if reg is None:
        return
    reg.counter(f"pll.build.{kind}").inc()
    reg.histogram("pll.build.seconds").observe(seconds)
    rows = getattr(labeling, "hub_ranks", None)
    if rows is None:  # directed labelings carry out/in label pairs
        rows = list(labeling.out_ranks) + list(labeling.in_ranks)
    entries = 0
    label_size = reg.histogram("pll.label_size", SIZE_EDGES)
    for ranks in rows:
        size = len(ranks)
        entries += size
        label_size.observe(size)
    reg.counter("pll.build.label_entries").inc(entries)
    reg.gauge("pll.last_build.label_entries").set(entries)
    reg.gauge("pll.last_build.vertices").set(labeling.num_vertices)


def _csr_ordering_by_degree(csr: CSRGraph) -> VertexOrdering:
    """Degree-descending ordering straight from CSR degrees."""
    degrees = csr.degrees()
    vertices = sorted(range(csr.num_vertices), key=lambda v: (-int(degrees[v]), v))
    return VertexOrdering(vertices)


def build_pll(
    graph: Union[Graph, CSRGraph],
    ordering: Optional[VertexOrdering] = None,
    freeze: bool = False,
) -> Labeling:
    """Build a well-ordered 2-hop distance cover of ``graph``.

    Parameters
    ----------
    graph:
        Undirected, unweighted graph — a mutable :class:`Graph` or an
        immutable :class:`CSRGraph` snapshot (the build runs on the CSR
        form either way).
    ordering:
        Vertex ordering ``σ``; defaults to degree-descending, the
        paper-standard choice.  The labeling is well-ordered w.r.t. this
        ordering.
    freeze:
        When True, return the labeling already converted to the flat
        numpy backend (ready for batch queries).

    Returns
    -------
    Labeling
        For every pair, ``dist_query(labeling, s, t)`` equals the true
        BFS distance (``INF`` across components).
    """
    if _obs.registry is not None or _obs.tracer is not None:
        import time

        with _obs.span("pll.build"):
            t0 = time.perf_counter()
            labeling = _build_pll_impl(graph, ordering, freeze=False)
            record_labeling_obs(labeling, "bfs", time.perf_counter() - t0)
        return labeling.freeze() if freeze else labeling
    return _build_pll_impl(graph, ordering, freeze)


def _build_pll_impl(
    graph: Union[Graph, CSRGraph],
    ordering: Optional[VertexOrdering],
    freeze: bool,
) -> Labeling:
    if isinstance(graph, CSRGraph):
        csr = graph
    else:
        csr = CSRGraph.from_graph(graph)
    if ordering is None:
        ordering = (
            _csr_ordering_by_degree(csr)
            if isinstance(graph, CSRGraph)
            else by_degree(graph)
        )
    n = csr.num_vertices
    if len(ordering) != n:
        raise LabelingError(
            f"ordering covers {len(ordering)} vertices, graph has {n}"
        )

    # Compiled full-build kernel (the out-of-core tier's 1M-vertex path):
    # produces the frozen flat arrays directly, byte-identical to
    # freeze() of the pure-Python build below.
    _, pll_kernel = kernels.resolve("pll")
    if pll_kernel is not None:
        offsets, hubs, dists = pll_kernel(
            csr.indptr, csr.indices, ordering.vertex_array()
        )
        labeling = Labeling.from_flat(ordering, offsets, hubs, dists)
        return labeling if freeze else labeling.thaw()

    # Flat CSR adjacency as Python ints: one offsets list + one neighbor
    # stream.  Slicing the stream per vertex avoids both the list-of-lists
    # pointer chase and numpy's per-element boxing in the BFS hot loop.
    indptr, adj = csr.adjacency_flat()

    labeling = Labeling.empty(ordering)
    hub_ranks = labeling.hub_ranks
    hub_dists = labeling.hub_dists

    # Scratch buffers reused across rounds.
    root_cover = [_UNSET] * n      # rank-indexed: distances in L(root)
    dist = [_UNSET] * n            # BFS distances of the current round
    touched: List[int] = []        # vertices whose `dist` needs resetting

    for rank, root in enumerate(ordering):
        ranks_root = hub_ranks[root]
        dists_root = hub_dists[root]
        for r, d in zip(ranks_root, dists_root):
            root_cover[r] = d

        dist[root] = 0
        touched.append(root)
        queue = deque((root,))
        while queue:
            v = queue.popleft()
            d = dist[v]
            # Prune test: dist(root, v, L) <= d using existing labels.
            covered = False
            ranks_v = hub_ranks[v]
            dists_v = hub_dists[v]
            for i in range(len(ranks_v)):
                rc = root_cover[ranks_v[i]]
                if rc != _UNSET and rc + dists_v[i] <= d:
                    covered = True
                    break
            if covered:
                continue
            ranks_v.append(rank)
            dists_v.append(d)
            nd = d + 1
            for w in adj[indptr[v] : indptr[v + 1]]:
                if dist[w] == _UNSET:
                    dist[w] = nd
                    touched.append(w)
                    queue.append(w)

        for r in ranks_root:
            root_cover[r] = _UNSET
        root_cover[rank] = _UNSET  # root labeled itself this round
        for v in touched:
            dist[v] = _UNSET
        touched.clear()

    return labeling.freeze() if freeze else labeling
