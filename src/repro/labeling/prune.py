"""Redundant-entry analysis (Lemma 4 of the paper).

Lemma 4: in a well-ordered labeling, an entry ``(u, δuv) ∈ L(v)`` is
*redundant* when some other entry ``(r, δrv) ∈ L(v)`` with ``σ[r] < σ[u]``
satisfies ``δuv = δrv + dist(r, u, L)`` — removing it changes no query
answer.  PLL rarely produces redundant entries, but the paper's running
example (Table 1) contains one, and SIEF's supplemental construction uses
exactly the same redundancy notion, so this module implements it both as
an analysis and as a label minimizer.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.labeling.label import Labeling
from repro.labeling.query import dist_query


def find_redundant_entries(labeling: Labeling) -> List[Tuple[int, int, int]]:
    """All redundant entries as ``(vertex, hub_vertex, distance)`` triples.

    An entry is flagged the moment one lower-ranked witness ``r``
    satisfies the Lemma 4 equation.  Entries are examined independently
    against the *original* labeling, matching the lemma's statement.
    """
    redundant: List[Tuple[int, int, int]] = []
    vertex_of = labeling.ordering.vertex
    for v, ranks, dists in labeling.iter_raw():
        for i in range(len(ranks)):
            hub_rank = ranks[i]
            hub_vertex = vertex_of(hub_rank)
            if hub_vertex == v:
                continue  # the (v, 0) self entry is never redundant
            duv = dists[i]
            for j in range(i):
                # ranks are ascending, so every j < i has σ[r] < σ[u].
                r_vertex = vertex_of(ranks[j])
                if dists[j] + dist_query(labeling, r_vertex, hub_vertex) == duv:
                    redundant.append((v, hub_vertex, duv))
                    break
    return redundant


def prune_redundant(labeling: Labeling) -> Tuple[Labeling, int]:
    """Remove redundant entries, returning ``(pruned copy, removed count)``.

    Entries are removed greedily in ascending rank per vertex; each
    removal is justified against the current (partially pruned) labeling,
    so the result still answers every query exactly (the Lemma 4 proof
    shows the witnessing lower-ranked hub keeps covering the pair).
    """
    pruned = labeling.copy().thaw()  # pruning rewrites rows in place
    vertex_of = pruned.ordering.vertex
    removed = 0
    for v in range(pruned.num_vertices):
        ranks = pruned.hub_ranks[v]
        dists = pruned.hub_dists[v]
        keep_ranks: List[int] = []
        keep_dists: List[int] = []
        for i in range(len(ranks)):
            hub_vertex = vertex_of(ranks[i])
            duv = dists[i]
            is_redundant = False
            if hub_vertex != v:
                for j in range(len(keep_ranks)):
                    r_vertex = vertex_of(keep_ranks[j])
                    if keep_dists[j] + dist_query(pruned, r_vertex, hub_vertex) == duv:
                        is_redundant = True
                        break
            if is_redundant:
                removed += 1
            else:
                keep_ranks.append(ranks[i])
                keep_dists.append(dists[i])
        pruned.hub_ranks[v] = keep_ranks
        pruned.hub_dists[v] = keep_dists
    return pruned, removed
