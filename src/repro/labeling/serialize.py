"""Labeling persistence: compact binary (numpy), native npz, and JSON.

Binary layout (little-endian), after an 8-byte magic:

* ``n`` — int64 vertex count
* ``sequence`` — ``n`` int32 entries (the vertex ordering)
* ``sizes`` — ``n`` int32 label sizes
* ``ranks`` — ``total`` int32 hub ranks, concatenated per vertex
* ``dists`` — ``total`` int32 distances, concatenated per vertex

8 bytes per entry — exactly the byte model of
:mod:`repro.labeling.stats`, so file size ≈ modelled size.

The **npz format** (:func:`save_labeling_npz`) stores the frozen flat
arrays natively — ``offsets``/``hubs``/``dists`` plus the ordering and a
``format_version`` field — so a load lands directly in the flat backend
with zero list reconstruction.  The **JSON format** stays
human-inspectable; it now carries ``format_version`` too (documents
written before the field, "version 1", still load).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import SerializationError
from repro.labeling.label import Labeling
from repro.order.ordering import VertexOrdering

MAGIC = b"SIEFLBL1"
PathLike = Union[str, Path]

JSON_FORMAT_VERSION = 2
"""Current JSON document version (1 = pre-version-field documents)."""

NPZ_FORMAT_VERSION = 1
"""Current npz (flat-array) format version."""


def _flat_arrays(labeling: Labeling):
    """``(sizes, ranks, dists)`` int32 concatenations for serialization.

    Frozen labelings hand over their flat arrays directly; thawed ones
    concatenate the per-vertex lists.
    """
    n = labeling.num_vertices
    if labeling.offsets is not None:
        sizes = np.diff(labeling.offsets).astype(np.int32)
        ranks = labeling.hubs_flat.astype(np.int32, copy=False)
        dists = labeling.dists_flat.astype(np.int32, copy=False)
        return sizes, ranks, dists
    sizes = np.fromiter(
        (len(r) for r in labeling.hub_ranks), count=n, dtype=np.int32
    )
    total = int(sizes.sum())
    ranks = np.zeros(total, dtype=np.int32)
    dists = np.zeros(total, dtype=np.int32)
    pos = 0
    for v in range(n):
        k = len(labeling.hub_ranks[v])
        ranks[pos : pos + k] = labeling.hub_ranks[v]
        dists[pos : pos + k] = labeling.hub_dists[v]
        pos += k
    return sizes, ranks, dists


def labeling_to_bytes(labeling: Labeling) -> bytes:
    """Serialize to the compact binary format."""
    n = labeling.num_vertices
    sizes, ranks, dists = _flat_arrays(labeling)
    buf = io.BytesIO()
    buf.write(MAGIC)
    buf.write(np.int64(n).tobytes())
    buf.write(np.asarray(labeling.ordering.sequence(), dtype=np.int32).tobytes())
    buf.write(sizes.tobytes())
    buf.write(ranks.tobytes())
    buf.write(dists.tobytes())
    return buf.getvalue()


def labeling_from_bytes(data: bytes) -> Labeling:
    """Inverse of :func:`labeling_to_bytes` (returns the list backend)."""
    if data[: len(MAGIC)] != MAGIC:
        raise SerializationError("bad magic: not a SIEF labeling blob")
    offset = len(MAGIC)
    try:
        n = int(np.frombuffer(data, dtype=np.int64, count=1, offset=offset)[0])
        offset += 8
        sequence = np.frombuffer(data, dtype=np.int32, count=n, offset=offset)
        offset += 4 * n
        sizes = np.frombuffer(data, dtype=np.int32, count=n, offset=offset)
        offset += 4 * n
        total = int(sizes.sum())
        ranks = np.frombuffer(data, dtype=np.int32, count=total, offset=offset)
        offset += 4 * total
        dists = np.frombuffer(data, dtype=np.int32, count=total, offset=offset)
    except ValueError as exc:
        raise SerializationError(f"truncated labeling blob: {exc}") from exc
    ordering = VertexOrdering([int(v) for v in sequence])
    hub_ranks = []
    hub_dists = []
    pos = 0
    for v in range(n):
        k = int(sizes[v])
        hub_ranks.append([int(x) for x in ranks[pos : pos + k]])
        hub_dists.append([int(x) for x in dists[pos : pos + k]])
        pos += k
    return Labeling(ordering, hub_ranks, hub_dists)


def save_labeling(labeling: Labeling, path: PathLike) -> None:
    """Write the binary format to ``path``."""
    Path(path).write_bytes(labeling_to_bytes(labeling))


def load_labeling(path: PathLike) -> Labeling:
    """Read a labeling written by :func:`save_labeling`."""
    return labeling_from_bytes(Path(path).read_bytes())


def save_labeling_npz(labeling: Labeling, path: PathLike) -> None:
    """Write the native flat-array (npz) format to ``path``.

    Stores the frozen CSR-style arrays directly (freezing a copy of the
    backend state if the labeling is thawed); loading lands straight in
    the flat backend.
    """
    if labeling.offsets is not None:
        offsets, hubs, dists = (
            labeling.offsets,
            labeling.hubs_flat,
            labeling.dists_flat,
        )
    else:
        frozen = labeling.copy().freeze()
        offsets, hubs, dists = frozen.offsets, frozen.hubs_flat, frozen.dists_flat
    np.savez_compressed(
        str(path),
        format_version=np.int64(NPZ_FORMAT_VERSION),
        order=np.asarray(labeling.ordering.sequence(), dtype=np.int32),
        offsets=offsets,
        hubs=hubs,
        dists=dists,
    )


def load_labeling_npz(path: PathLike) -> Labeling:
    """Read a labeling written by :func:`save_labeling_npz` (frozen backend)."""
    try:
        with np.load(str(path)) as doc:
            version = int(doc["format_version"])
            if version != NPZ_FORMAT_VERSION:
                raise SerializationError(
                    f"unsupported labeling npz format version {version}"
                )
            ordering = VertexOrdering([int(v) for v in doc["order"]])
            return Labeling.from_flat(
                ordering, doc["offsets"], doc["hubs"], doc["dists"]
            )
    except SerializationError:
        raise
    except (OSError, KeyError, ValueError) as exc:
        raise SerializationError(f"bad labeling npz file: {exc}") from exc


def labeling_to_json(labeling: Labeling) -> str:
    """Human-inspectable JSON: hubs as vertex ids, per vertex."""
    doc = {
        "format_version": JSON_FORMAT_VERSION,
        "order": labeling.ordering.sequence(),
        "labels": {
            str(v): [[e.hub, e.distance] for e in labeling.entries(v)]
            for v in range(labeling.num_vertices)
        },
    }
    return json.dumps(doc, separators=(",", ":"))


def labeling_from_json(text: str) -> Labeling:
    """Inverse of :func:`labeling_to_json`.

    Accepts both current (``format_version`` 2) documents and the
    pre-version-field layout (treated as version 1).
    """
    try:
        doc = json.loads(text)
        version = int(doc.get("format_version", 1))
        if version not in (1, JSON_FORMAT_VERSION):
            raise SerializationError(
                f"unsupported labeling JSON format version {version}"
            )
        ordering = VertexOrdering([int(v) for v in doc["order"]])
        rank_of = ordering.rank
        n = len(doc["order"])
        hub_ranks = [[] for _ in range(n)]
        hub_dists = [[] for _ in range(n)]
        for key, entries in doc["labels"].items():
            v = int(key)
            pairs = sorted((rank_of(int(h)), int(d)) for h, d in entries)
            hub_ranks[v] = [r for r, _ in pairs]
            hub_dists[v] = [d for _, d in pairs]
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise SerializationError(f"bad labeling JSON: {exc}") from exc
    return Labeling(ordering, hub_ranks, hub_dists)
