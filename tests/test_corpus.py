"""Regression replay of the fuzz corpus (``tests/corpus/*.json``).

Every file is a shrunk counterexample some past fuzz run found — a
(graph, failure, s, t) quadruple on which an engine once disagreed with
its brute-force oracle.  Replaying them on every test run keeps those
bugs fixed forever, OSS-Fuzz style.  New files appear via
``sief fuzz`` (or :func:`repro.testing.fuzz` with a ``corpus_dir``);
they are content-addressed, so re-finding a known case is a no-op.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testing import iter_corpus, recheck

CORPUS_DIR = Path(__file__).parent / "corpus"

CORPUS = list(iter_corpus(CORPUS_DIR))


def test_corpus_is_seeded():
    """The repo ships at least the ISSUE acceptance counterexamples."""
    assert len(CORPUS) >= 1


@pytest.mark.parametrize(
    "path,cx", CORPUS, ids=[p.name for p, _cx in CORPUS]
)
def test_corpus_case_stays_fixed(path, cx):
    result = recheck(cx)
    assert not result.mismatch, (
        f"{path.name} regressed: {cx.describe()} — "
        f"recheck expected={result.expected} got={result.got} "
        f"error={result.error}"
    )


@pytest.mark.parametrize(
    "path,cx", CORPUS, ids=[p.name for p, _cx in CORPUS]
)
def test_corpus_case_is_small(path, cx):
    """Corpus files are *shrunk* counterexamples; keep them debuggable."""
    assert cx.num_vertices <= 12, f"{path.name} was committed unshrunk"
