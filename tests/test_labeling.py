"""Unit tests for Labeling structures and query evaluation."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelingError
from repro.graph import generators
from repro.labeling.label import LabelEntry, Labeling
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, dist_query, merge_min_sum
from repro.order.ordering import VertexOrdering
from repro.order.strategies import identity_order


class TestLabelingStructure:
    def test_empty(self):
        labeling = Labeling.empty(VertexOrdering([0, 1, 2]))
        assert labeling.total_entries() == 0
        assert labeling.num_vertices == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(LabelingError):
            Labeling(VertexOrdering([0, 1]), [[]], [[]])

    def test_entries_translate_ranks_to_vertices(self):
        ordering = VertexOrdering([2, 0, 1])  # vertex 2 has rank 0
        labeling = Labeling(
            ordering, [[0], [0, 2], [0]], [[1], [2, 0], [0]]
        )
        assert labeling.entries(1) == [LabelEntry(2, 2), LabelEntry(1, 0)]
        assert labeling.hubs(1) == [2, 1]

    def test_validate_flags_well_ordering_violation(self):
        ordering = VertexOrdering([0, 1])
        labeling = Labeling(ordering, [[1], [1]], [[3], [0]])
        problems = labeling.validate()
        assert any("well-ordering" in p for p in problems)

    def test_validate_flags_unsorted_ranks(self):
        ordering = VertexOrdering([0, 1, 2])
        labeling = Labeling(ordering, [[], [], [1, 0, 2]], [[], [], [1, 1, 0]])
        problems = labeling.validate()
        assert any("ascending" in p for p in problems)

    def test_validate_flags_negative_distance(self):
        labeling = Labeling(VertexOrdering([0]), [[0]], [[-1]])
        assert any("negative" in p for p in labeling.validate())

    def test_copy_independent(self, paper_labeling):
        clone = paper_labeling.copy()
        clone.hub_ranks[5].clear()
        assert paper_labeling.label_size(5) == 4

    def test_label_size_and_total(self, paper_labeling):
        assert paper_labeling.label_size(0) == 1
        assert paper_labeling.total_entries() == sum(
            paper_labeling.label_size(v) for v in range(11)
        )


class TestMergeMinSum:
    def test_common_hub(self):
        assert merge_min_sum([0, 2, 5], [1, 4, 2], [2, 5], [1, 9]) == 5

    def test_multiple_common_hubs_takes_min(self):
        assert merge_min_sum([0, 1], [5, 1], [0, 1], [5, 1]) == 2

    def test_no_common_hub_is_inf(self):
        assert merge_min_sum([0, 2], [1, 1], [1, 3], [1, 1]) == INF

    def test_empty_labels(self):
        assert merge_min_sum([], [], [0], [0]) == INF


class TestDistQuery:
    def test_self_distance_zero(self, paper_labeling):
        assert dist_query(paper_labeling, 7, 7) == 0

    def test_disconnected_components(self):
        g = generators.compose_disjoint(
            [generators.path_graph(3), generators.path_graph(3)]
        )
        labeling = build_pll(g, identity_order(g))
        assert dist_query(labeling, 0, 4) == INF
        assert dist_query(labeling, 0, 2) == 2

    def test_symmetry(self, paper_labeling):
        for s in range(11):
            for t in range(11):
                assert dist_query(paper_labeling, s, t) == dist_query(
                    paper_labeling, t, s
                )
