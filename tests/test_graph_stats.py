"""Unit tests for graph statistics and validation."""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph import generators
from repro.graph.stats import (
    average_clustering,
    compute_stats,
    estimate_diameter,
)
from repro.graph.validation import assert_valid, validate_graph

import pytest


class TestStats:
    def test_basic_counts(self, cycle6):
        stats = compute_stats(cycle6)
        assert stats.num_vertices == 6
        assert stats.num_edges == 6
        assert stats.min_degree == stats.max_degree == 2
        assert stats.avg_degree == 2.0
        assert stats.num_components == 1

    def test_density(self):
        g = generators.complete_graph(5)
        assert compute_stats(g).density == 1.0

    def test_degree_histogram(self, star7):
        stats = compute_stats(star7)
        assert stats.degree_histogram == {6: 1, 1: 6}

    def test_components_counted(self):
        g = Graph(5, [(0, 1), (2, 3)])
        stats = compute_stats(g)
        assert stats.num_components == 3
        assert stats.largest_component_size == 2

    def test_as_dict_keys(self, path5):
        d = compute_stats(path5).as_dict()
        assert {"num_vertices", "num_edges", "density"} <= set(d)

    def test_empty_graph(self):
        stats = compute_stats(Graph(0))
        assert stats.num_vertices == 0
        assert stats.avg_degree == 0.0


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        assert average_clustering(generators.complete_graph(3)) == 1.0

    def test_path_has_no_triangles(self, path5):
        assert average_clustering(path5) == 0.0

    def test_sampling_is_deterministic(self):
        g = generators.powerlaw_cluster(80, 4, 0.6, seed=2)
        a = average_clustering(g, sample=30, seed=1)
        b = average_clustering(g, sample=30, seed=1)
        assert a == b


class TestDiameter:
    def test_path_diameter_exact(self):
        g = generators.path_graph(12)
        assert estimate_diameter(g) == 11  # double sweep is exact on trees

    def test_lower_bounds_true_diameter(self):
        g = generators.erdos_renyi_gnm(40, 70, seed=3)
        from repro.graph.traversal import bfs_distances, UNREACHED

        true_diam = 0
        for v in range(40):
            dist = bfs_distances(g, v)
            true_diam = max(
                true_diam, max(d for d in dist if d != UNREACHED)
            )
        assert estimate_diameter(g) <= true_diam


class TestValidation:
    def test_healthy_graph(self, cycle6):
        assert validate_graph(cycle6) == []
        assert_valid(cycle6)

    def test_detects_asymmetry(self):
        g = Graph(3, [(0, 1)])
        g.adjacency()[0].append(2)  # corrupt deliberately
        problems = validate_graph(g)
        assert any("asymmetric" in p for p in problems)

    def test_detects_count_mismatch(self):
        g = Graph(3, [(0, 1)])
        g._num_edges = 5  # corrupt bookkeeping
        problems = validate_graph(g)
        assert any("edge count mismatch" in p for p in problems)

    def test_assert_valid_raises(self):
        g = Graph(2, [(0, 1)])
        g.adjacency()[0].append(0)
        with pytest.raises(AssertionError):
            assert_valid(g)
