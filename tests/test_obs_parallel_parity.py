"""Parallel-vs-serial build metrics parity (satellite of the obs layer).

The parallel builder gives each worker chunk its own registry and merges
the snapshots at the join; the serial builder feeds the installed
registry directly.  Both funnel through the single
``record_case_obs`` helper, so every *deterministic* counter — cases
built, relabel invocations, affected-vertex totals, supplemental entry
totals, search expansions — must agree exactly.  This test enforces
that across three generator families and two vertex orderings (ordering
changes the labeling, hence the supplement sizes, so parity must hold
per-ordering, not just on one lucky labeling).

Timing histograms are machine-dependent and explicitly out of scope;
parity is promised for counters and for the deterministic size
histograms' bucket counts.
"""

from __future__ import annotations

import pytest

from repro.core.builder import SIEFBuilder
from repro.core.parallel import build_sief_parallel
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.obs import MetricsRegistry, hooks, installed
from repro.order.strategies import make_ordering

PARITY_COUNTERS = (
    "sief.build.cases",
    "sief.build.relabel_invocations",
    "sief.build.affected_vertices",
    "sief.build.supplemental_entries",
    "sief.build.relabel_expanded",
)

PARITY_SIZE_HISTOGRAMS = (
    "sief.build.affected_per_case",
    "sief.build.entries_per_case",
)

FAMILIES = {
    "er": lambda: generators.erdos_renyi_gnm(22, 38, seed=3),
    "ba": lambda: generators.barabasi_albert(24, 2, seed=4),
    "tree": lambda: generators.random_tree(26, seed=5),
}

ORDERINGS = ("degree", "identity")


def _build_serial(graph, labeling) -> MetricsRegistry:
    with installed() as reg:
        SIEFBuilder(graph, labeling).build()
    return reg


def _build_parallel(graph, labeling, workers: int) -> MetricsRegistry:
    with installed() as reg:
        build_sief_parallel(graph, labeling, workers=workers)
    return reg


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    before = (hooks.registry, hooks.tracer)
    yield
    assert (hooks.registry, hooks.tracer) == before


@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_parallel_counters_equal_serial(family, ordering):
    graph = FAMILIES[family]()
    labeling = build_pll(graph, ordering=make_ordering(graph, ordering))
    serial = _build_serial(graph, labeling)
    parallel = _build_parallel(graph, labeling, workers=2)

    assert serial.counter_value("sief.build.cases") == graph.num_edges
    for name in PARITY_COUNTERS:
        assert serial.counter_value(name) == parallel.counter_value(name), (
            f"{family}/{ordering}: counter {name} diverged between "
            "serial and parallel builds"
        )
    for name in PARITY_SIZE_HISTOGRAMS:
        hs = serial.histogram(name)
        hp = parallel.histogram(name)
        assert hs.counts == hp.counts, (
            f"{family}/{ordering}: histogram {name} bucket counts diverged"
        )
        assert hs.sum == hp.sum


def test_single_worker_path_also_matches():
    # workers=1 short-circuits the pool entirely; it must still count.
    graph = FAMILIES["er"]()
    labeling = build_pll(graph)
    serial = _build_serial(graph, labeling)
    inproc = _build_parallel(graph, labeling, workers=1)
    for name in PARITY_COUNTERS:
        assert serial.counter_value(name) == inproc.counter_value(name)


def test_parallel_build_without_registry_records_nothing():
    graph = FAMILIES["tree"]()
    labeling = build_pll(graph)
    assert hooks.registry is None
    index, report = build_sief_parallel(graph, labeling, workers=2)
    assert report.num_cases == graph.num_edges  # build itself unaffected


def test_worker_snapshots_sum_not_duplicate():
    # Total affected vertices must equal the per-record sum exactly —
    # a double-merge or a lost chunk would break equality, not just
    # proportionality.
    graph = FAMILIES["ba"]()
    labeling = build_pll(graph)
    with installed() as reg:
        _, report = build_sief_parallel(graph, labeling, workers=3)
    assert reg.counter_value("sief.build.cases") == report.num_cases
    assert reg.counter_value("sief.build.affected_vertices") == sum(
        r.affected_total for r in report.records
    )
    assert (
        reg.counter_value("sief.build.relabel_expanded")
        == report.relabel_expanded
    )
