"""Chrome trace-event export tests: schema, tracks, profiler samples."""

from __future__ import annotations

import json

from repro.graph.graph import Graph
from repro.obs import (
    MetricsRegistry,
    SpanProfiler,
    SpanRecord,
    TraceRecorder,
    hooks,
    to_chrome_trace,
    to_chrome_trace_json,
    validate_trace_events,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


def _recorder_with_spans() -> TraceRecorder:
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("outer"):
        with rec.span("inner"):
            pass
    return rec


def _events(doc, ph=None):
    evs = doc["traceEvents"]
    return evs if ph is None else [e for e in evs if e["ph"] == ph]


class TestSchema:
    def test_every_event_has_required_keys(self):
        doc = to_chrome_trace(_recorder_with_spans())
        assert validate_trace_events(doc) == []
        for ev in doc["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in ev

    def test_validate_reports_problems(self):
        assert validate_trace_events({}) == [
            "top-level 'traceEvents' missing or not a list"
        ]
        bad = {"traceEvents": [{"ph": "X", "ts": -1, "pid": 0, "tid": 0}]}
        problems = validate_trace_events(bad)
        assert any("no 'name'" in p for p in problems)
        assert any("non-negative" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_json_serialization_parses_back(self):
        text = to_chrome_trace_json(_recorder_with_spans())
        doc = json.loads(text)
        assert doc["displayTimeUnit"] == "ms"
        assert validate_trace_events(doc) == []


class TestSpans:
    def test_spans_become_complete_events_with_normalized_ts(self):
        doc = to_chrome_trace(_recorder_with_spans())
        spans = _events(doc, "X")
        by_name = {e["name"]: e for e in spans}
        # FakeClock: outer pushed at 0, inner at 1..2, outer popped at 3.
        assert by_name["outer"]["ts"] == 0.0
        assert by_name["outer"]["dur"] == 3e6
        assert by_name["inner"]["ts"] == 1e6
        assert by_name["inner"]["dur"] == 1e6
        assert by_name["inner"]["args"]["depth"] == 1

    def test_process_and_main_thread_metadata(self):
        doc = to_chrome_trace(_recorder_with_spans(), process_name="myproc")
        meta = _events(doc, "M")
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "myproc") in names
        assert ("thread_name", "main") in names


class TestWorkerTracks:
    def test_each_track_gets_distinct_tid_and_thread_name(self):
        rec = _recorder_with_spans()
        rec.add_track(
            "worker-101",
            [SpanRecord(name="sief.build.case", depth=0, seconds=1.0, start=5.0)],
        )
        rec.add_track(
            "worker-102",
            [SpanRecord(name="sief.build.case", depth=0, seconds=1.0, start=6.0)],
        )
        doc = to_chrome_trace(rec)
        assert validate_trace_events(doc) == []
        thread_names = {
            e["args"]["name"]: e["tid"]
            for e in _events(doc, "M")
            if e["name"] == "thread_name"
        }
        assert thread_names["main"] == 0
        assert thread_names["worker-101"] == 1
        assert thread_names["worker-102"] == 2
        span_tids = {
            e["tid"] for e in _events(doc, "X") if e["name"] == "sief.build.case"
        }
        assert span_tids == {1, 2}

    def test_origin_normalizes_across_tracks(self):
        rec = TraceRecorder(clock=FakeClock())
        rec.add_track(
            "worker-1", [SpanRecord(name="c", depth=0, seconds=1.0, start=10.0)]
        )
        rec.add_track(
            "worker-2", [SpanRecord(name="c", depth=0, seconds=1.0, start=12.0)]
        )
        doc = to_chrome_trace(rec)
        ts = sorted(e["ts"] for e in _events(doc, "X"))
        assert ts == [0.0, 2e6]


class TestProfilerSamples:
    def test_samples_become_instant_events_with_folded_stack(self):
        rec = _recorder_with_spans()
        prof = SpanProfiler(rec, clock=FakeClock())
        prof.sample_once(("outer", "inner"))
        doc = to_chrome_trace(rec, prof)
        assert validate_trace_events(doc) == []
        (inst,) = _events(doc, "i")
        assert inst["name"] == "sample:inner"
        assert inst["args"]["stack"] == "outer;inner"
        assert inst["s"] == "t"


class TestDroppedSpans:
    def test_wrapped_ring_emits_counter_event(self):
        rec = TraceRecorder(capacity=1, clock=FakeClock())
        for name in ("a", "b", "c"):
            with rec.span(name):
                pass
        doc = to_chrome_trace(rec)
        (counter,) = _events(doc, "C")
        assert counter["name"] == "trace.dropped_spans"
        assert counter["args"]["dropped"] == 2

    def test_no_counter_event_when_nothing_dropped(self):
        assert _events(to_chrome_trace(_recorder_with_spans()), "C") == []


def test_write_chrome_trace_creates_parents(tmp_path):
    path = write_chrome_trace(
        _recorder_with_spans(), tmp_path / "sub" / "trace.json"
    )
    doc = json.loads(path.read_text())
    assert validate_trace_events(doc) == []


def test_instrumented_parallel_build_has_per_worker_tracks():
    """Integration: a real pool build ships spans back as worker tracks.

    Pool scheduling is nondeterministic (one worker can in principle
    grab every chunk), so this asserts at least one distinct worker
    track with case spans — the deterministic multi-track rendering is
    pinned by TestWorkerTracks above.
    """
    from repro.core.parallel import build_sief_parallel

    g = Graph(20)
    for i in range(19):
        g.add_edge(i, i + 1)
    g.add_edge(0, 10)
    g.add_edge(5, 15)
    reg = MetricsRegistry()
    rec = TraceRecorder(capacity=4096)
    with hooks.installed(reg, rec):
        build_sief_parallel(g, workers=2, algorithm="batched")
    tracks = rec.tracks()
    assert len(tracks) >= 1
    assert all(name.startswith("worker-") for name in tracks)
    case_spans = [
        r for recs in tracks.values() for r in recs
        if r.name == "sief.build.case"
    ]
    assert len(case_spans) == 21  # one per edge
    doc = to_chrome_trace(rec)
    assert validate_trace_events(doc) == []
    tids = {
        e["tid"]
        for e in doc["traceEvents"]
        if e["ph"] == "X" and e["name"] == "sief.build.case"
    }
    assert len(tids) == len(tracks)
    assert 0 not in tids  # worker spans never land on the main track
