"""Unit + property tests for incremental labeling maintenance."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exceptions import GraphError, LabelingError
from repro.graph.graph import Graph
from repro.graph import generators
from repro.graph.traversal import UNREACHED, bfs_distances
from repro.labeling.dynamic import insert_edge, insert_edges
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, dist_query
from repro.order.strategies import random_order


def assert_exact(graph, labeling):
    for s in range(graph.num_vertices):
        truth = bfs_distances(graph, s)
        for t in range(graph.num_vertices):
            expected = truth[t] if truth[t] != UNREACHED else INF
            assert dist_query(labeling, s, t) == expected, (s, t)


class TestInsertEdge:
    def test_simple_shortcut(self):
        g = generators.path_graph(6)
        labeling = build_pll(g)
        written = insert_edge(g, labeling, 0, 5)
        assert written > 0
        assert dist_query(labeling, 0, 5) == 1
        assert_exact(g, labeling)

    def test_connecting_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        labeling = build_pll(g)
        assert dist_query(labeling, 0, 5) == INF
        insert_edge(g, labeling, 2, 3)
        assert dist_query(labeling, 0, 5) == 5
        assert_exact(g, labeling)

    def test_redundant_edge_writes_nothing_new_distancewise(self):
        g = generators.complete_graph(5)
        g.remove_edge(0, 1)
        labeling = build_pll(g)
        # 0 and 1 are at distance 2; adding the edge shortens exactly
        # that one pair.
        insert_edge(g, labeling, 0, 1)
        assert dist_query(labeling, 0, 1) == 1
        assert_exact(g, labeling)

    def test_well_ordering_preserved(self):
        g = generators.erdos_renyi_gnm(20, 30, seed=3)
        labeling = build_pll(g)
        rng = random.Random(3)
        for _ in range(5):
            candidates = [
                (u, v)
                for u in range(20)
                for v in range(u + 1, 20)
                if not g.has_edge(u, v)
            ]
            insert_edge(g, labeling, *rng.choice(candidates))
        assert labeling.validate() == []

    def test_duplicate_insert_rejected(self, path5):
        labeling = build_pll(path5)
        with pytest.raises(GraphError):
            insert_edge(path5, labeling, 0, 1)

    def test_size_mismatch_rejected(self, path5, cycle6):
        labeling = build_pll(cycle6)
        with pytest.raises(LabelingError):
            insert_edge(path5, labeling, 0, 2)

    def test_insert_edges_bulk(self):
        g = generators.path_graph(8)
        labeling = build_pll(g)
        insert_edges(g, labeling, [(0, 7), (2, 6)])
        assert_exact(g, labeling)

    @pytest.mark.parametrize("seed", range(8))
    def test_exactness_over_random_insertion_sequences(self, seed):
        rng = random.Random(seed)
        n = rng.randint(8, 18)
        g = generators.erdos_renyi_gnm(n, rng.randint(n // 2, n), seed=seed)
        labeling = build_pll(g, random_order(g, seed=seed))
        for _ in range(6):
            candidates = [
                (u, v)
                for u in range(n)
                for v in range(u + 1, n)
                if not g.has_edge(u, v)
            ]
            if not candidates:
                break
            insert_edge(g, labeling, *rng.choice(candidates))
            assert_exact(g, labeling)
            assert labeling.validate() == []


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(6, 14),
    inserts=st.integers(1, 4),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_incremental_equals_from_scratch_answers(seed, n, inserts):
    """After any insertion sequence, the repaired labeling answers every
    query exactly like a labeling built from scratch on the final graph."""
    rng = random.Random(seed)
    g = generators.erdos_renyi_gnm(n, rng.randint(n // 2, n), seed=seed)
    labeling = build_pll(g)
    for _ in range(inserts):
        candidates = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if not g.has_edge(u, v)
        ]
        if not candidates:
            break
        insert_edge(g, labeling, *rng.choice(candidates))
    fresh = build_pll(g)
    for s in range(n):
        for t in range(n):
            assert dist_query(labeling, s, t) == dist_query(fresh, s, t)
