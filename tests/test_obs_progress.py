"""ProgressReporter tests: injected clock + StringIO, nothing flaky."""

from __future__ import annotations

import io

from repro.obs import ProgressReporter


class ManualClock:
    """Clock that only moves when the test says so."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _reporter(total=None, min_interval=1.0):
    clock = ManualClock()
    stream = io.StringIO()
    prog = ProgressReporter(
        total=total,
        stream=stream,
        clock=clock,
        min_interval=min_interval,
        label="sief build",
    )
    return prog, clock, stream


def test_advance_accumulates_and_renders():
    prog, clock, stream = _reporter(total=100)
    clock.now = 10.0
    prog.advance(25)
    assert prog.done == 25
    out = stream.getvalue()
    assert "\r" in out
    assert " 25/100 cases" in out
    assert "2.5/s" in out


def test_render_line_shows_rate_and_eta():
    prog, clock, _ = _reporter(total=100)
    prog.done = 40
    clock.now = 10.0  # 4/s, 60 remaining -> 15s
    line = prog.render_line()
    assert line == "sief build:  40/100 cases  4.0/s  ETA 15s"


def test_eta_formats():
    prog, clock, _ = _reporter(total=1000)
    prog.done = 1
    clock.now = 1.0  # 1/s -> 999s ETA = 16m39s
    assert "ETA 16m39s" in prog.render_line()
    prog2, clock2, _ = _reporter(total=100_000)
    prog2.done = 1
    clock2.now = 1.0  # 99999s = 27h46m
    assert "ETA 27h46m" in prog2.render_line()


def test_no_eta_without_total():
    prog, clock, _ = _reporter(total=None)
    prog.done = 10
    clock.now = 5.0
    line = prog.render_line()
    assert "ETA" not in line
    assert "10 cases" in line


def test_no_eta_once_complete():
    prog, clock, _ = _reporter(total=10)
    prog.done = 10
    clock.now = 5.0
    assert "ETA" not in prog.render_line()


def test_renders_are_throttled_by_min_interval():
    prog, clock, stream = _reporter(total=1000, min_interval=1.0)
    for i in range(100):
        clock.now = i * 0.01  # 100 ticks inside one second
        prog.advance()
    assert prog.done == 100
    # First tick renders (throttle starts at -inf); the rest are inside
    # the interval and must not.
    assert prog.renders == 1
    clock.now = 2.0
    prog.advance()
    assert prog.renders == 2


def test_update_sets_absolute_count():
    prog, clock, _ = _reporter(total=100)
    clock.now = 1.0
    prog.update(42)
    prog.update(42)
    assert prog.done == 42


def test_finish_always_renders_and_ends_line():
    prog, clock, stream = _reporter(total=10, min_interval=1000.0)
    prog.done = 10
    clock.now = 0.5
    prog.finish()
    out = stream.getvalue()
    assert out.endswith("\n")
    assert "10/10 cases" in out


def test_context_manager_finishes():
    prog, clock, stream = _reporter(total=2)
    with prog:
        clock.now = 1.0
        prog.advance(2)
    assert stream.getvalue().endswith("\n")


def test_zero_cost_seam_contract():
    """The hooks seam stays `is None`-cheap: nothing installed by default."""
    from repro.obs import hooks

    assert hooks.progress is None
    assert hooks.profiler is None
