"""Request-scoped observability through a live server.

Every test drives a real socket: trace-id intake (traceparent header,
X-Trace-Id header, binary frame trailer) and echo, the ``?debug=1``
stage decomposition, the ``/debug/requests`` and ``/debug/slow``
surfaces, the event log's request lines and slow/error bypass, the
scrape-time gauges on ``/metrics``, and — the contract everything else
leans on — that none of it changes answer bytes.
"""

from __future__ import annotations

import json

import pytest

from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.graph import generators
from repro.obs.events import EventLog
from repro.obs.metrics import REQUEST_LATENCY_EDGES
from repro.serve.client import ServeClient
from repro.serve.inprocess import InProcessServer
from repro.serve.server import ServeConfig


@pytest.fixture(scope="module")
def engine() -> SIEFQueryEngine:
    graph = generators.erdos_renyi_gnm(24, 44, seed=9)
    index, _ = SIEFBuilder(graph).build()
    return SIEFQueryEngine(index.freeze())


@pytest.fixture(scope="module")
def an_edge(engine):
    return sorted(engine.index.supplements)[0]


def traced_server(engine, **kwargs):
    events = EventLog(capacity=1024, sample=1.0, slow_seconds=0.5)
    kwargs.setdefault("max_batch", 64)
    kwargs.setdefault("max_delay", 0.0005)
    return InProcessServer(engine, ServeConfig(events=events, **kwargs)), events


W3C_TID = "4bf92f3577b34da6a3ce929d0e0e4736"


# ---------------------------------------------------------------------------
# trace-id intake and echo
# ---------------------------------------------------------------------------


def test_every_response_carries_a_trace_id(engine, an_edge):
    srv, _ = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        status, headers, _ = client.request("GET", "/healthz")
        assert status == 200
        assert len(headers["x-trace-id"]) == 32


def test_traceparent_header_wins_and_is_echoed(engine, an_edge):
    srv, events = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        body = json.dumps({"s": u, "t": v, "edge": list(an_edge)}).encode()
        client._conn.request(
            "POST",
            "/dist",
            body=body,
            headers={
                "Content-Type": "application/json",
                "traceparent": f"00-{W3C_TID}-00f067aa0ba902b7-01",
                "X-Trace-Id": "should-lose",
            },
        )
        resp = client._conn.getresponse()
        resp.read()
        assert resp.headers["X-Trace-Id"] == W3C_TID
    assert any(e.get("trace_id") == W3C_TID for e in events.recent())


def test_x_trace_id_header_accepted(engine, an_edge):
    srv, _ = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        _, headers, _ = client.request(
            "POST",
            "/dist",
            json.dumps({"s": u, "t": v, "edge": list(an_edge)}).encode(),
            trace_id="my-opaque-token_01",
        )
        assert headers["x-trace-id"] == "my-opaque-token_01"


def test_invalid_header_trace_id_replaced_with_generated(engine, an_edge):
    srv, _ = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        _, headers, _ = client.request(
            "POST",
            "/dist",
            json.dumps({"s": u, "t": v, "edge": list(an_edge)}).encode(),
            trace_id="bad token with spaces",
        )
        # spaces make it invalid; the server generates a 32-hex id instead
        assert len(headers["x-trace-id"]) == 32
        assert headers["x-trace-id"] != "bad token with spaces"


def test_binary_frame_trailer_beats_headers(engine, an_edge):
    srv, events = traced_server(engine)
    frame_tid = "ab" * 16
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        _, headers = client.batch_binary_ex(
            an_edge, [(u, v)], trace_id=frame_tid
        )
        assert headers["x-trace-id"] == frame_tid
    assert any(e.get("trace_id") == frame_tid for e in events.recent())


# ---------------------------------------------------------------------------
# ?debug=1 decomposition, bit-identity
# ---------------------------------------------------------------------------


def test_debug_answers_match_plain_answers(engine, an_edge):
    srv, _ = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        pairs = [(u, v), (v, u), (0, u)]
        plain = client.batch(an_edge, pairs)
        debug_doc = client.batch_ex(an_edge, pairs, debug=True)
        debugged = [
            float("inf") if d is None else float(d)
            for d in debug_doc["distances"]
        ]
        assert plain == debugged
        # and the plain response has no debug field at all
        plain_doc = client.batch_ex(an_edge, pairs, debug=False)
        assert "debug" not in plain_doc
        assert "debug" in debug_doc


def test_debug_decomposition_has_all_stages(engine, an_edge):
    srv, _ = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        doc = client.distance_ex(u, v, an_edge, debug=True)
        stages = doc["debug"]["stages"]
        for stage in ("parse", "queue", "batch", "compute", "serialize"):
            assert stage in stages, stages
        assert all(v >= 0 for v in stages.values())
        assert doc["debug"]["pages_faulted"] == 0


def test_binary_debug_rides_in_header(engine, an_edge):
    srv, _ = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        plain_answer = client.batch_binary(an_edge, [(u, v)])
        answer, headers = client.batch_binary_ex(
            an_edge, [(u, v)], debug=True
        )
        assert list(answer) == list(plain_answer)
        debug = json.loads(headers["x-sief-debug"])
        assert "compute" in debug["stages"]


# ---------------------------------------------------------------------------
# /debug surfaces
# ---------------------------------------------------------------------------


def test_debug_requests_records_recent(engine, an_edge):
    srv, _ = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        tid = "feed" * 8
        client.distance(u, v, an_edge, trace_id=tid)
        doc = client.debug_requests()
        assert "inflight" in doc
        entry = [e for e in doc["recent"] if e["trace_id"] == tid]
        assert entry, doc["recent"]
        assert entry[0]["path"] == "/dist"
        assert entry[0]["status"] == 200
        # stages and seconds are rounded to µs in the entry
        assert entry[0]["seconds"] >= sum(entry[0]["stages"].values()) - 1e-5


def test_debug_recent_ring_is_bounded(engine, an_edge):
    events = EventLog(sample=0.0)
    with InProcessServer(
        engine,
        ServeConfig(
            max_batch=64, max_delay=0.0005, events=events, debug_recent=4
        ),
    ) as srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        for _ in range(10):
            client.distance(u, v, an_edge)
        recent = client.debug_requests()["recent"]
        # 4 newest kept; the /debug request itself is not yet finished
        assert len(recent) == 4
        assert all(e["path"] == "/dist" for e in recent)


def test_debug_slow_keeps_slowest_n(engine, an_edge):
    async def slow_hook(path):
        if path == "/failures":
            import asyncio

            await asyncio.sleep(0.05)

    events = EventLog(sample=1.0, slow_seconds=0.04)
    with InProcessServer(
        engine,
        ServeConfig(
            max_batch=64,
            max_delay=0.0005,
            events=events,
            debug_slow=2,
            fault_hook=slow_hook,
        ),
    ) as srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        for _ in range(3):
            client.distance(u, v, an_edge)
        client.failures()  # artificially slow
        doc = client.debug_slow()
        assert doc["slow_seconds"] == 0.04
        assert len(doc["slowest"]) == 2
        # slowest first, and the hooked /failures call dominates
        assert doc["slowest"][0]["path"] == "/failures"
        assert doc["slowest"][0]["seconds"] >= doc["slowest"][1]["seconds"]
    # the slow request bypassed nothing (sample=1.0) but was flagged slow
    assert events.slow_events >= 1


# ---------------------------------------------------------------------------
# event log wiring
# ---------------------------------------------------------------------------


def test_request_events_carry_decomposition_and_flush_correlates(
    engine, an_edge
):
    srv, events = traced_server(engine)
    tid = "0123456789abcdef" * 2
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        client.batch(an_edge, [(u, v)], trace_id=tid)
    req = [
        e
        for e in events.recent()
        if e.get("event") == "request" and e["trace_id"] == tid
    ]
    assert len(req) == 1
    ev = req[0]
    assert ev["status"] == 200
    assert ev["path"] == "/batch"
    assert sum(ev["stages"].values()) <= ev["seconds"] + 1e-5
    assert "ts" in ev and ev["bytes_out"] > 0
    flushes = [
        e
        for e in events.recent()
        if e.get("event") == "batch.flush" and tid in e.get("trace_ids", [])
    ]
    assert flushes, events.recent()
    assert flushes[0]["pairs"] >= 1
    assert flushes[0]["cause"] in ("size", "deadline", "drain")


def test_errors_bypass_sampling(engine, an_edge):
    def raising_hook(path):
        if path == "/failures":
            raise OSError("injected")

    events = EventLog(sample=0.0)  # nothing sampled
    with InProcessServer(
        engine,
        ServeConfig(
            max_batch=64,
            max_delay=0.0005,
            events=events,
            fault_hook=raising_hook,
        ),
    ) as srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        client.distance(u, v, an_edge)  # sampled out
        status, _, _ = client.request("GET", "/failures")
        assert status == 500
    kinds = [(e.get("event"), e.get("status")) for e in events.recent()]
    assert ("request", 500) in kinds
    assert ("request", 200) not in kinds
    assert events.sampled_out >= 1
    assert events.error_events == 1


def test_sampling_off_serves_identical_answers(engine, an_edge):
    with InProcessServer(engine) as plain_srv:
        plain_client = ServeClient(plain_srv.host, plain_srv.port)
        u, v = an_edge
        expected = plain_client.batch(an_edge, [(u, v), (v, u)])
    events = EventLog(sample=0.0)
    with InProcessServer(
        engine, ServeConfig(events=events)
    ) as srv:
        client = ServeClient(srv.host, srv.port)
        got = client.batch(an_edge, [(u, v), (v, u)])
    assert got == expected
    assert len(events.recent()) == 0


# ---------------------------------------------------------------------------
# /metrics: scrape-time gauges + pinned buckets
# ---------------------------------------------------------------------------


def test_metrics_exports_rss_and_event_gauges(engine, an_edge):
    srv, events = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        client.distance(u, v, an_edge)
        text = client.metrics_text()
    lines = dict(
        line.rsplit(" ", 1)
        for line in text.splitlines()
        if line and not line.startswith("#") and "{" not in line
    )
    assert float(lines["process_peak_rss_bytes"]) > 1024 * 1024
    # the /metrics request itself logs an event after the gauges were
    # refreshed, so the gauge trails the live counter by that request
    assert 0 < float(lines["serve_events_emitted"]) <= events.emitted
    assert float(lines["serve_events_sampled_out"]) == events.sampled_out
    assert float(lines["serve_events_dropped"]) == events.dropped
    assert "serve_events_sink_errors" in lines


def test_request_latency_bucket_boundaries_are_pinned(engine, an_edge):
    # The serving histogram must cover paged-store tails: widening (or
    # narrowing) these edges breaks mergeability with recorded snapshots,
    # so any change has to be deliberate — and break this test first.
    assert REQUEST_LATENCY_EDGES == (
        1e-4, 2.5e-4, 5e-4,
        1e-3, 2.5e-3, 5e-3,
        1e-2, 2.5e-2, 5e-2,
        1e-1, 2.5e-1, 5e-1,
        1.0, 2.5, 5.0, 10.0, 30.0,
    )
    srv, _ = traced_server(engine)
    with srv:
        client = ServeClient(srv.host, srv.port)
        u, v = an_edge
        client.distance(u, v, an_edge)
        snap = srv.registry.snapshot()
    hist = snap["histograms"]["serve.request.seconds"]
    assert tuple(hist["edges"]) == REQUEST_LATENCY_EDGES
    assert hist["count"] >= 1
    # stage histograms share the same edges
    stage = snap["histograms"]["serve.stage.compute_seconds"]
    assert tuple(stage["edges"]) == REQUEST_LATENCY_EDGES
