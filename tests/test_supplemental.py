"""Unit tests for the supplemental label data structures."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexError_
from repro.core.affected import AffectedVertices
from repro.core.supplemental import SupplementalIndex, SupplementalLabels


@pytest.fixture
def affected():
    return AffectedVertices(u=0, v=5, side_u=(0, 2), side_v=(5, 7))


class TestSupplementalLabels:
    def test_append_in_rank_order(self):
        sl = SupplementalLabels([], [])
        sl.append(1, 4)
        sl.append(3, 2)
        assert sl.pairs() == [(1, 4), (3, 2)]
        assert len(sl) == 2

    def test_out_of_order_append_rejected(self):
        sl = SupplementalLabels([2], [1])
        with pytest.raises(IndexError_, match="ascending rank"):
            sl.append(2, 5)
        with pytest.raises(IndexError_):
            sl.append(1, 5)


class TestSupplementalIndex:
    def test_edge_property(self, affected):
        si = SupplementalIndex(affected)
        assert si.edge == (0, 5)

    def test_label_of_creates_once(self, affected):
        si = SupplementalIndex(affected)
        a = si.label_of(7)
        b = si.label_of(7)
        assert a is b

    def test_get_returns_empty_for_missing(self, affected):
        si = SupplementalIndex(affected)
        assert len(si.get(99)) == 0

    def test_drop_empty(self, affected):
        si = SupplementalIndex(affected)
        si.label_of(7)          # stays empty
        si.label_of(5).append(0, 3)
        si.drop_empty()
        assert set(si.labels) == {5}

    def test_total_entries(self, affected):
        si = SupplementalIndex(affected)
        si.label_of(5).append(0, 3)
        si.label_of(7).append(0, 2)
        si.label_of(7).append(1, 2)
        assert si.total_entries() == 3

    def test_iter_labels_sorted_by_vertex(self, affected):
        si = SupplementalIndex(affected)
        si.label_of(7).append(0, 1)
        si.label_of(5).append(0, 1)
        assert [v for v, _ in si.iter_labels()] == [5, 7]

    def test_equality_ignores_empty_labels(self, affected):
        a = SupplementalIndex(affected)
        a.label_of(5).append(0, 3)
        a.label_of(7)  # empty
        b = SupplementalIndex(affected)
        b.label_of(5).append(0, 3)
        assert a == b

    def test_inequality_on_different_entries(self, affected):
        a = SupplementalIndex(affected)
        a.label_of(5).append(0, 3)
        b = SupplementalIndex(affected)
        b.label_of(5).append(0, 4)
        assert a != b

    def test_repr(self, affected):
        si = SupplementalIndex(affected)
        assert "SupplementalIndex" in repr(si)
