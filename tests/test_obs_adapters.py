"""Instrumented conformance adapters and the fuzz-loop obs invariants."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, TraceRecorder, hooks
from repro.testing.adapters import (
    ADAPTERS,
    InstrumentedAdapter,
    SIEFScalarAdapter,
    WorldContext,
)
from repro.testing.fuzz import FuzzConfig, _check_obs_invariants, fuzz


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    before = (hooks.registry, hooks.tracer)
    yield
    assert (hooks.registry, hooks.tracer) == before


def _ctx(num_vertices=8, edges=((0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (4, 5), (5, 6), (6, 7))):
    return WorldContext(
        family="undirected", num_vertices=num_vertices, edges=list(edges)
    )


class TestRegistration:
    def test_instrumented_variants_registered(self):
        assert {"sief-scalar-obs", "sief-batch-obs", "sief-lazy-obs"} <= set(
            ADAPTERS
        )
        for name in ("sief-scalar-obs", "sief-batch-obs", "sief-lazy-obs"):
            assert isinstance(ADAPTERS[name], InstrumentedAdapter)
            assert ADAPTERS[name].name == name

    def test_wrapper_mirrors_inner_contract(self):
        inner = SIEFScalarAdapter()
        wrapped = InstrumentedAdapter(inner)
        assert wrapped.name == "sief-scalar-obs"
        assert wrapped.family == inner.family
        assert wrapped.failure_kind == inner.failure_kind
        assert wrapped.max_edges == inner.max_edges
        assert wrapped.agree(1.0, 1.0) and not wrapped.agree(1.0, 2.0)


class TestWrapperSemantics:
    def test_answers_match_inner_and_oracle(self):
        ctx = _ctx()
        inner = SIEFScalarAdapter()
        wrapped = InstrumentedAdapter(inner)
        failure = ("edge", 1, 2)
        pairs = [(0, 3), (0, 7), (2, 5)]
        assert wrapped.distances(ctx, failure, pairs) == inner.distances(
            ctx, failure, pairs
        )
        assert wrapped.distances(ctx, failure, pairs) == wrapped.truth(
            ctx, failure, pairs
        )

    def test_detects_metrics_dependent_answers(self):
        class MetricsSensitive(SIEFScalarAdapter):
            """Pathological engine whose answers change when observed."""

            def distances(self, ctx, failure, pairs):
                out = super().distances(ctx, failure, pairs)
                if hooks.registry is not None:
                    out = [d + 1 for d in out]
                return out

        wrapped = InstrumentedAdapter(MetricsSensitive())
        with pytest.raises(AssertionError, match="metrics-on"):
            wrapped.distances(_ctx(), ("edge", 1, 2), [(0, 3)])

    def test_detects_unbalanced_spans(self):
        class SpanLeaker(SIEFScalarAdapter):
            def distances(self, ctx, failure, pairs):
                if hooks.tracer is not None:
                    hooks.tracer.span("leaked").__enter__()
                return super().distances(ctx, failure, pairs)

        wrapped = InstrumentedAdapter(SpanLeaker())
        with pytest.raises(AssertionError, match="unbalanced"):
            wrapped.distances(_ctx(), ("edge", 1, 2), [(0, 3)])

    def test_detects_disconnected_instrumentation(self):
        class NothingRecorded(SIEFScalarAdapter):
            def distances(self, ctx, failure, pairs):
                with hooks.disabled():
                    return super().distances(ctx, failure, pairs)

        wrapped = InstrumentedAdapter(NothingRecorded())
        with pytest.raises(AssertionError, match="recorded nothing"):
            wrapped.distances(_ctx(), ("edge", 1, 2), [(0, 3)])


class TestFuzzLoopInvariants:
    def test_check_flags_leaked_install(self):
        before = (hooks.registry, hooks.tracer)
        hooks.install(MetricsRegistry())
        try:
            with pytest.raises(RuntimeError, match="leaked"):
                _check_obs_invariants("bad-adapter", before)
        finally:
            hooks.uninstall()

    def test_check_flags_unbalanced_outer_tracer(self):
        rec = TraceRecorder()
        with hooks.installed(trace=rec):
            before = (hooks.registry, hooks.tracer)
            span = rec.span("dangling")
            span.__enter__()
            try:
                with pytest.raises(RuntimeError, match="unbalanced"):
                    _check_obs_invariants("bad-adapter", before)
            finally:
                span.__exit__(None, None, None)

    def test_check_passes_clean_state(self):
        _check_obs_invariants("good-adapter", (hooks.registry, hooks.tracer))

    def test_mini_fuzz_run_with_instrumented_adapters(self):
        obs_only = [name for name in ADAPTERS if name.endswith("-obs")]
        assert len(obs_only) == 3
        report = fuzz(
            FuzzConfig(
                seed=17,
                budget_seconds=4.0,
                adapters=obs_only,
                do_shrink=False,
            )
        )
        assert report.counterexamples == []
        assert report.adapters_covered >= set(obs_only)
        assert report.queries_checked > 0

    def test_mini_fuzz_under_outer_tracer_stays_balanced(self):
        # Emulates `sief fuzz --metrics-out`: an outer registry+tracer is
        # active for the whole run; the loop's per-case check must hold.
        rec = TraceRecorder(capacity=512)
        with hooks.installed(trace=rec):
            report = fuzz(
                FuzzConfig(
                    seed=23,
                    budget_seconds=2.0,
                    adapters=["sief-scalar", "sief-batch"],
                    do_shrink=False,
                )
            )
        assert report.counterexamples == []
        assert rec.balanced
