"""Shared fixtures: the paper's running example and small graph zoo."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.order.strategies import identity_order

# Figure 1 of the paper: 11 vertices.  Edges read off the drawing; with
# the identity ordering PLL reproduces Table 1 exactly (asserted in
# tests/test_paper_examples.py).
PAPER_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 8),
    (1, 4), (1, 5),
    (2, 3), (2, 5),
    (3, 6), (3, 7),
    (4, 8),
    (6, 7), (6, 8), (6, 9),
    (9, 10),
]

# Table 1 of the paper: the well-ordering 2-hop labeling of Figure 1.
PAPER_TABLE1 = {
    0: [(0, 0)],
    1: [(0, 1), (1, 0)],
    2: [(0, 1), (2, 0)],
    3: [(0, 1), (2, 1), (3, 0)],
    4: [(0, 1), (1, 1), (4, 0)],
    5: [(0, 2), (1, 1), (2, 1), (5, 0)],
    6: [(0, 2), (2, 2), (3, 1), (4, 2), (6, 0)],
    7: [(0, 2), (2, 2), (3, 1), (6, 1), (7, 0)],
    8: [(0, 1), (4, 1), (6, 1), (8, 0)],
    9: [(0, 3), (2, 3), (3, 2), (4, 3), (6, 1), (9, 0)],
    10: [(0, 4), (2, 4), (3, 3), (4, 4), (6, 2), (9, 1), (10, 0)],
}


@pytest.fixture
def paper_graph() -> Graph:
    """Figure 1's graph."""
    return Graph(11, PAPER_EDGES)


@pytest.fixture
def paper_labeling(paper_graph):
    """Table 1's labeling (PLL with identity ordering)."""
    return build_pll(paper_graph, identity_order(paper_graph))


@pytest.fixture
def path5() -> Graph:
    """Path 0-1-2-3-4."""
    return generators.path_graph(5)


@pytest.fixture
def cycle6() -> Graph:
    """Cycle on 6 vertices."""
    return generators.cycle_graph(6)


@pytest.fixture
def star7() -> Graph:
    """Star with center 0 and 6 leaves."""
    return generators.star_graph(7)


@pytest.fixture
def two_triangles() -> Graph:
    """Two triangles joined by a single bridge (3, a classic SIEF case)."""
    return Graph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])


def random_graph(seed: int, n: int = 24, m: int = 40) -> Graph:
    """Deterministic G(n, m) helper for parametrized tests."""
    return generators.erdos_renyi_gnm(n, m, seed=seed)
