"""Property-based tests (hypothesis) for the core invariants.

The central property is the paper's whole correctness claim, stated once
per layer:

* PLL: ``dist(s, t, L) == d_G(s, t)`` for every pair, any graph, any
  ordering;
* Algorithm 1: identified affected sets equal the Definition-2 oracle;
* BFS AFF ≡ BFS ALL: the two relabel strategies emit identical indexes;
* SIEF: ``engine.distance(s, t, e) == d_{G-e}(s, t)`` for every triple;
* serialization round trips preserve everything.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.graph import Graph
from repro.graph.traversal import (
    UNREACHED,
    bfs_distances,
    bfs_distances_avoiding_edge,
)
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, dist_query
from repro.labeling.serialize import labeling_from_bytes, labeling_to_bytes
from repro.order.strategies import random_order
from repro.core.affected import affected_by_definition, identify_affected
from repro.core.bfs_aff import build_supplemental_bfs_aff
from repro.core.bfs_all import build_supplemental_bfs_all
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.core.serialize import index_from_bytes, index_to_bytes


@st.composite
def graphs(draw, min_vertices=2, max_vertices=16):
    """Random simple graphs with at least one edge."""
    n = draw(st.integers(min_vertices, max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    seed = draw(st.integers(0, 2**20))
    density = draw(st.floats(0.1, 0.7))
    rng = random.Random(seed)
    edges = [e for e in possible if rng.random() < density]
    if not edges:
        edges = [possible[seed % len(possible)]]
    return Graph(n, edges)


COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(g=graphs(), order_seed=st.integers(0, 1000))
@settings(max_examples=60, **COMMON)
def test_pll_is_exact_distance_cover_under_any_ordering(g, order_seed):
    labeling = build_pll(g, random_order(g, seed=order_seed))
    assert labeling.validate() == []
    for s in range(g.num_vertices):
        truth = bfs_distances(g, s)
        for t in range(g.num_vertices):
            expected = truth[t] if truth[t] != UNREACHED else INF
            assert dist_query(labeling, s, t) == expected


@given(g=graphs())
@settings(max_examples=50, **COMMON)
def test_identify_affected_matches_definition(g):
    for u, v in g.edges():
        got = identify_affected(g, u, v)
        want_u, want_v = affected_by_definition(g, u, v)
        assert list(got.side_u) == sorted(want_u)
        assert list(got.side_v) == sorted(want_v)


@given(g=graphs(), order_seed=st.integers(0, 1000))
@settings(max_examples=40, **COMMON)
def test_bfs_aff_and_bfs_all_emit_identical_indexes(g, order_seed):
    labeling = build_pll(g, random_order(g, seed=order_seed))
    for u, v in g.edges():
        affected = identify_affected(g, u, v)
        aff = build_supplemental_bfs_aff(g, labeling, affected)
        all_ = build_supplemental_bfs_all(g, labeling, affected)
        assert aff == all_


@given(g=graphs(max_vertices=12), order_seed=st.integers(0, 1000))
@settings(max_examples=40, **COMMON)
def test_sief_queries_equal_bfs_ground_truth(g, order_seed):
    labeling = build_pll(g, random_order(g, seed=order_seed))
    index, _ = SIEFBuilder(g, labeling).build()
    engine = SIEFQueryEngine(index)
    for u, v in g.edges():
        for s in range(g.num_vertices):
            truth = bfs_distances_avoiding_edge(g, s, (u, v))
            for t in range(g.num_vertices):
                expected = truth[t] if truth[t] != UNREACHED else INF
                assert engine.distance(s, t, (u, v)) == expected


@given(g=graphs())
@settings(max_examples=40, **COMMON)
def test_labeling_binary_round_trip(g):
    labeling = build_pll(g)
    assert labeling_from_bytes(labeling_to_bytes(labeling)) == labeling


@given(g=graphs(max_vertices=10))
@settings(max_examples=25, **COMMON)
def test_sief_index_round_trip(g):
    index, _ = SIEFBuilder(g).build()
    loaded = index_from_bytes(index_to_bytes(index))
    assert loaded.labeling == index.labeling
    for edge, si in index.iter_cases():
        assert loaded.supplement(*edge) == si


@given(g=graphs())
@settings(max_examples=40, **COMMON)
def test_supplemental_entries_always_exact_distances(g):
    labeling = build_pll(g)
    vertex = labeling.ordering.vertex
    for u, v in g.edges():
        affected = identify_affected(g, u, v)
        si = build_supplemental_bfs_all(g, labeling, affected)
        for t, sl in si.iter_labels():
            truth = bfs_distances_avoiding_edge(g, t, (u, v))
            for h_rank, delta in zip(sl.ranks, sl.dists):
                assert truth[vertex(h_rank)] == delta


@given(g=graphs())
@settings(max_examples=40, **COMMON)
def test_affected_sides_are_disjoint_and_contain_endpoints(g):
    for u, v in g.edges():
        av = identify_affected(g, u, v)
        assert u in av.side_u and v in av.side_v
        assert not set(av.side_u) & set(av.side_v)
