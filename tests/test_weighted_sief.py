"""Unit tests for the weighted SIEF extension."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import FailureCaseNotIndexed
from repro.graph import generators
from repro.graph.traversal import dijkstra_distances
from repro.graph.weighted import WeightedGraph
from repro.labeling.pll_weighted import build_weighted_pll
from repro.failures.weighted import (
    build_supplemental_weighted,
    build_weighted_sief,
    close,
    identify_affected_weighted,
)
from repro.core.affected import identify_affected


def random_weighted(seed: int, n: int = 16, m: int = 28) -> WeightedGraph:
    rng = random.Random(seed)
    base = generators.erdos_renyi_gnm(n, m, seed=seed)
    wg = WeightedGraph(n)
    for u, v in base.edges():
        wg.add_edge(u, v, rng.choice([0.5, 1.0, 1.5, 2.0]))
    return wg


class TestClose:
    def test_exact_equal(self):
        assert close(1.5, 1.5)
        assert close(float("inf"), float("inf"))

    def test_tolerant(self):
        assert close(1.0, 1.0 + 1e-12)
        assert not close(1.0, 1.1)

    def test_inf_vs_finite(self):
        assert not close(float("inf"), 5.0)


class TestIdentifyWeighted:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_dijkstra_definition(self, seed):
        wg = random_weighted(seed)
        for u, v, _w in wg.edges():
            av = identify_affected_weighted(wg, u, v)
            # Oracle: distance-to-far-endpoint changed.
            dv_old = dijkstra_distances(wg, v)
            dv_new = dijkstra_distances(wg, v, avoid=(u, v))
            du_old = dijkstra_distances(wg, u)
            du_new = dijkstra_distances(wg, u, avoid=(u, v))
            want_u = sorted(
                w for w in range(wg.num_vertices)
                if not close(dv_old[w], dv_new[w])
            )
            want_v = sorted(
                w for w in range(wg.num_vertices)
                if not close(du_old[w], du_new[w])
            )
            assert list(av.side_u) == want_u, (u, v)
            assert list(av.side_v) == want_v, (u, v)

    def test_unit_weights_match_unweighted(self):
        g = generators.erdos_renyi_gnm(15, 26, seed=8)
        wg = WeightedGraph.from_unweighted(g)
        for u, v in g.edges():
            weighted = identify_affected_weighted(wg, u, v)
            unweighted = identify_affected(g, u, v)
            assert weighted.side_u == unweighted.side_u
            assert weighted.side_v == unweighted.side_v
            assert weighted.disconnected == unweighted.disconnected


class TestWeightedSIEFQueries:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_for_all_failures(self, seed):
        wg = random_weighted(seed)
        index = build_weighted_sief(wg)
        for u, v, _w in wg.edges():
            for s in range(wg.num_vertices):
                truth = dijkstra_distances(wg, s, avoid=(u, v))
                for t in range(wg.num_vertices):
                    got = index.distance(s, t, (u, v))
                    assert got == pytest.approx(truth[t]), ((u, v), s, t)

    def test_bridge_case_returns_inf(self):
        wg = WeightedGraph(4, [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 0.5)])
        index = build_weighted_sief(wg)
        assert index.distance(0, 3, (1, 2)) == float("inf")
        assert index.distance(0, 1, (1, 2)) == 2.0

    def test_missing_case_raises(self):
        wg = random_weighted(1)
        labeling = build_weighted_pll(wg)
        from repro.failures.weighted import WeightedSIEFIndex

        index = WeightedSIEFIndex(labeling)
        with pytest.raises(FailureCaseNotIndexed):
            index.distance(0, 1, (0, 1))

    def test_supplement_construction_per_edge(self):
        wg = random_weighted(2)
        labeling = build_weighted_pll(wg)
        u, v, _w = next(iter(wg.edges()))
        av = identify_affected_weighted(wg, u, v)
        si = build_supplemental_weighted(wg, labeling, av)
        assert si.edge == (u, v)
