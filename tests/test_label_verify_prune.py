"""Unit tests for labeling verification and Lemma-4 redundancy pruning."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.labeling.label import Labeling
from repro.labeling.pll import build_pll
from repro.labeling.prune import find_redundant_entries, prune_redundant
from repro.labeling.verify import (
    cover_violations,
    hub_is_on_shortest_path,
    is_distance_cover,
    is_well_ordered,
    verify_labeling,
)
from repro.order.ordering import VertexOrdering
from repro.order.strategies import identity_order


class TestVerify:
    def test_good_labeling_passes(self, paper_graph, paper_labeling):
        assert is_well_ordered(paper_labeling)
        assert is_distance_cover(paper_labeling, paper_graph)

    def test_missing_entry_detected(self, paper_graph, paper_labeling):
        broken = paper_labeling.copy()
        broken.hub_ranks[10] = broken.hub_ranks[10][1:]
        broken.hub_dists[10] = broken.hub_dists[10][1:]
        violations = cover_violations(broken, paper_graph)
        assert violations
        assert not is_distance_cover(broken, paper_graph)

    def test_wrong_distance_detected(self, paper_graph, paper_labeling):
        broken = paper_labeling.copy()
        broken.hub_dists[10] = list(broken.hub_dists[10])
        broken.hub_dists[10][0] += 1  # (0, 4) -> (0, 5)
        assert cover_violations(broken, paper_graph)

    def test_verify_labeling_raises_with_description(
        self, paper_graph, paper_labeling
    ):
        broken = paper_labeling.copy()
        broken.hub_ranks[9] = []
        broken.hub_dists[9] = []
        with pytest.raises(AssertionError, match="not a distance cover"):
            verify_labeling(broken, paper_graph)

    def test_structural_violation_raises(self, paper_graph, paper_labeling):
        broken = paper_labeling.copy()
        broken.hub_ranks[1] = [5]  # hub ranked above vertex 1
        broken.hub_dists[1] = [1]
        with pytest.raises(AssertionError, match="structurally invalid"):
            verify_labeling(broken, paper_graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_minimizing_hub_lies_on_shortest_path(self, seed):
        """Lemma 2/3 behavior on random graphs."""
        g = generators.erdos_renyi_gnm(20, 35, seed=seed)
        labeling = build_pll(g)
        for s in range(0, 20, 3):
            for t in range(0, 20, 4):
                assert hub_is_on_shortest_path(labeling, g, s, t)


class TestPrune:
    def test_pll_output_has_no_redundancy(self, paper_labeling):
        assert find_redundant_entries(paper_labeling) == []

    def test_injected_redundant_entry_found_and_removed(self, paper_graph):
        labeling = build_pll(paper_graph, identity_order(paper_graph))
        # Inject the paper's example: (3, 2) into L(5).
        ranks = labeling.hub_ranks[5]
        dists = labeling.hub_dists[5]
        pos = next(i for i, r in enumerate(ranks) if r > 3)
        ranks.insert(pos, 3)
        dists.insert(pos, 2)
        assert (5, 3, 2) in find_redundant_entries(labeling)

        pruned, removed = prune_redundant(labeling)
        assert removed == 1
        verify_labeling(pruned, paper_graph)
        assert 3 not in [h for h in pruned.hub_ranks[5]]

    @pytest.mark.parametrize("seed", range(5))
    def test_pruning_never_breaks_cover(self, seed):
        g = generators.erdos_renyi_gnm(18, 30, seed=seed)
        labeling = build_pll(g)
        pruned, removed = prune_redundant(labeling)
        assert removed >= 0
        verify_labeling(pruned, g)

    def test_self_entries_never_pruned(self, paper_graph):
        labeling = build_pll(paper_graph)
        pruned, _ = prune_redundant(labeling)
        for v in range(11):
            rank_v = pruned.ordering.rank(v)
            assert rank_v in pruned.hub_ranks[v]

    def test_full_apsp_labeling_gets_pruned(self):
        """An all-pairs 'labeling' (every vertex in every label) has many
        Lemma-4 redundancies; pruning shrinks it while keeping exactness."""
        g = generators.cycle_graph(8)
        ordering = identity_order(g)
        from repro.graph.traversal import bfs_distances

        hub_ranks = []
        hub_dists = []
        for v in range(8):
            dist = bfs_distances(g, v)
            ranks = list(range(v + 1))  # hubs 0..v keep well-ordering
            hub_ranks.append(ranks)
            hub_dists.append([dist[h] for h in ranks])
        full = Labeling(ordering, hub_ranks, hub_dists)
        verify_labeling(full, g)
        pruned, removed = prune_redundant(full)
        assert removed > 0
        assert pruned.total_entries() < full.total_entries()
        verify_labeling(pruned, g)
