"""Cache-metric coverage for :class:`LazySIEFIndex` (obs satellite).

Covers the full cache lifecycle — first-query build (miss), repeat query
(hit), ``insert_edge`` invalidation, ``commit_failure`` rebuild — and
replays the graph shapes archived in ``tests/corpus/`` (which include
awkward fuzz-found topologies) plus an explicitly disconnected graph,
asserting the counters track reality and the answers never depend on
whether a registry is installed.
"""

from __future__ import annotations

import pytest

from repro.core.lazy import LazySIEFIndex
from repro.graph import generators
from repro.graph.graph import Graph
from repro.obs import hooks, installed
from repro.testing.corpus import iter_corpus

CORPUS_DIR = "tests/corpus"


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    before = (hooks.registry, hooks.tracer)
    yield
    assert (hooks.registry, hooks.tracer) == before


def _graph():
    return generators.erdos_renyi_gnm(18, 30, seed=21)


def _an_edge(graph):
    return next(iter(sorted(graph.edges())))


class TestCacheCounters:
    def test_first_query_is_miss_then_hits(self):
        graph = _graph()
        edge = _an_edge(graph)
        with installed() as reg:
            lazy = LazySIEFIndex(graph)
            lazy.distance(0, 5, edge)
            assert reg.counter_value("sief.lazy.cache_misses") == 1
            assert reg.counter_value("sief.lazy.cache_hits") == 0
            lazy.distance(1, 6, edge)
            lazy.distance(2, 7, edge)
            assert reg.counter_value("sief.lazy.cache_misses") == 1
            assert reg.counter_value("sief.lazy.cache_hits") == 2
            assert reg.gauge("sief.lazy.cached_cases").value == 1
        # Metrics agree with the index's own bookkeeping.
        assert lazy.cases_built == 1
        assert lazy.cache_hits == 2

    def test_each_distinct_edge_is_its_own_miss(self):
        graph = _graph()
        edges = sorted(graph.edges())[:3]
        with installed() as reg:
            lazy = LazySIEFIndex(graph)
            for e in edges:
                lazy.distance(0, 9, e)
            assert reg.counter_value("sief.lazy.cache_misses") == 3
            assert reg.gauge("sief.lazy.cached_cases").value == 3
            assert (
                reg.counter_value("sief.build.cases") == 3
            )  # lazy builds feed the shared build counters too

    def test_insert_edge_invalidates_cached_cases(self):
        graph = _graph()
        edges = sorted(graph.edges())[:2]
        with installed() as reg:
            lazy = LazySIEFIndex(graph)
            for e in edges:
                lazy.distance(0, 9, e)
            lazy.insert_edge(0, 17)
            assert reg.counter_value("sief.lazy.insertions") == 1
            assert reg.counter_value("sief.lazy.invalidations") == 1
            assert reg.counter_value("sief.lazy.invalidated_cases") == 2
            assert reg.gauge("sief.lazy.cached_cases").value == 0
            # Next query on a previously cached edge must rebuild.
            lazy.distance(0, 9, edges[0])
            assert reg.counter_value("sief.lazy.cache_misses") == 3

    def test_commit_failure_counts_rebuild_and_drops(self):
        graph = _graph()
        edges = sorted(graph.edges())
        with installed() as reg:
            lazy = LazySIEFIndex(graph)
            lazy.distance(0, 9, edges[0])
            lazy.distance(0, 9, edges[1])
            lazy.commit_failure(*edges[0])
            assert reg.counter_value("sief.lazy.rebuilds") == 1
            assert reg.counter_value("sief.lazy.invalidated_cases") == 2
            assert reg.gauge("sief.lazy.cached_cases").value == 0
        assert not lazy.graph.has_edge(*edges[0])
        assert lazy.cases_built == 0

    def test_invalidation_with_empty_cache_counts_no_cases(self):
        graph = _graph()
        with installed() as reg:
            lazy = LazySIEFIndex(graph)
            lazy.insert_edge(0, 17)
            assert reg.counter_value("sief.lazy.invalidations") == 1
            assert reg.counter_value("sief.lazy.invalidated_cases") == 0


class TestAnswersUnchanged:
    def test_lifecycle_answers_match_metrics_off(self):
        pairs = [(s, t) for s in range(6) for t in range(12, 18)]

        def lifecycle():
            graph = _graph()
            lazy = LazySIEFIndex(graph)
            edges = sorted(graph.edges())[:2]
            out = []
            for e in edges:
                out.extend(lazy.distance(s, t, e) for s, t in pairs)
            lazy.insert_edge(0, 17)
            out.extend(lazy.distance(s, t, edges[0]) for s, t in pairs)
            lazy.commit_failure(*edges[1])
            remaining = sorted(lazy.graph.edges())[0]
            out.extend(lazy.distance(s, t, remaining) for s, t in pairs)
            return out

        with hooks.disabled():
            plain = lifecycle()
        with installed():
            instrumented = lifecycle()
        assert plain == instrumented


class TestCorpusShapes:
    """Replay archived fuzz-found graph shapes through the lazy cache."""

    def _cases(self):
        found = list(iter_corpus(CORPUS_DIR))
        assert found, f"corpus at {CORPUS_DIR} is empty"
        for path, cx in found:
            graph = Graph(cx.num_vertices, [tuple(e) for e in cx.edges])
            yield path.name, graph, cx

    def test_corpus_shapes_hit_miss_and_match_plain(self):
        for name, graph, cx in self._cases():
            kind = cx.failure[0]
            if kind != "edge":
                continue
            edge = (cx.failure[1], cx.failure[2])
            with hooks.disabled():
                plain = LazySIEFIndex(
                    Graph(cx.num_vertices, [tuple(e) for e in cx.edges])
                ).distance(cx.s, cx.t, edge)
            with installed() as reg:
                lazy = LazySIEFIndex(graph)
                first = lazy.distance(cx.s, cx.t, edge)
                second = lazy.distance(cx.s, cx.t, edge)
            assert first == second == plain, f"answer drift on corpus {name}"
            assert reg.counter_value("sief.lazy.cache_misses") == 1, name
            assert reg.counter_value("sief.lazy.cache_hits") == 1, name

    def test_disconnected_graph_shape(self):
        # Disconnected worlds exercise the unreachable (inf) paths the
        # corpus families fuzz; cache metrics must behave identically.
        graph = generators.compose_disjoint(
            [generators.path_graph(5), generators.cycle_graph(4)]
        )
        edge = (0, 1)  # inside the path component
        with installed() as reg:
            lazy = LazySIEFIndex(graph)
            same_side = lazy.distance(0, 4, edge)
            cross = lazy.distance(0, 6, edge)  # other component: inf
            assert cross == float("inf")
            assert reg.counter_value("sief.lazy.cache_misses") == 1
            assert reg.counter_value("sief.lazy.cache_hits") == 1
        with hooks.disabled():
            plain = LazySIEFIndex(
                generators.compose_disjoint(
                    [generators.path_graph(5), generators.cycle_graph(4)]
                )
            ).distance(0, 4, edge)
        assert same_side == plain
