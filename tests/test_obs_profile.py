"""Span-attributed sampling profiler tests (all deterministic).

``sample_once`` with an explicit stack is the test seam: no assertion
here depends on thread scheduling or a wall clock.
"""

from __future__ import annotations

import pytest

from repro.obs import SpanProfiler, TraceRecorder
from repro.obs.profile import IDLE_STACK


class FakeClock:
    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


def _profiler(interval: float = 0.01) -> SpanProfiler:
    return SpanProfiler(
        TraceRecorder(clock=FakeClock()), interval=interval, clock=FakeClock()
    )


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        _profiler(interval=0)


def test_sample_once_reads_tracer_open_stack():
    rec = TraceRecorder(clock=FakeClock())
    prof = SpanProfiler(rec, clock=FakeClock())
    with rec.span("sief.build"):
        with rec.span("sief.build.case"):
            stack = prof.sample_once()
    assert stack == ("sief.build", "sief.build.case")
    assert prof.counts[stack] == 1
    assert prof.total_samples == 1


def test_empty_stack_attributes_to_idle():
    prof = _profiler()
    assert prof.sample_once() == IDLE_STACK
    assert prof.counts[IDLE_STACK] == 1


def test_folded_output_format():
    prof = _profiler()
    for _ in range(3):
        prof.sample_once(("a", "b"))
    prof.sample_once(("a",))
    assert prof.folded() == "a 1\na;b 3\n"


def test_folded_empty_is_empty_string():
    assert _profiler().folded() == ""


def test_rollup_inclusive_vs_exclusive():
    prof = _profiler(interval=0.01)
    for _ in range(4):
        prof.sample_once(("build", "case"))
    for _ in range(6):
        prof.sample_once(("build",))
    rows = {r.name: r for r in prof.rollup()}
    assert rows["build"].inclusive_samples == 10
    assert rows["build"].exclusive_samples == 6
    assert rows["case"].inclusive_samples == 4
    assert rows["case"].exclusive_samples == 4
    assert rows["build"].inclusive_seconds == pytest.approx(0.1)
    assert rows["case"].exclusive_seconds == pytest.approx(0.04)
    # heaviest-inclusive first
    assert [r.name for r in prof.rollup()] == ["build", "case"]


def test_rollup_recursive_stack_counts_span_once():
    prof = _profiler()
    prof.sample_once(("a", "a"))
    (row,) = prof.rollup()
    assert row.inclusive_samples == 1  # not 2


def test_merge_folds_worker_counts_like_registry_snapshots():
    parent = _profiler()
    parent.sample_once(("build",))
    worker_counts = {("build",): 2, ("build", "case"): 5}
    parent.merge(worker_counts)
    assert parent.counts[("build",)] == 3
    assert parent.counts[("build", "case")] == 5
    assert parent.total_samples == 8


def test_merge_accepts_list_keys_from_pickled_payloads():
    parent = _profiler()
    parent.merge({("a", "b"): 1})
    parent.merge({("a", "b"): 1})
    assert parent.counts[("a", "b")] == 2


def test_samples_carry_injected_clock_timestamps():
    prof = _profiler()
    prof.sample_once(("a",))
    prof.sample_once(("a",))
    assert [ts for ts, _ in prof.samples] == [0.0, 1.0]


def test_report_renders_table():
    prof = _profiler()
    prof.sample_once(("build",))
    report = prof.report()
    assert "incl%" in report and "build" in report
    assert _profiler().report() == "(no samples)"


def test_thread_start_stop_smoke():
    rec = TraceRecorder()
    prof = SpanProfiler(rec, interval=0.001)
    assert not prof.running
    with prof:
        assert prof.running
        with rec.span("smoke"):
            deadline = 2000
            while prof.total_samples == 0 and deadline:
                deadline -= 1
                import time

                time.sleep(0.001)
    assert not prof.running
    prof.stop()  # idempotent
