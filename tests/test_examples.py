"""Smoke tests: the shipped examples and the README snippet must run.

Examples double as integration tests (several assert against BFS ground
truth internally); running the fast ones here keeps them from rotting.
The heavyweight ones (full dataset builds) are exercised by the
benchmark suite instead.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "d(G - (0, 8); 2, 8) = 3" in out
    assert "SL(8) = [(0, 2)]" in out


def test_road_pricing(capsys):
    out = _run("road_pricing.py", capsys)
    assert "bridges carry the highest Vickrey prices" in out


def test_evolving_network(capsys):
    out = _run("evolving_network.py", capsys)
    assert "failure queries verified against BFS" in out


def test_readme_quickstart_snippet():
    """The code block in README.md's Quickstart, executed literally."""
    from repro import Graph, SIEFBuilder, SIEFQueryEngine

    g = Graph(
        11,
        [
            (0, 1), (0, 2), (0, 3), (0, 4), (0, 8), (1, 4), (1, 5),
            (2, 3), (2, 5), (3, 6), (3, 7), (4, 8), (6, 7), (6, 8),
            (6, 9), (9, 10),
        ],
    )
    index, _report = SIEFBuilder(g).build()
    engine = SIEFQueryEngine(index)
    assert engine.distance(2, 8, failed_edge=(0, 8)) == 3
    from repro.labeling.query import INF

    assert engine.distance(0, 10, failed_edge=(6, 9)) == INF


def test_package_docstring_snippet():
    """The ring example in repro.__doc__."""
    from repro import Graph, SIEFBuilder, SIEFQueryEngine

    g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    index, _report = SIEFBuilder(g).build()
    engine = SIEFQueryEngine(index)
    assert engine.distance(0, 2, failed_edge=(1, 2)) == 2


@pytest.mark.parametrize(
    "name",
    ["most_vital_arc.py", "iot_resilience.py"],
)
def test_heavy_examples_importable(name):
    """The dataset-scale examples must at least parse and expose main()."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        name.removesuffix(".py"), EXAMPLES / name
    )
    module = importlib.util.module_from_spec(spec)
    # Execute the module body only if it guards __main__ (they all do) —
    # loading must not kick off a multi-second build.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert callable(module.main)
    finally:
        sys.modules.pop(spec.name, None)
