"""Unit tests for the directed (in/out label) PLL extension."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import LabelingError
from repro.graph.digraph import DiGraph
from repro.labeling.pll_directed import build_directed_pll
from repro.labeling.query import INF, dist_query_directed
from repro.order.ordering import VertexOrdering


def random_digraph(seed: int, n: int = 18, arcs: int = 50) -> DiGraph:
    rng = random.Random(seed)
    g = DiGraph(n)
    while g.num_arcs < arcs:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_arc(u, v):
            g.add_arc(u, v)
    return g


def directed_bfs(g: DiGraph, s: int):
    from collections import deque

    dist = [INF] * g.num_vertices
    dist[s] = 0
    q = deque((s,))
    while q:
        v = q.popleft()
        for w in g.successors(v):
            if dist[w] == INF:
                dist[w] = dist[v] + 1
                q.append(w)
    return dist


@pytest.mark.parametrize("seed", range(8))
def test_exact_on_random_digraphs(seed):
    g = random_digraph(seed)
    labeling = build_directed_pll(g)
    for s in range(g.num_vertices):
        truth = directed_bfs(g, s)
        for t in range(g.num_vertices):
            got = labeling.query(s, t)
            assert got == truth[t], (s, t)


def test_asymmetry_preserved():
    g = DiGraph(3, [(0, 1), (1, 2)])
    labeling = build_directed_pll(g)
    assert labeling.query(0, 2) == 2
    assert labeling.query(2, 0) == INF


def test_query_helper_matches_method():
    g = random_digraph(3)
    labeling = build_directed_pll(g)
    for s in range(0, g.num_vertices, 3):
        for t in range(0, g.num_vertices, 2):
            assert labeling.query(s, t) == dist_query_directed(labeling, s, t)


def test_cycle_digraph():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    labeling = build_directed_pll(g)
    assert labeling.query(0, 3) == 3
    assert labeling.query(3, 0) == 1


def test_total_entries_positive():
    g = random_digraph(5)
    assert build_directed_pll(g).total_entries() >= g.num_vertices


def test_ordering_size_mismatch():
    g = DiGraph(3, [(0, 1)])
    with pytest.raises(LabelingError):
        build_directed_pll(g, VertexOrdering([0, 1]))
