"""End-to-end tests for the ``sief`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.io import write_edge_list
from repro.graph import generators


@pytest.fixture
def graph_file(tmp_path):
    g = generators.erdos_renyi_gnm(15, 26, seed=30)
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    return path, g


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["generate", "--dataset", "ca_grqc", "-o", "x"])
    assert args.command == "generate"


def test_generate_list(capsys):
    assert main(["generate", "--list"]) == 0
    out = capsys.readouterr().out
    assert "gnutella" in out and "ca_grqc" in out


def test_generate_writes_file(tmp_path, capsys):
    out_file = tmp_path / "g.txt"
    assert main(["generate", "--dataset", "ca_grqc", "-o", str(out_file)]) == 0
    assert out_file.exists()
    assert "ca_grqc" in capsys.readouterr().out


def test_build_query_stats_pipeline(graph_file, tmp_path, capsys):
    path, _original = graph_file
    # The CLI densifies ids by first-seen order; work in that id space.
    from repro.graph.io import read_edge_list

    g, _names = read_edge_list(path)
    index_file = tmp_path / "g.sief"
    assert main(["build", str(path), "-o", str(index_file)]) == 0
    assert index_file.exists()
    build_out = capsys.readouterr().out
    assert "failure cases" in build_out

    u, v = next(iter(g.edges()))
    rc = main(
        [
            "query",
            str(index_file),
            "--fail", str(u), str(v),
            "--pair", "0", str(g.num_vertices - 1),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "d(G -" in out and "[case" in out

    assert main(["stats", str(index_file)]) == 0
    stats_out = capsys.readouterr().out
    assert "failure cases" in stats_out
    assert "SLEN / OLEN" in stats_out


def test_build_with_bfs_aff(graph_file, tmp_path, capsys):
    path, _ = graph_file
    index_file = tmp_path / "aff.sief"
    rc = main(
        ["build", str(path), "-o", str(index_file), "--algorithm", "bfs_aff"]
    )
    assert rc == 0
    assert "bfs_aff" in capsys.readouterr().out


def test_validate_good_file(graph_file, capsys):
    path, _ = graph_file
    assert main(["validate", str(path)]) == 0
    assert "ok:" in capsys.readouterr().out


def test_query_consistency_with_library(graph_file, tmp_path):
    from repro.baselines.bfs_query import BFSQueryBaseline
    from repro.core.serialize import load_index
    from repro.core.query import SIEFQueryEngine
    from repro.graph.io import read_edge_list

    path, _original = graph_file
    # Compare in the CLI's (densified) id space.
    g, _names = read_edge_list(path)
    index_file = tmp_path / "g.sief"
    main(["build", str(path), "-o", str(index_file)])
    engine = SIEFQueryEngine(load_index(index_file))
    baseline = BFSQueryBaseline(g)
    n = g.num_vertices
    for u, v in list(g.edges())[:5]:
        for s in range(0, n, 2):
            for t in range(0, n, 3):
                assert engine.distance(s, t, (u, v)) == baseline.distance(
                    s, t, (u, v)
                )


def test_path_command(graph_file, tmp_path, capsys):
    from repro.graph.io import read_edge_list

    path, _original = graph_file
    g, _names = read_edge_list(path)
    index_file = tmp_path / "g.sief"
    main(["build", str(path), "-o", str(index_file)])
    capsys.readouterr()
    u, v = next(iter(g.edges()))
    rc = main(
        [
            "path", str(path), str(index_file),
            "--fail", str(u), str(v),
            "--pair", "0", str(g.num_vertices - 1),
        ]
    )
    out = capsys.readouterr().out
    if rc == 0:
        assert " -> " in out or out.startswith("0\n")
        assert "avoiding edge" in out
    else:
        assert "no path" in out


def test_impact_command(graph_file, tmp_path, capsys):
    path, _ = graph_file
    index_file = tmp_path / "g.sief"
    main(["build", str(path), "-o", str(index_file)])
    capsys.readouterr()
    rc = main(["impact", str(index_file), "--top", "3", "--queries", "50"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worst 3 failure cases" in out
    assert "resilience over 50" in out


def test_error_reported_as_exit_code_2(tmp_path, capsys):
    missing = tmp_path / "missing.sief"
    missing.write_bytes(b"garbage!")
    rc = main(["query", str(missing), "--fail", "0", "1", "--pair", "0", "1"])
    assert rc == 2
    assert "error:" in capsys.readouterr().err
