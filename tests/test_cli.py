"""End-to-end tests for the ``sief`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.io import write_edge_list
from repro.graph import generators


@pytest.fixture
def graph_file(tmp_path):
    g = generators.erdos_renyi_gnm(15, 26, seed=30)
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    return path, g


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["generate", "--dataset", "ca_grqc", "-o", "x"])
    assert args.command == "generate"


def test_generate_list(capsys):
    assert main(["generate", "--list"]) == 0
    out = capsys.readouterr().out
    assert "gnutella" in out and "ca_grqc" in out


def test_generate_writes_file(tmp_path, capsys):
    out_file = tmp_path / "g.txt"
    assert main(["generate", "--dataset", "ca_grqc", "-o", str(out_file)]) == 0
    assert out_file.exists()
    assert "ca_grqc" in capsys.readouterr().out


def test_build_query_stats_pipeline(graph_file, tmp_path, capsys):
    path, _original = graph_file
    # The CLI densifies ids by first-seen order; work in that id space.
    from repro.graph.io import read_edge_list

    g, _names = read_edge_list(path)
    index_file = tmp_path / "g.sief"
    assert main(["build", str(path), "-o", str(index_file)]) == 0
    assert index_file.exists()
    build_out = capsys.readouterr().out
    assert "failure cases" in build_out

    u, v = next(iter(g.edges()))
    rc = main(
        [
            "query",
            str(index_file),
            "--fail", str(u), str(v),
            "--pair", "0", str(g.num_vertices - 1),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "d(G -" in out and "[case" in out

    assert main(["stats", str(index_file)]) == 0
    stats_out = capsys.readouterr().out
    assert "failure cases" in stats_out
    assert "SLEN / OLEN" in stats_out


def test_build_with_bfs_aff(graph_file, tmp_path, capsys):
    path, _ = graph_file
    index_file = tmp_path / "aff.sief"
    rc = main(
        ["build", str(path), "-o", str(index_file), "--algorithm", "bfs_aff"]
    )
    assert rc == 0
    assert "bfs_aff" in capsys.readouterr().out


def test_validate_good_file(graph_file, capsys):
    path, _ = graph_file
    assert main(["validate", str(path)]) == 0
    assert "ok:" in capsys.readouterr().out


def test_query_consistency_with_library(graph_file, tmp_path):
    from repro.baselines.bfs_query import BFSQueryBaseline
    from repro.core.serialize import load_index
    from repro.core.query import SIEFQueryEngine
    from repro.graph.io import read_edge_list

    path, _original = graph_file
    # Compare in the CLI's (densified) id space.
    g, _names = read_edge_list(path)
    index_file = tmp_path / "g.sief"
    main(["build", str(path), "-o", str(index_file)])
    engine = SIEFQueryEngine(load_index(index_file))
    baseline = BFSQueryBaseline(g)
    n = g.num_vertices
    for u, v in list(g.edges())[:5]:
        for s in range(0, n, 2):
            for t in range(0, n, 3):
                assert engine.distance(s, t, (u, v)) == baseline.distance(
                    s, t, (u, v)
                )


def test_path_command(graph_file, tmp_path, capsys):
    from repro.graph.io import read_edge_list

    path, _original = graph_file
    g, _names = read_edge_list(path)
    index_file = tmp_path / "g.sief"
    main(["build", str(path), "-o", str(index_file)])
    capsys.readouterr()
    u, v = next(iter(g.edges()))
    rc = main(
        [
            "path", str(path), str(index_file),
            "--fail", str(u), str(v),
            "--pair", "0", str(g.num_vertices - 1),
        ]
    )
    out = capsys.readouterr().out
    if rc == 0:
        assert " -> " in out or out.startswith("0\n")
        assert "avoiding edge" in out
    else:
        assert "no path" in out


def test_impact_command(graph_file, tmp_path, capsys):
    path, _ = graph_file
    index_file = tmp_path / "g.sief"
    main(["build", str(path), "-o", str(index_file)])
    capsys.readouterr()
    rc = main(["impact", str(index_file), "--top", "3", "--queries", "50"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worst 3 failure cases" in out
    assert "resilience over 50" in out


class TestVerifyCommand:
    def _build(self, graph_file, tmp_path):
        path, _ = graph_file
        index_file = tmp_path / "g.sief"
        assert main(["build", str(path), "-o", str(index_file)]) == 0
        return path, index_file

    def test_verify_ok_all_levels(self, graph_file, tmp_path, capsys):
        path, index_file = self._build(graph_file, tmp_path)
        capsys.readouterr()
        rc = main(["verify", str(path), str(index_file), "--sample", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ok: levels structural, affected, queries passed" in out

    def test_verify_single_level(self, graph_file, tmp_path, capsys):
        path, index_file = self._build(graph_file, tmp_path)
        capsys.readouterr()
        rc = main(
            ["verify", str(path), str(index_file), "--level", "structural"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ok: levels structural passed" in out

    def test_verify_mismatched_graph_exits_nonzero(
        self, graph_file, tmp_path, capsys
    ):
        """An index verified against the wrong graph must fail loudly."""
        path, index_file = self._build(graph_file, tmp_path)
        other = generators.erdos_renyi_gnm(15, 32, seed=99)
        other_path = tmp_path / "other.txt"
        write_edge_list(other, other_path)
        capsys.readouterr()
        rc = main(["verify", str(other_path), str(index_file), "--sample", "5"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "PROBLEM:" in out
        assert "problem(s)" in out


class TestFuzzCommand:
    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["fuzz"])
        assert args.seed == 0
        assert args.budget == "30s"
        assert args.corpus == "tests/corpus"

    def test_clean_fuzz_run_exits_zero(self, capsys):
        rc = main(
            [
                "fuzz",
                "--seed", "3",
                "--budget", "2s",
                "--adapter", "sief-scalar",
                "--generator", "tree",
                "--no-corpus",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "no mismatches found" in out
        assert "engines:    1 (sief-scalar)" in out

    def test_clean_run_writes_no_corpus_files(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        rc = main(
            [
                "fuzz",
                "--seed", "3",
                "--budget", "1s",
                "--adapter", "bfs-baseline",
                "--generator", "er",
                "--corpus", str(corpus),
            ]
        )
        assert rc == 0
        assert not list(corpus.glob("*.json")) if corpus.exists() else True

    def test_unknown_adapter_is_a_clean_error(self, capsys):
        rc = main(["fuzz", "--budget", "1s", "--adapter", "nope"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestOutOfCore:
    def test_build_spill_writes_segment_store(self, graph_file, tmp_path, capsys):
        from repro.core.index import SIEFIndex
        from repro.core.serialize import index_to_bytes

        path, g = graph_file
        store = tmp_path / "store.siefseg"
        rc = main(
            ["build", str(path), "--batched", "--spill", str(store),
             "--shards", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 shards" in out
        assert (store / "segments.bin").exists()
        # The spilled store rebuilds bit-identically to an in-RAM build.
        index_file = tmp_path / "ref.sief"
        main(["build", str(path), "--batched", "-o", str(index_file)])
        assert index_to_bytes(SIEFIndex.load(store)) == index_to_bytes(
            SIEFIndex.load(index_file)
        )

    def test_freeze_converts_index_to_segment_store(
        self, graph_file, tmp_path, capsys
    ):
        from repro.core.index import SIEFIndex
        from repro.core.serialize import index_to_bytes

        path, _g = graph_file
        index_file = tmp_path / "idx.sief"
        main(["build", str(path), "--batched", "-o", str(index_file)])
        store = tmp_path / "conv.siefseg"
        rc = main(["freeze", str(index_file), "--output", str(store)])
        assert rc == 0
        assert "segment store written" in capsys.readouterr().out
        assert index_to_bytes(SIEFIndex.load(store)) == index_to_bytes(
            SIEFIndex.load(index_file)
        )


def test_error_reported_as_exit_code_2(tmp_path, capsys):
    missing = tmp_path / "missing.sief"
    missing.write_bytes(b"garbage!")
    rc = main(["query", str(missing), "--fail", "0", "1", "--pair", "0", "1"])
    assert rc == 2
    assert "error:" in capsys.readouterr().err
