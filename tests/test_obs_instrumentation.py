"""Integration tests: the hooks seam and the instrumented hot paths.

These tests pin the two invariants the observability layer promises:

1. **Numbers are right** — counters agree with the ground truth the
   code already reports elsewhere (``BuildReport``, labeling stats,
   query counts).
2. **Answers don't change** — every query path returns bit-identical
   results with a registry installed and without one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.query import batch_dist_query, dist_query
from repro.labeling.stats import labeling_stats
from repro.obs import MetricsRegistry, TraceRecorder, hooks, installed


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    """Every test must leave the global seam the way it found it."""
    before = (hooks.registry, hooks.tracer)
    yield
    assert (hooks.registry, hooks.tracer) == before, "test leaked hooks state"


@pytest.fixture
def graph():
    return generators.erdos_renyi_gnm(24, 40, seed=11)


class TestHooksSeam:
    def test_install_uninstall(self):
        assert hooks.registry is None
        reg, trace = hooks.install()
        assert hooks.registry is reg and isinstance(reg, MetricsRegistry)
        assert hooks.tracer is None and trace is None
        hooks.uninstall()
        assert hooks.registry is None

    def test_installed_restores_previous_pair(self):
        outer = MetricsRegistry()
        hooks.install(outer)
        try:
            with installed() as inner:
                assert hooks.registry is inner
                assert inner is not outer
            assert hooks.registry is outer
        finally:
            hooks.uninstall()

    def test_installed_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with installed():
                raise RuntimeError("boom")
        assert hooks.registry is None

    def test_disabled_masks_and_restores(self):
        reg = MetricsRegistry()
        hooks.install(reg)
        try:
            with hooks.disabled():
                assert hooks.registry is None
            assert hooks.registry is reg
        finally:
            hooks.uninstall()

    def test_span_is_noop_without_tracer(self):
        assert hooks.tracer is None
        s1 = hooks.span("x")
        s2 = hooks.span("y")
        assert s1 is s2  # the shared null span: zero allocation when off
        with s1:
            pass

    def test_span_records_with_tracer(self):
        rec = TraceRecorder()
        with installed(trace=rec):
            with hooks.span("x"):
                pass
        assert [r.name for r in rec.records()] == ["x"]


class TestPLLInstrumentation:
    def test_build_metrics_match_labeling_stats(self, graph):
        with installed() as reg:
            labeling = build_pll(graph)
        stats = labeling_stats(labeling)
        assert reg.counter_value("pll.build.bfs") == 1
        assert reg.counter_value("pll.build.label_entries") == stats.total_entries
        assert reg.gauge("pll.last_build.label_entries").value == stats.total_entries
        assert reg.gauge("pll.last_build.vertices").value == graph.num_vertices
        assert reg.histogram("pll.label_size").count == graph.num_vertices
        assert reg.histogram("pll.build.seconds").count == 1

    def test_build_span_emitted(self, graph):
        rec = TraceRecorder()
        with installed(trace=rec):
            build_pll(graph)
        assert "pll.build" in [r.name for r in rec.records()]
        assert rec.balanced

    def test_same_labeling_with_and_without_registry(self, graph):
        plain = build_pll(graph)
        with installed():
            instrumented = build_pll(graph)
        for v in range(graph.num_vertices):
            assert plain.hubs(v) == instrumented.hubs(v)


class TestSIEFBuildInstrumentation:
    def test_counters_match_build_report(self, graph):
        with installed() as reg:
            index, report = SIEFBuilder(graph, build_pll(graph)).build()
        assert reg.counter_value("sief.build.cases") == report.num_cases
        assert (
            reg.counter_value("sief.build.relabel_invocations")
            == report.num_cases
        )
        assert reg.counter_value("sief.build.affected_vertices") == sum(
            r.affected_total for r in report.records
        )
        assert reg.counter_value("sief.build.supplemental_entries") == sum(
            r.supplemental_entries for r in report.records
        )
        assert (
            reg.counter_value("sief.build.relabel_expanded")
            == report.relabel_expanded
        )
        assert (
            reg.histogram("sief.build.affected_per_case").count
            == report.num_cases
        )

    def test_build_spans_balanced(self, graph):
        rec = TraceRecorder()
        with installed(trace=rec):
            SIEFBuilder(graph, build_pll(graph)).build()
        assert rec.balanced
        assert "sief.build" in [r.name for r in rec.records()]


class TestQueryInstrumentation:
    @pytest.fixture
    def engine(self, graph):
        labeling = build_pll(graph)
        index, _ = SIEFBuilder(graph, labeling).build()
        return SIEFQueryEngine(index), graph

    def test_scalar_query_counts_and_answers(self, engine):
        eng, graph = engine
        edge = next(iter(sorted(graph.edges())))
        pairs = [(s, t) for s in range(6) for t in range(6)]
        plain = [eng.distance(s, t, edge) for s, t in pairs]
        with installed() as reg:
            instrumented = [eng.distance(s, t, edge) for s, t in pairs]
        assert plain == instrumented
        assert reg.counter_value("sief.query.scalar") == len(pairs)
        assert reg.histogram("sief.query.scalar_seconds").count == len(pairs)

    def test_batch_query_counts_and_answers(self, engine):
        eng, graph = engine
        edge = next(iter(sorted(graph.edges())))
        n = graph.num_vertices
        rng = np.random.default_rng(5)
        pairs = rng.integers(0, n, size=(64, 2))
        plain = eng.batch_query(edge, pairs)
        rec = TraceRecorder()
        with installed(trace=rec) as reg:
            instrumented = eng.batch_query(edge, pairs)
        assert np.array_equal(plain, instrumented)
        assert reg.counter_value("sief.query.batch_calls") == 1
        assert reg.counter_value("sief.query.batch_pairs") == len(pairs)
        assert reg.histogram("sief.query.batch_size").count == 1
        assert rec.balanced
        assert "sief.query.batch" in [r.name for r in rec.records()]

    def test_case_classification_counters(self, engine):
        eng, graph = engine
        edge = next(iter(sorted(graph.edges())))
        with installed() as reg:
            for s in range(8):
                for t in range(8):
                    eng.distance_with_case(s, t, edge)
        case_total = sum(
            v
            for name, v in reg.snapshot()["counters"].items()
            if name.startswith("sief.query.case.")
        )
        assert case_total == 64

    def test_label_query_hub_scan_recorded(self, graph):
        labeling = build_pll(graph)
        frozen = labeling.copy().freeze()
        with installed() as reg:
            d_list = dist_query(labeling, 0, 5)
            d_flat = dist_query(frozen, 0, 5)
        assert d_list == d_flat
        assert reg.counter_value("label.query.scalar") == 2
        assert reg.histogram("label.query.hub_scan").count == 2

    def test_label_batch_query_metrics_and_answers(self, graph):
        frozen = build_pll(graph).copy().freeze()
        rng = np.random.default_rng(9)
        pairs = rng.integers(0, graph.num_vertices, size=(300, 2))
        plain = batch_dist_query(frozen, pairs)
        with installed() as reg:
            instrumented = batch_dist_query(frozen, pairs)
        assert np.array_equal(plain, instrumented)
        assert reg.counter_value("label.query.batch_calls") == 1
        assert reg.counter_value("label.query.batch_pairs") == len(pairs)
        assert reg.histogram("label.query.batch_chunk_size").count >= 1
