"""Unit tests for labeling statistics (Table 2's LN, Figure 6's bytes)."""

from __future__ import annotations

from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.stats import (
    BYTES_PER_ENTRY,
    BYTES_PER_VERTEX_OVERHEAD,
    labeling_bytes,
    labeling_stats,
)


def test_counts(paper_labeling):
    stats = labeling_stats(paper_labeling)
    assert stats.num_vertices == 11
    assert stats.total_entries == paper_labeling.total_entries()
    assert stats.min_entries == 1  # L(0) in Table 1
    assert stats.max_entries == 7  # L(10) in Table 1
    assert stats.avg_entries == stats.total_entries / 11


def test_byte_model():
    assert labeling_bytes(100, 10) == 100 * BYTES_PER_ENTRY + (
        10 * BYTES_PER_VERTEX_OVERHEAD
    )


def test_megabytes(paper_labeling):
    stats = labeling_stats(paper_labeling)
    assert stats.megabytes == stats.bytes_modelled / 1_000_000


def test_as_dict_keys(paper_labeling):
    d = labeling_stats(paper_labeling).as_dict()
    assert {"total_entries", "avg_entries", "bytes_modelled"} <= set(d)


def test_gnutella_scale_sanity():
    """The paper's headline: Gnutella's PLL index ~5 MB at 1M entries.

    Our byte model should put ~1M entries in the single-digit MB range.
    """
    assert 5.0 <= labeling_bytes(1_030_000, 6301) / 1_000_000 <= 10.0


def test_stats_on_generated_graph():
    g = generators.barabasi_albert(80, 3, seed=2)
    stats = labeling_stats(build_pll(g))
    assert stats.min_entries >= 1
    assert stats.max_entries >= stats.avg_entries >= stats.min_entries
