"""Unit tests for the RELABEL algorithms (BFS AFF and BFS ALL)."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.traversal import UNREACHED, bfs_distances_avoiding_edge
from repro.labeling.pll import build_pll
from repro.labeling.query import dist_query
from repro.core.affected import identify_affected
from repro.core.bfs_aff import build_supplemental_bfs_aff
from repro.core.bfs_all import build_supplemental_bfs_all
from repro.core._relabel import cross_pairs_processed, order_side_by_rank
from repro.core.supplemental import SupplementalIndex


ALGORITHMS = [build_supplemental_bfs_aff, build_supplemental_bfs_all]


@pytest.mark.parametrize("build", ALGORITHMS)
class TestEitherAlgorithm:
    def test_hubs_are_opposite_side_lower_rank(self, build, paper_graph):
        labeling = build_pll(paper_graph)
        rank = labeling.ordering.rank
        vertex = labeling.ordering.vertex
        for u, v in paper_graph.edges():
            av = identify_affected(paper_graph, u, v)
            si = build(paper_graph, labeling, av)
            side_of = av.contains
            for t, sl in si.iter_labels():
                for h_rank in sl.ranks:
                    h = vertex(h_rank)
                    assert h_rank < rank(t)
                    assert side_of(h) is not None
                    assert side_of(h) != side_of(t)

    def test_entry_distances_are_exact(self, build):
        g = generators.erdos_renyi_gnm(20, 36, seed=7)
        labeling = build_pll(g)
        vertex = labeling.ordering.vertex
        for u, v in list(g.edges())[:10]:
            av = identify_affected(g, u, v)
            si = build(g, labeling, av)
            for t, sl in si.iter_labels():
                truth = bfs_distances_avoiding_edge(g, t, (u, v))
                for h_rank, delta in zip(sl.ranks, sl.dists):
                    assert truth[vertex(h_rank)] == delta

    def test_bridge_failure_yields_empty_index(self, build, two_triangles):
        labeling = build_pll(two_triangles)
        av = identify_affected(two_triangles, 2, 3)
        si = build(two_triangles, labeling, av)
        assert si.total_entries() == 0

    def test_empty_labels_dropped(self, build, paper_graph):
        labeling = build_pll(paper_graph)
        av = identify_affected(paper_graph, 0, 8)
        si = build(paper_graph, labeling, av)
        for _v, sl in si.iter_labels():
            assert len(sl) > 0


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("seed", range(10))
    def test_identical_indexes_on_random_graphs(self, seed):
        g = generators.erdos_renyi_gnm(24, 42, seed=seed)
        labeling = build_pll(g)
        for u, v in g.edges():
            av = identify_affected(g, u, v)
            aff = build_supplemental_bfs_aff(g, labeling, av)
            all_ = build_supplemental_bfs_all(g, labeling, av)
            assert aff == all_, f"divergence at edge ({u}, {v})"

    @pytest.mark.parametrize("seed", range(4))
    def test_identical_on_clustered_graphs(self, seed):
        g = generators.powerlaw_cluster(40, 3, 0.6, seed=seed)
        labeling = build_pll(g)
        for u, v in list(g.edges())[:20]:
            av = identify_affected(g, u, v)
            assert build_supplemental_bfs_aff(g, labeling, av) == (
                build_supplemental_bfs_all(g, labeling, av)
            )


class TestRedundancySuppression:
    def test_second_root_entry_pruned_when_covered(self, paper_graph):
        """Figure 3 step 2: (2,3) for SL(8) is recognized as redundant."""
        labeling = build_pll(paper_graph)
        av = identify_affected(paper_graph, 0, 8)
        si = build_supplemental_bfs_aff(paper_graph, labeling, av)
        sl8 = si.get(8)
        assert len(sl8) == 1  # only the entry from vertex 0

    def test_supplement_is_minimal_under_queries(self):
        """Dropping any supplemental entry must break some Case-4 query —
        i.e. the late redundancy test leaves nothing obviously removable."""
        g = generators.erdos_renyi_gnm(16, 26, seed=9)
        labeling = build_pll(g)
        vertex = labeling.ordering.vertex
        for u, v in list(g.edges())[:8]:
            av = identify_affected(g, u, v)
            si = build_supplemental_bfs_aff(g, labeling, av)
            for t, sl in si.iter_labels():
                for i in range(len(sl.ranks)):
                    # Query (hub_i, t) with entry i removed must not
                    # still reach the exact distance via earlier entries.
                    h = vertex(sl.ranks[i])
                    exact = sl.dists[i]
                    best = min(
                        (
                            dist_query(labeling, h, vertex(sl.ranks[j]))
                            + sl.dists[j]
                            for j in range(i)
                        ),
                        default=float("inf"),
                    )
                    assert best > exact


class TestHelpers:
    def test_order_side_by_rank(self, paper_graph):
        labeling = build_pll(paper_graph)
        side = order_side_by_rank((8, 0, 2), labeling)
        ranks = [labeling.ordering.rank(v) for v in side]
        assert ranks == sorted(ranks)

    def test_cross_pairs_processed_cover_all_cross_pairs(self, paper_graph):
        labeling = build_pll(paper_graph)
        av = identify_affected(paper_graph, 0, 8)
        pairs_a = cross_pairs_processed(av.side_u, av.side_v, labeling)
        pairs_b = cross_pairs_processed(av.side_v, av.side_u, labeling)
        covered = {frozenset(p) for p in pairs_a + pairs_b}
        expected = {
            frozenset((a, b)) for a in av.side_u for b in av.side_v
        }
        assert covered == expected
