"""Construction fast-path: speedup smoke and CLI flag plumbing."""

from __future__ import annotations

import time

import pytest

from repro.cli import _resolve_algorithm, build_parser
from repro.core.builder import SIEFBuilder
from repro.graph.generators import barabasi_albert
from repro.labeling.pll import build_pll


@pytest.mark.slow
def test_batched_build_at_least_2x_faster_than_scalar():
    """The headline guarantee of the fast path, on a small BA graph.

    The committed benchmark (BENCH_sief_build.json) demands ≥3× on the
    10k-vertex graph; this smoke keeps CI honest at a size it can afford,
    where the vectorization win is smaller but must still clear 2×.
    """
    g = barabasi_albert(1200, 3, seed=7)
    labeling = build_pll(g)
    import random

    edges = sorted(random.Random(42).sample(sorted(g.edges()), 12))

    t0 = time.perf_counter()
    idx_scalar, _ = SIEFBuilder(g, labeling, "bfs_all").build(edges=edges)
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    idx_batched, _ = SIEFBuilder(g, labeling, "batched").build(edges=edges)
    batched_s = time.perf_counter() - t0

    # Equality first — a fast wrong answer is not a speedup.
    assert set(idx_scalar.supplements) == set(idx_batched.supplements)
    for edge, si in idx_scalar.supplements.items():
        assert si == idx_batched.supplements[edge]

    speedup = scalar_s / batched_s if batched_s else float("inf")
    assert speedup >= 2.0, (
        f"batched build only {speedup:.2f}x faster "
        f"({scalar_s:.2f}s scalar vs {batched_s:.2f}s batched)"
    )


class TestCLIFlags:
    def test_build_accepts_jobs_and_batched(self):
        args = build_parser().parse_args(
            ["build", "g.txt", "--batched", "--jobs", "4"]
        )
        assert args.jobs == 4
        assert args.batched is True
        assert _resolve_algorithm(args) == "batched"

    def test_build_algorithm_batched_choice(self):
        args = build_parser().parse_args(
            ["build", "g.txt", "--algorithm", "batched"]
        )
        assert _resolve_algorithm(args) == "batched"

    def test_no_batched_downgrades_batched_algorithm(self):
        args = build_parser().parse_args(
            ["build", "g.txt", "--algorithm", "batched", "--no-batched"]
        )
        assert args.batched is False
        assert _resolve_algorithm(args) == "bfs_all"

    def test_no_batched_keeps_explicit_scalar_algorithm(self):
        args = build_parser().parse_args(
            ["build", "g.txt", "--algorithm", "bfs_aff", "--no-batched"]
        )
        assert _resolve_algorithm(args) == "bfs_aff"

    def test_default_is_scalar_serial(self):
        args = build_parser().parse_args(["build", "g.txt"])
        assert args.jobs == 1
        assert args.batched is None
        assert _resolve_algorithm(args) == "bfs_all"

    def test_batched_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "g.txt", "--batched", "--no-batched"]
            )

    def test_metrics_has_same_flags(self):
        args = build_parser().parse_args(
            ["metrics", "--batched", "--jobs", "2"]
        )
        assert args.jobs == 2
        assert _resolve_algorithm(args) == "batched"
