"""Unit tests for connectivity: components and bridges."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph
from repro.graph import generators
from repro.graph.components import (
    bridges,
    component_ids,
    connected_components,
    is_bridge,
    is_connected,
    largest_component_subgraph,
)
from repro.graph.traversal import UNREACHED, bfs_distances


class TestComponents:
    def test_single_component(self, cycle6):
        assert connected_components(cycle6) == [[0, 1, 2, 3, 4, 5]]
        assert is_connected(cycle6)

    def test_multiple_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3], [4]]
        assert not is_connected(g)

    def test_component_ids(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert component_ids(g) == [0, 0, 1, 1, 2]

    def test_empty_graph_connected(self):
        assert is_connected(Graph(0))

    def test_single_vertex_connected(self):
        assert is_connected(Graph(1))

    def test_largest_component_subgraph(self):
        g = generators.compose_disjoint(
            [generators.cycle_graph(5), generators.path_graph(3)]
        )
        sub, mapping = largest_component_subgraph(g)
        assert sub.num_vertices == 5
        assert mapping == [0, 1, 2, 3, 4]
        assert is_connected(sub)


class TestBridges:
    def test_path_all_bridges(self, path5):
        assert bridges(path5) == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_cycle_no_bridges(self, cycle6):
        assert bridges(cycle6) == set()

    def test_two_triangles_single_bridge(self, two_triangles):
        assert bridges(two_triangles) == {(2, 3)}
        assert is_bridge(two_triangles, 3, 2)
        assert not is_bridge(two_triangles, 0, 1)

    def test_paper_graph_bridges(self, paper_graph):
        # Figure 1: (6,9) and (9,10) are the only cut edges.
        assert bridges(paper_graph) == {(6, 9), (9, 10)}

    @pytest.mark.parametrize("seed", range(8))
    def test_against_removal_oracle(self, seed):
        g = generators.erdos_renyi_gnm(18, 26, seed=seed)
        found = bridges(g)
        for u, v in g.edges():
            # Oracle: (u,v) is a bridge iff removing it disconnects u from v.
            removed = g.without_edge(u, v)
            disconnects = bfs_distances(removed, u)[v] == UNREACHED
            assert (((u, v) in found) == disconnects), (u, v)

    def test_star_all_bridges(self, star7):
        assert len(bridges(star7)) == 6
