"""Unit tests for the flat (frozen) labeling backend and batch queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LabelingError, SerializationError
from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.labeling.label import Labeling
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, batch_dist_query, dist_query
from repro.labeling.serialize import (
    labeling_from_bytes,
    labeling_from_json,
    labeling_to_bytes,
    labeling_to_json,
    load_labeling_npz,
    save_labeling_npz,
)
from repro.labeling.stats import labeling_stats
from repro.order.ordering import VertexOrdering
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine


@pytest.fixture(scope="module")
def graph():
    return generators.erdos_renyi_gnm(40, 80, seed=11)


@pytest.fixture(scope="module")
def labeling(graph):
    return build_pll(graph)


@pytest.fixture
def frozen(labeling):
    return labeling.copy().freeze()


class TestFreezeThaw:
    def test_freeze_is_idempotent_and_inplace(self, labeling):
        lab = labeling.copy()
        assert lab.freeze() is lab
        assert lab.frozen
        assert lab.freeze() is lab

    def test_flat_arrays_shape(self, labeling, frozen):
        assert frozen.offsets.dtype == np.int64
        assert len(frozen.offsets) == frozen.num_vertices + 1
        assert int(frozen.offsets[0]) == 0
        assert int(frozen.offsets[-1]) == labeling.total_entries()
        assert len(frozen.hubs_flat) == len(frozen.dists_flat)

    def test_thaw_round_trip(self, labeling):
        lab = labeling.copy()
        assert lab.freeze().thaw() == labeling
        assert not lab.frozen
        assert isinstance(lab.hub_ranks[0], list)

    def test_equality_across_backends(self, labeling, frozen):
        assert frozen == labeling
        assert labeling == frozen

    def test_accessors_identical(self, labeling, frozen):
        for v in range(labeling.num_vertices):
            assert frozen.hub_ranks[v] == labeling.hub_ranks[v]
            assert frozen.hub_dists[v] == labeling.hub_dists[v]
            assert frozen.label_size(v) == labeling.label_size(v)
            assert frozen.entries(v) == labeling.entries(v)
            assert frozen.hubs(v) == labeling.hubs(v)
        assert frozen.total_entries() == labeling.total_entries()

    def test_validate_works_frozen(self, frozen):
        assert frozen.validate() == []

    def test_frozen_mutation_rejected(self, frozen):
        with pytest.raises(LabelingError, match="frozen"):
            frozen.hub_ranks[0] = [0]

    def test_copy_preserves_backend(self, frozen, labeling):
        clone = frozen.copy()
        assert clone.frozen
        assert clone == frozen
        assert labeling.copy().frozen is False

    def test_from_flat_inconsistent_rejected(self):
        ordering = VertexOrdering([0, 1])
        with pytest.raises(LabelingError):
            Labeling.from_flat(
                ordering, np.array([0, 1, 3]), np.array([0]), np.array([0])
            )
        with pytest.raises(LabelingError):
            Labeling.from_flat(
                ordering, np.array([0, 1]), np.array([0]), np.array([0])
            )

    def test_empty_labeling_freezes(self):
        lab = Labeling.empty(VertexOrdering([1, 0])).freeze()
        assert lab.total_entries() == 0
        assert dist_query(lab, 0, 1) == INF

    def test_stats_identical(self, labeling, frozen):
        assert labeling_stats(frozen) == labeling_stats(labeling)

    def test_build_pll_freeze_flag(self, graph, labeling):
        frozen_build = build_pll(graph, freeze=True)
        assert frozen_build.frozen
        assert frozen_build == labeling

    def test_build_pll_from_csr(self, graph, labeling):
        assert build_pll(CSRGraph.from_graph(graph)) == labeling


class TestScalarQueryParity:
    def test_all_pairs(self, graph, labeling, frozen):
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                assert dist_query(frozen, s, t) == dist_query(labeling, s, t)


class TestBatchDistQuery:
    def test_matches_scalar(self, graph, labeling, frozen):
        n = graph.num_vertices
        pairs = [(s, t) for s in range(n) for t in range(n)]
        got = batch_dist_query(frozen, pairs)
        expected = np.array(
            [dist_query(labeling, s, t) for s, t in pairs], dtype=np.float64
        )
        assert np.array_equal(got, expected)

    def test_auto_freezes(self, labeling):
        lab = labeling.copy()
        assert not lab.frozen
        batch_dist_query(lab, [(0, 1), (2, 3), (4, 5), (6, 7)])
        assert lab.frozen

    def test_empty_and_tiny_batches(self, frozen):
        assert len(batch_dist_query(frozen, [])) == 0
        got = batch_dist_query(frozen, [(0, 0), (1, 2)])
        assert got[0] == 0.0
        assert got[1] == dist_query(frozen, 1, 2)

    def test_bad_shape_rejected(self, frozen):
        with pytest.raises(ValueError, match="shape"):
            batch_dist_query(frozen, [(0, 1, 2)])

    def test_out_of_range_rejected(self, frozen):
        with pytest.raises(IndexError):
            batch_dist_query(frozen, [(0, frozen.num_vertices)] * 8)

    def test_disconnected_pairs_inf(self):
        g = generators.compose_disjoint(
            [generators.path_graph(3), generators.path_graph(3)]
        )
        lab = build_pll(g, freeze=True)
        got = batch_dist_query(lab, [(0, 4), (0, 2), (3, 5), (1, 1)])
        assert got[0] == np.inf
        assert got[1] == 2
        assert got[2] == 2
        assert got[3] == 0


class TestEngineBatchQuery:
    @pytest.fixture(scope="class")
    def setup(self, graph):
        index, _ = SIEFBuilder(graph).build()
        return graph, index, SIEFQueryEngine(index)

    def test_matches_scalar_on_every_edge(self, setup):
        g, index, engine = setup
        n = g.num_vertices
        rng = np.random.default_rng(7)
        pairs = rng.integers(0, n, size=(300, 2))
        for edge in list(g.edges())[:12]:
            got = engine.batch_query(edge, pairs)
            expected = np.array(
                [engine.distance(int(s), int(t), edge) for s, t in pairs],
                dtype=np.float64,
            )
            assert np.array_equal(got, expected), edge

    def test_self_pairs_zero(self, setup):
        g, index, engine = setup
        edge = next(iter(g.edges()))
        pairs = [(v, v) for v in range(g.num_vertices)]
        assert np.array_equal(
            engine.batch_query(edge, pairs),
            np.zeros(g.num_vertices),
        )

    def test_bridge_edge_disconnection(self):
        g = generators.path_graph(8)
        index, _ = SIEFBuilder(g).build()
        engine = SIEFQueryEngine(index)
        pairs = [(s, t) for s in range(8) for t in range(8)]
        got = engine.batch_query((3, 4), pairs)
        expected = np.array(
            [engine.distance(s, t, (3, 4)) for s, t in pairs], dtype=np.float64
        )
        assert np.array_equal(got, expected)
        assert got[pairs.index((0, 7))] == np.inf

    def test_index_freeze_idempotent(self, setup):
        _, index, engine = setup
        assert index.freeze() is index
        assert index.labeling.frozen
        edge = next(iter(index.supplements))
        got = engine.batch_query(edge, [(0, 1), (2, 3), (4, 5), (6, 7)])
        assert len(got) == 4

    def test_empty_pairs(self, setup):
        _, index, engine = setup
        edge = next(iter(index.supplements))
        assert len(engine.batch_query(edge, [])) == 0


class TestFlatSerialization:
    def test_binary_round_trip_from_frozen(self, labeling, frozen):
        assert labeling_from_bytes(labeling_to_bytes(frozen)) == labeling

    def test_npz_round_trip(self, tmp_path, labeling, frozen):
        path = tmp_path / "labels.npz"
        save_labeling_npz(frozen, path)
        loaded = load_labeling_npz(path)
        assert loaded.frozen
        assert loaded == labeling

    def test_npz_from_thawed(self, tmp_path, labeling):
        path = tmp_path / "labels.npz"
        save_labeling_npz(labeling, path)
        assert not labeling.frozen  # saving must not freeze the original
        assert load_labeling_npz(path) == labeling

    def test_npz_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz file")
        with pytest.raises(SerializationError):
            load_labeling_npz(path)

    def test_json_v2_round_trip(self, labeling, frozen):
        text = labeling_to_json(frozen)
        assert '"format_version":2' in text
        assert labeling_from_json(text) == labeling

    def test_json_v1_still_loads(self, labeling):
        import json

        doc = json.loads(labeling_to_json(labeling))
        del doc["format_version"]  # the pre-version-field layout
        assert labeling_from_json(json.dumps(doc)) == labeling

    def test_json_unknown_version_rejected(self, labeling):
        import json

        doc = json.loads(labeling_to_json(labeling))
        doc["format_version"] = 99
        with pytest.raises(SerializationError, match="version"):
            labeling_from_json(json.dumps(doc))
