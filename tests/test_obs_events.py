"""Unit tests for repro.obs.events: sampling, ring, sink, counters."""

import io
import json

import pytest

from repro.obs.context import new_trace_id
from repro.obs.events import EventLog, peak_rss_bytes


def test_validation():
    with pytest.raises(ValueError):
        EventLog(capacity=0)
    with pytest.raises(ValueError):
        EventLog(sample=1.5)
    with pytest.raises(ValueError):
        EventLog(sample=-0.1)
    with pytest.raises(ValueError):
        EventLog(slow_seconds=-1)


def test_record_and_recent_order():
    log = EventLog(capacity=8)
    for i in range(3):
        assert log.record({"event": "request", "trace_id": f"t{i}"})
    ids = [e["trace_id"] for e in log.recent()]
    assert ids == ["t0", "t1", "t2"]
    assert [e["trace_id"] for e in log.recent(2)] == ["t1", "t2"]
    assert len(log) == 3
    assert log.emitted == 3


def test_ring_overwrites_are_counted():
    log = EventLog(capacity=2)
    for i in range(5):
        log.record({"trace_id": f"t{i}"})
    assert [e["trace_id"] for e in log.recent()] == ["t3", "t4"]
    assert log.dropped == 3
    assert log.emitted == 5


def test_events_are_timestamped_with_injected_clock():
    log = EventLog(clock=lambda: 123.456789123)
    log.record({"trace_id": "t"})
    assert log.recent()[0]["ts"] == pytest.approx(123.456789)


def test_sampling_is_deterministic_and_proportional():
    log = EventLog(sample=0.25)
    ids = [new_trace_id() for _ in range(2000)]
    verdicts = [log.sampled(t) for t in ids]
    # deterministic: same id, same verdict
    assert verdicts == [log.sampled(t) for t in ids]
    rate = sum(verdicts) / len(verdicts)
    assert 0.18 < rate < 0.32  # crc32 is uniform enough at n=2000
    assert EventLog(sample=1.0).sampled("anything")
    assert not EventLog(sample=0.0).sampled("anything")


def test_sampled_out_events_are_counted_not_stored():
    log = EventLog(sample=0.0)
    assert not log.record({"trace_id": "t"})
    assert log.sampled_out == 1
    assert len(log) == 0


def test_slow_and_error_bypass_sampling():
    log = EventLog(sample=0.0)
    assert log.record({"trace_id": "s"}, slow=True)
    assert log.record({"trace_id": "e"}, error=True)
    assert log.slow_events == 1
    assert log.error_events == 1
    assert len(log) == 2


def test_explicit_sampled_verdict_overrides():
    log = EventLog(sample=0.0)
    assert log.record({"trace_id": "t"}, sampled=True)
    log2 = EventLog(sample=1.0)
    assert not log2.record({"trace_id": "t"}, sampled=False)
    assert log2.sampled_out == 1


def test_file_sink_appends_json_lines(tmp_path):
    path = tmp_path / "events" / "log.jsonl"
    log = EventLog(sink=path)
    log.record({"event": "request", "trace_id": "t0", "status": 200})
    log.record({"event": "request", "trace_id": "t1", "status": 200})
    log.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    docs = [json.loads(line) for line in lines]
    assert docs[0]["trace_id"] == "t0"
    assert all("ts" in d for d in docs)
    # append-only across reopen
    log2 = EventLog(sink=path)
    log2.record({"trace_id": "t2"})
    log2.close()
    assert len(path.read_text().splitlines()) == 3


def test_sink_failure_disables_sink_not_serving():
    sink = io.StringIO()
    log = EventLog(sink=sink)
    log.record({"trace_id": "a"})
    sink.close()
    assert log.record({"trace_id": "b"})  # ring still records
    assert log.sink_errors == 1
    assert log.record({"trace_id": "c"})  # sink not retried
    assert log.sink_errors == 1
    assert [e["trace_id"] for e in log.recent()] == ["a", "b", "c"]


def test_stats_payload():
    log = EventLog(sample=0.0, capacity=1)
    log.record({"trace_id": "x"})
    log.record({"trace_id": "y"}, slow=True)
    log.record({"trace_id": "z"}, error=True)
    assert log.stats() == {
        "emitted": 2,
        "sampled_out": 1,
        "dropped": 1,
        "slow_events": 1,
        "error_events": 1,
        "sink_errors": 0,
    }


def test_peak_rss_bytes_positive_on_linux():
    rss = peak_rss_bytes()
    assert rss is not None
    assert rss > 1024 * 1024  # a python process is at least a MB


def test_bench_history_reexports_peak_rss():
    from repro.bench.history import peak_rss_bytes as from_bench

    assert from_bench is peak_rss_bytes
