"""Unit tests for the BFS-query and naive-rebuild baselines."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFound
from repro.graph import generators
from repro.labeling.query import INF
from repro.baselines.bfs_query import BFSQueryBaseline
from repro.baselines.dijkstra_query import DijkstraQueryBaseline
from repro.baselines.naive_rebuild import (
    NaiveRebuildBaseline,
    estimate_naive_seconds,
)
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.graph.weighted import WeightedGraph


class TestBFSBaseline:
    @pytest.mark.parametrize("bidirectional", [False, True])
    def test_agrees_with_sief(self, bidirectional):
        g = generators.erdos_renyi_gnm(20, 36, seed=2)
        index, _ = SIEFBuilder(g).build()
        engine = SIEFQueryEngine(index)
        baseline = BFSQueryBaseline(g, bidirectional=bidirectional)
        for u, v in list(g.edges())[:8]:
            for s in range(0, 20, 3):
                for t in range(0, 20, 2):
                    assert baseline.distance(s, t, (u, v)) == (
                        engine.distance(s, t, (u, v))
                    )

    def test_disconnection_is_inf(self, two_triangles):
        baseline = BFSQueryBaseline(two_triangles)
        assert baseline.distance(0, 5, (2, 3)) == INF

    def test_missing_edge_rejected(self, paper_graph):
        baseline = BFSQueryBaseline(paper_graph)
        with pytest.raises(EdgeNotFound):
            baseline.distance(0, 1, (0, 9))


class TestNaiveRebuild:
    def test_estimator(self):
        assert estimate_naive_seconds(0.825, 20777) == pytest.approx(
            0.825 * 20777
        )

    def test_queries_match_sief(self, paper_graph, paper_labeling):
        index, _ = SIEFBuilder(paper_graph, paper_labeling).build()
        engine = SIEFQueryEngine(index)
        naive = NaiveRebuildBaseline(paper_graph)
        for u, v in paper_graph.edges():
            for s in range(0, 11, 2):
                for t in range(0, 11, 3):
                    assert naive.distance(s, t, (u, v)) == engine.distance(
                        s, t, (u, v)
                    )

    def test_cases_cached(self, paper_graph):
        naive = NaiveRebuildBaseline(paper_graph)
        a = naive.build_case(0, 8)
        b = naive.build_case(8, 0)
        assert a is b
        assert naive.num_cases == 1

    def test_build_all_materializes_everything(self, cycle6):
        naive = NaiveRebuildBaseline(cycle6)
        naive.build_all()
        assert naive.num_cases == 6
        assert naive.total_entries > 0
        assert naive.build_seconds > 0

    def test_footprint_exceeds_sief(self, paper_graph, paper_labeling):
        """§1's storage argument: m full labelings dwarf original + SIEF."""
        index, _ = SIEFBuilder(paper_graph, paper_labeling).build()
        naive = NaiveRebuildBaseline(paper_graph)
        naive.build_all()
        sief_total = (
            paper_labeling.total_entries()
            + index.total_supplemental_entries()
        )
        assert naive.total_entries > 3 * sief_total


class TestDijkstraBaseline:
    def test_unit_weights_match_bfs_baseline(self):
        g = generators.erdos_renyi_gnm(16, 30, seed=4)
        wg = WeightedGraph.from_unweighted(g)
        bfs = BFSQueryBaseline(g)
        dij = DijkstraQueryBaseline(wg)
        edge = next(iter(g.edges()))
        for s in range(16):
            for t in range(16):
                assert dij.distance(s, t, edge) == bfs.distance(s, t, edge)

    def test_missing_edge_rejected(self):
        wg = WeightedGraph(3, [(0, 1, 1.0)])
        with pytest.raises(EdgeNotFound):
            DijkstraQueryBaseline(wg).distance(0, 1, (1, 2))
