"""Bench history store and regression-compare tests.

Every timing here is an injected sample — nothing asserts on a wall
clock, so the PASS/FAIL behaviour these tests pin can never be flaky.
"""

from __future__ import annotations

import pytest

from repro.bench.history import (
    BenchHistory,
    BenchRun,
    CrossHostError,
    compare,
    compare_runs,
    default_run_label,
    env_metadata,
)


def _run(bench_id, samples, run="r", host="hostA", **kw):
    meta = {"hostname": host} if host is not None else {}
    return BenchRun(
        bench_id=bench_id, samples=tuple(samples), run=run, meta=meta, **kw
    )


class TestBenchRun:
    def test_rejects_empty_samples(self):
        with pytest.raises(ValueError, match="no samples"):
            BenchRun(bench_id="b", samples=())

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError, match="negative"):
            BenchRun(bench_id="b", samples=(0.1, -0.2))

    def test_statistics(self):
        r = _run("b", [0.3, 0.1, 0.2])
        assert r.value("min") == 0.1
        assert r.value("median") == 0.2
        assert r.value("mean") == pytest.approx(0.2)

    def test_unknown_statistic_raises(self):
        with pytest.raises(ValueError, match="statistic"):
            _run("b", [0.1]).value("p99")

    def test_json_round_trip(self):
        r = _run("b", [0.1, 0.2], run="r1", extra={"cases": 5})
        assert BenchRun.from_json(r.to_json()) == r


class TestBenchHistory:
    def test_append_load_round_trip(self, tmp_path):
        h = BenchHistory(tmp_path / "sub" / "hist.jsonl")
        h.append(_run("build", [0.1], run="r1"))
        h.append(_run("query", [0.2], run="r1"))
        h.append(_run("build", [0.15], run="r2"))
        assert len(h.load()) == 3
        assert [r.run for r in h.load(bench_id="build")] == ["r1", "r2"]
        assert h.run_labels() == ["r1", "r2"]
        assert h.latest("build").samples == (0.15,)

    def test_missing_file_loads_empty(self, tmp_path):
        assert BenchHistory(tmp_path / "nope.jsonl").load() == []

    def test_corrupt_line_names_path_and_lineno(self, tmp_path):
        p = tmp_path / "hist.jsonl"
        p.write_text('{"bench_id": "b", "samples": [0.1]}\nnot json\n')
        with pytest.raises(ValueError, match=r"hist\.jsonl:2"):
            BenchHistory(p).load()


class TestCompare:
    def test_identical_runs_pass(self):
        base = _run("build", [0.10, 0.11, 0.12])
        cand = _run("build", [0.10, 0.11, 0.12])
        comp = compare(base, cand)
        assert comp.verdict == "PASS"
        assert not comp.regressed
        assert comp.ratio == 1.0

    def test_two_x_slowdown_fails_with_id_and_ratio(self):
        base = _run("build", [0.10, 0.12])
        cand = _run("build", [0.20, 0.24])
        comp = compare(base, cand)
        assert comp.verdict == "FAIL"
        assert comp.regressed
        assert comp.ratio == pytest.approx(2.0)
        line = comp.describe()
        assert "FAIL" in line
        assert "build" in line
        assert "2.00x" in line

    def test_noise_below_threshold_passes(self):
        # min-of-k absorbs one noisy repetition entirely.
        base = _run("build", [0.100, 0.180])
        cand = _run("build", [0.105, 0.400])
        assert not compare(base, cand, threshold=0.10).regressed

    def test_threshold_is_configurable(self):
        base = _run("b", [0.10])
        cand = _run("b", [0.13])
        assert compare(base, cand, threshold=0.10).regressed
        assert not compare(base, cand, threshold=0.50).regressed

    def test_median_statistic(self):
        base = _run("b", [0.1, 0.1, 0.1])
        cand = _run("b", [0.1, 0.3, 0.3])  # min identical, median 3x
        assert not compare(base, cand, statistic="min").regressed
        assert compare(base, cand, statistic="median").regressed

    def test_improvement_is_flagged_not_failed(self):
        comp = compare(_run("b", [0.2]), _run("b", [0.1]))
        assert comp.improved
        assert comp.verdict == "PASS"

    def test_mismatched_ids_raise(self):
        with pytest.raises(ValueError, match="different benchmarks"):
            compare(_run("a", [0.1]), _run("b", [0.1]))

    def test_negative_threshold_raises(self):
        with pytest.raises(ValueError, match="threshold"):
            compare(_run("b", [0.1]), _run("b", [0.1]), threshold=-0.1)

    def test_zero_baseline_positive_candidate_is_infinite(self):
        comp = compare(_run("b", [0.0]), _run("b", [0.1]))
        assert comp.ratio == float("inf")
        assert comp.regressed

    def test_cross_host_refused_with_clear_message(self):
        base = _run("b", [0.1], host="ci-runner-1")
        cand = _run("b", [0.1], host="laptop")
        with pytest.raises(CrossHostError) as exc:
            compare(base, cand)
        msg = str(exc.value)
        assert "ci-runner-1" in msg and "laptop" in msg
        assert "allow_cross_host" in msg

    def test_cross_host_override(self):
        base = _run("b", [0.1], host="ci-runner-1")
        cand = _run("b", [0.1], host="laptop")
        assert not compare(base, cand, allow_cross_host=True).regressed

    def test_unknown_host_does_not_block(self):
        assert not compare(
            _run("b", [0.1], host=None), _run("b", [0.1], host="x")
        ).regressed


class TestCompareRuns:
    def _history(self, tmp_path):
        h = BenchHistory(tmp_path / "hist.jsonl")
        h.append(_run("build", [0.10], run="base"))
        h.append(_run("query", [0.50], run="base"))
        h.append(_run("build", [0.25], run="cand"))  # 2.5x regression
        h.append(_run("query", [0.50], run="cand"))
        h.append(_run("extra", [0.10], run="cand"))  # only in candidate
        return h

    def test_intersection_compared_and_missing_reported(self, tmp_path):
        comps, missing = compare_runs(self._history(tmp_path), "base", "cand")
        assert [c.bench_id for c in comps] == ["build", "query"]
        assert [c.verdict for c in comps] == ["FAIL", "PASS"]
        assert missing == ["extra"]

    def test_unknown_run_raises(self, tmp_path):
        with pytest.raises(ValueError, match="baseline"):
            compare_runs(self._history(tmp_path), "nope", "cand")


def test_env_metadata_has_comparability_keys():
    meta = env_metadata()
    for key in (
        "python",
        "numpy",
        "platform",
        "machine",
        "cpu_count",
        "hostname",
        "git_sha",
    ):
        assert key in meta
    assert meta["hostname"]


def test_default_run_label_uses_injected_clock():
    assert default_run_label(clock=lambda: 12.345) == "run-12345"
