"""Unit tests for IS-Label and SIEF-over-ISL (framework genericity)."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelingError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import UNREACHED, bfs_distances_avoiding_edge
from repro.labeling.isl import build_isl
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, dist_query
from repro.labeling.stats import labeling_stats
from repro.labeling.verify import is_well_ordered, verify_labeling
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine


class TestISLCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_exact_cover_on_random_graphs(self, seed):
        g = generators.erdos_renyi_gnm(26, 48, seed=seed)
        verify_labeling(build_isl(g, core_limit=8), g)

    @pytest.mark.parametrize("core_limit", [1, 2, 4, 16, 64])
    def test_any_core_limit(self, core_limit):
        g = generators.powerlaw_cluster(30, 3, 0.5, seed=1)
        verify_labeling(build_isl(g, core_limit=core_limit), g)

    def test_disconnected_graph(self):
        g = generators.compose_disjoint(
            [generators.cycle_graph(6), generators.path_graph(5)]
        )
        labeling = build_isl(g, core_limit=3)
        verify_labeling(labeling, g)
        assert dist_query(labeling, 0, 8) == INF

    def test_tree(self):
        g = generators.random_tree(30, seed=2)
        verify_labeling(build_isl(g), g)

    def test_paper_graph(self, paper_graph):
        verify_labeling(build_isl(paper_graph, core_limit=4), paper_graph)

    def test_well_ordered(self):
        g = generators.barabasi_albert(50, 3, seed=3)
        assert is_well_ordered(build_isl(g))

    def test_bad_core_limit(self, path5):
        with pytest.raises(LabelingError):
            build_isl(path5, core_limit=0)

    def test_single_vertex(self):
        labeling = build_isl(Graph(1))
        assert dist_query(labeling, 0, 0) == 0


class TestISLCharacter:
    def test_isl_labels_larger_than_pll(self):
        """The known trade: ISL's peel hierarchy produces bigger labels
        than PLL's global pruning (it buys memory-bounded construction,
        which we don't model)."""
        g = generators.barabasi_albert(120, 3, seed=4)
        isl = labeling_stats(build_isl(g, core_limit=16))
        pll = labeling_stats(build_pll(g))
        assert isl.total_entries > pll.total_entries

    def test_core_vertices_rank_first(self):
        g = generators.barabasi_albert(60, 3, seed=5)
        labeling = build_isl(g, core_limit=10)
        # The rank-0 vertex must appear as a hub extremely widely — it is
        # the most connected core vertex (Lemma 1 analogue).
        root_rank_hits = sum(
            1
            for v in range(60)
            if labeling.hub_ranks[v] and labeling.hub_ranks[v][0] == 0
        )
        assert root_rank_hits > 30


class TestSIEFOverISL:
    """The paper's framework claim: SIEF needs only well-ordering, not PLL."""

    @pytest.mark.parametrize("seed", range(4))
    def test_all_failure_queries_exact(self, seed):
        g = generators.erdos_renyi_gnm(18, 32, seed=seed)
        labeling = build_isl(g, core_limit=6)
        index, _ = SIEFBuilder(g, labeling).build()
        engine = SIEFQueryEngine(index)
        for u, v in g.edges():
            for s in range(18):
                truth = bfs_distances_avoiding_edge(g, s, (u, v))
                for t in range(18):
                    expected = truth[t] if truth[t] != UNREACHED else INF
                    assert engine.distance(s, t, (u, v)) == expected

    def test_relabel_algorithms_agree_on_isl(self):
        g = generators.erdos_renyi_gnm(20, 36, seed=9)
        labeling = build_isl(g, core_limit=6)
        aff, _ = SIEFBuilder(g, labeling, algorithm="bfs_aff").build()
        all_, _ = SIEFBuilder(g, labeling, algorithm="bfs_all").build()
        for edge, si in aff.iter_cases():
            assert all_.supplement(*edge) == si
