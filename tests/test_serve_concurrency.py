"""Concurrency determinism: N interleaved clients == serial answers.

The micro-batcher reorders and coalesces work across connections; these
tests prove that reordering is invisible — every client gets exactly the
answer a serial run would have given it — and that the coalescing
actually happens (the ``serve.batch.size`` histogram must average more
than one pair per flush when the load is concurrent).
"""

from __future__ import annotations

import asyncio
import math
import os
import random
from pathlib import Path

import pytest

from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.graph import generators
from repro.obs.events import EventLog
from repro.obs.trace import TraceRecorder
from repro.serve.client import AsyncServeClient
from repro.serve.inprocess import InProcessServer
from repro.serve.server import ServeConfig


@pytest.fixture(scope="module")
def engine() -> SIEFQueryEngine:
    graph = generators.barabasi_albert(40, 3, seed=21)
    index, _ = SIEFBuilder(graph).build()
    return SIEFQueryEngine(index.freeze())


def make_workload(engine, num_clients: int, per_client: int, seed: int):
    """Deterministic per-client query scripts plus their serial answers.

    Each step is either a single query or a small batch; expected
    answers are computed with the in-memory engine up front (the serial
    reference the concurrent run must reproduce exactly).
    """
    rng = random.Random(seed)
    edges = sorted(engine.index.supplements)
    n = engine.index.labeling.num_vertices
    scripts = []
    for _ in range(num_clients):
        steps = []
        for _ in range(per_client):
            edge = rng.choice(edges)
            if rng.random() < 0.5:
                pair = (rng.randrange(n), rng.randrange(n))
                expected = [float(engine.distance(*pair, edge))]
                steps.append(("single", edge, [pair], expected))
            else:
                pairs = [
                    (rng.randrange(n), rng.randrange(n))
                    for _ in range(rng.randint(2, 6))
                ]
                expected = [float(d) for d in engine.batch_query(edge, pairs)]
                steps.append(("batch", edge, pairs, expected))
        scripts.append(steps)
    return scripts


def eq(a: float, b: float) -> bool:
    return a == b or (math.isinf(a) and math.isinf(b))


async def run_client(host, port, steps, use_binary: bool):
    mismatches = []
    async with AsyncServeClient(host, port) as client:
        for kind, edge, pairs, expected in steps:
            if kind == "single":
                got = [await client.distance(pairs[0][0], pairs[0][1], edge)]
            elif use_binary:
                got = [float(d) for d in await client.batch_binary(edge, pairs)]
            else:
                got = await client.batch(edge, pairs)
            if len(got) != len(expected) or not all(
                eq(g, e) for g, e in zip(got, expected)
            ):
                mismatches.append((edge, pairs, got, expected))
    return mismatches


def test_interleaved_clients_match_serial_answers(engine):
    num_clients, per_client = 16, 12
    scripts = make_workload(engine, num_clients, per_client, seed=5)
    # SIEF_SERVE_ARTIFACTS=<dir> additionally dumps the run's structured
    # event log and a Chrome trace of the batcher spans — CI uploads
    # them so a red run comes with its own observability attached.
    artifacts = os.environ.get("SIEF_SERVE_ARTIFACTS")
    events = tracer = None
    if artifacts:
        out = Path(artifacts)
        events = EventLog(
            capacity=16384, sample=1.0, sink=out / "serve_events.jsonl"
        )
        tracer = TraceRecorder(capacity=65536)
    config = ServeConfig(
        max_batch=256, max_delay=0.003, events=events, tracer=tracer
    )
    with InProcessServer(engine, config) as srv:

        async def main():
            tasks = [
                run_client(srv.host, srv.port, steps, use_binary=(i % 2 == 0))
                for i, steps in enumerate(scripts)
            ]
            return await asyncio.gather(*tasks)

        results = asyncio.run(main())
    if artifacts:
        from repro.obs.chrometrace import write_chrome_trace

        events.close()
        write_chrome_trace(tracer, Path(artifacts) / "serve_trace.json")
    flat = [m for per in results for m in per]
    assert flat == [], f"{len(flat)} interleaved answers differ from serial"


def test_concurrency_produces_real_microbatches(engine):
    """Under 32 concurrent single-query clients, flushes must coalesce."""
    num_clients, per_client = 32, 15
    rng = random.Random(7)
    edges = sorted(engine.index.supplements)
    n = engine.index.labeling.num_vertices
    queries = [
        [
            (rng.choice(edges), (rng.randrange(n), rng.randrange(n)))
            for _ in range(per_client)
        ]
        for _ in range(num_clients)
    ]
    expected = {
        (edge, pair): float(engine.distance(*pair, edge))
        for script in queries
        for edge, pair in script
    }
    config = ServeConfig(max_batch=512, max_delay=0.005)
    with InProcessServer(engine, config) as srv:

        async def one_client(script):
            out = []
            async with AsyncServeClient(srv.host, srv.port) as client:
                for edge, pair in script:
                    out.append((edge, pair, await client.distance(*pair, edge)))
            return out

        async def main():
            return await asyncio.gather(*(one_client(s) for s in queries))

        results = asyncio.run(main())
        hist = srv.registry.histograms["serve.batch.size"]

    for script in results:
        for edge, pair, got in script:
            want = expected[(edge, pair)]
            assert eq(got, want), (edge, pair, got, want)

    total_queries = num_clients * per_client
    assert hist.count > 0
    mean_batch = hist.sum / hist.count
    assert mean_batch > 1.0, (
        f"micro-batching never coalesced: mean batch size {mean_batch:.2f} "
        f"over {hist.count} flushes for {total_queries} queries"
    )


def test_batch_histogram_absent_under_serial_load(engine):
    """Sanity for the assertion above: serial singles mostly batch at 1.

    Guards the *meaningfulness* of the concurrency assertion — if a
    serial client already produced mean batch > 1, the concurrent test
    would prove nothing about coalescing.
    """
    config = ServeConfig(max_batch=512, max_delay=0.0005)
    edges = sorted(engine.index.supplements)
    with InProcessServer(engine, config) as srv:

        async def main():
            async with AsyncServeClient(srv.host, srv.port) as client:
                for i in range(20):
                    await client.distance(0, i % 10, edges[i % len(edges)])

        asyncio.run(main())
        hist = srv.registry.histograms["serve.batch.size"]
    assert hist.count > 0
    assert hist.sum / hist.count <= 1.5
