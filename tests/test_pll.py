"""Unit tests for Pruned Landmark Labeling construction."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelingError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, dist_query
from repro.labeling.verify import is_well_ordered, verify_labeling
from repro.order.ordering import VertexOrdering
from repro.order.strategies import by_degree, identity_order, random_order


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_exact_cover_on_random_graphs(self, seed):
        g = generators.erdos_renyi_gnm(26, 45, seed=seed)
        verify_labeling(build_pll(g), g)

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_cover_under_random_ordering(self, seed):
        g = generators.erdos_renyi_gnm(22, 40, seed=seed)
        verify_labeling(build_pll(g, random_order(g, seed=seed)), g)

    def test_disconnected_graph(self):
        g = generators.compose_disjoint(
            [generators.cycle_graph(4), generators.path_graph(4)]
        )
        labeling = build_pll(g)
        verify_labeling(labeling, g)
        assert dist_query(labeling, 0, 5) == INF

    def test_tree(self):
        g = generators.random_tree(40, seed=1)
        verify_labeling(build_pll(g), g)

    def test_single_vertex(self):
        labeling = build_pll(Graph(1))
        assert labeling.total_entries() == 1

    def test_empty_graph(self):
        labeling = build_pll(Graph(0))
        assert labeling.total_entries() == 0

    def test_two_isolated_vertices(self):
        labeling = build_pll(Graph(2))
        assert dist_query(labeling, 0, 1) == INF


class TestWellOrdering:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_well_ordered(self, seed):
        g = generators.barabasi_albert(40, 3, seed=seed)
        assert is_well_ordered(build_pll(g))

    def test_rank_zero_vertex_in_every_label_of_its_component(self):
        """Lemma 1: the minimum-order vertex hits every label."""
        g = generators.erdos_renyi_gnm(25, 60, seed=3)
        ordering = by_degree(g)
        labeling = build_pll(g, ordering)
        root_rank = 0
        from repro.graph.traversal import UNREACHED, bfs_distances

        reach = bfs_distances(g, ordering.vertex(0))
        for v in range(25):
            if reach[v] != UNREACHED:
                assert labeling.hub_ranks[v][0] == root_rank


class TestSizes:
    def test_degree_order_beats_random_order(self):
        g = generators.barabasi_albert(120, 3, seed=4)
        by_deg = build_pll(g, by_degree(g)).total_entries()
        by_rand = build_pll(g, random_order(g, seed=4)).total_entries()
        assert by_deg < by_rand

    def test_star_is_two_entries_per_leaf(self, star7):
        labeling = build_pll(star7, by_degree(star7))
        # Center: 1 entry; each leaf: (center, 1) + (self, 0).
        assert labeling.total_entries() == 1 + 6 * 2

    def test_self_entry_always_present(self, paper_graph):
        labeling = build_pll(paper_graph)
        ordering = labeling.ordering
        for v in range(11):
            assert ordering.rank(v) in labeling.hub_ranks[v]
            i = labeling.hub_ranks[v].index(ordering.rank(v))
            assert labeling.hub_dists[v][i] == 0


class TestValidation:
    def test_ordering_size_mismatch(self, path5):
        with pytest.raises(LabelingError):
            build_pll(path5, VertexOrdering([0, 1, 2]))
