"""CLI coverage: ``sief metrics``, ``sief bench``, ``sief build --progress``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import generators
from repro.graph.io import write_edge_list
from repro.obs import hooks, read_json_lines, validate_trace_events


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    before = hooks._state()
    yield
    assert hooks._state() == before


def _small_workload_args():
    return [
        "metrics",
        "--vertices",
        "60",
        "--cases",
        "3",
        "--queries",
        "120",
        "--scalar-queries",
        "10",
    ]


def test_parser_metrics_defaults():
    args = build_parser().parse_args(["metrics"])
    assert args.command == "metrics"
    assert args.format == "jsonl"
    assert args.out == "-"
    assert args.vertices == 400


def test_metrics_jsonl_to_stdout(capsys):
    assert main(_small_workload_args()) == 0
    out = capsys.readouterr().out
    objs = [json.loads(line) for line in out.splitlines() if line.strip()]
    names = {o["name"] for o in objs if "name" in o}
    # The workload touches every instrumented layer.
    assert "pll.build.bfs" in names
    assert "sief.build.cases" in names
    assert "sief.query.batch_calls" in names
    assert "sief.query.scalar" in names
    (summary,) = [o for o in objs if o["type"] == "trace_summary"]
    assert summary["balanced"] is True
    by_name = {o["name"]: o for o in objs if "name" in o}
    assert by_name["sief.build.cases"]["value"] == 3
    assert by_name["sief.query.batch_calls"]["value"] == 3


def test_metrics_prometheus_to_file(tmp_path, capsys):
    out_file = tmp_path / "metrics.prom"
    rc = main(_small_workload_args() + ["--format", "prom", "--out", str(out_file)])
    assert rc == 0
    text = out_file.read_text()
    assert "# TYPE sief_build_cases counter" in text
    assert 'sief_query_batch_size_bucket{le="+Inf"}' in text
    assert "sief_query_scalar_seconds_count" in text


def test_metrics_from_graph_file(tmp_path, capsys):
    g = generators.erdos_renyi_gnm(30, 60, seed=8)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    rc = main(
        [
            "metrics",
            "--graph",
            str(path),
            "--cases",
            "2",
            "--queries",
            "40",
        ]
    )
    assert rc == 0
    err = capsys.readouterr().err
    assert "n=30" in err


def test_metrics_chrome_trace_with_profile(tmp_path, capsys):
    out_file = tmp_path / "trace.json"
    folded = tmp_path / "folded.txt"
    rc = main(
        _small_workload_args()
        + [
            "--format",
            "chrome",
            "--profile",
            "--folded-out",
            str(folded),
            "--out",
            str(out_file),
        ]
    )
    assert rc == 0
    doc = json.loads(out_file.read_text())
    assert validate_trace_events(doc) == []
    span_names = {
        e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
    }
    assert "pll.build" in span_names
    assert "sief.build.case" in span_names
    assert folded.exists()
    err = capsys.readouterr().err
    # --profile prints the rollup; a sub-interval workload legitimately
    # yields no samples, and that must render as such, not crash.
    assert "incl%" in err or "(no samples)" in err


def test_metrics_chrome_parallel_build_has_worker_tracks(tmp_path):
    out_file = tmp_path / "trace.json"
    rc = main(
        _small_workload_args()
        + [
            "--cases",
            "8",  # above the builder's 4-case pool threshold
            "--jobs",
            "2",
            "--batched",
            "--format",
            "chrome",
            "--out",
            str(out_file),
        ]
    )
    assert rc == 0
    doc = json.loads(out_file.read_text())
    assert validate_trace_events(doc) == []
    workers = [
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M"
        and e["name"] == "thread_name"
        and e["args"]["name"].startswith("worker-")
    ]
    assert len(workers) >= 1


def test_build_progress_renders_to_stderr(tmp_path, capsys):
    g = generators.erdos_renyi_gnm(25, 40, seed=3)
    graph = tmp_path / "g.txt"
    write_edge_list(g, graph)
    rc = main(
        [
            "build",
            str(graph),
            "-o",
            str(tmp_path / "g.sief"),
            "--batched",
            "--progress",
        ]
    )
    assert rc == 0
    err = capsys.readouterr().err
    assert "sief build:" in err
    assert "/s" in err
    assert err.endswith("\n")


class TestBenchCli:
    def _record(self, history, run, samples, scale=None):
        argv = [
            "bench",
            "record",
            "--history",
            str(history),
            "--run",
            run,
            "--id",
            "build",
        ]
        for s in samples:
            argv += ["--sample", str(s)]
        if scale is not None:
            argv += ["--scale", str(scale)]
        return main(argv)

    def test_identical_runs_pass(self, tmp_path, capsys):
        h = tmp_path / "hist.jsonl"
        assert self._record(h, "base", [0.1, 0.12]) == 0
        assert self._record(h, "cand", [0.1, 0.13]) == 0
        rc = main(["bench", "compare", "--history", str(h)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS build: 1.00x" in out

    def test_injected_slowdown_fails_with_id_and_ratio(self, tmp_path, capsys):
        h = tmp_path / "hist.jsonl"
        self._record(h, "base", [0.1])
        self._record(h, "cand", [0.1], scale=2.0)
        rc = main(["bench", "compare", "--history", str(h)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL build: 2.00x" in out

    def test_expect_regression_inverts_exit_code(self, tmp_path, capsys):
        h = tmp_path / "hist.jsonl"
        self._record(h, "base", [0.1])
        self._record(h, "cand", [0.1], scale=2.0)
        rc = main(
            ["bench", "compare", "--history", str(h), "--expect-regression"]
        )
        assert rc == 0
        self._record(h, "cand2", [0.1])
        rc = main(
            [
                "bench",
                "compare",
                "--history",
                str(h),
                "--baseline",
                "base",
                "--candidate",
                "cand2",
                "--expect-regression",
            ]
        )
        assert rc == 1

    def test_cross_host_refused_with_warning(self, tmp_path, capsys):
        import json as _json

        h = tmp_path / "hist.jsonl"
        self._record(h, "base", [0.1])
        self._record(h, "cand", [0.1])
        # Rewrite the baseline's hostname to simulate a foreign artifact.
        lines = [
            _json.loads(line)
            for line in h.read_text().splitlines()
            if line.strip()
        ]
        lines[0]["meta"]["hostname"] = "other-host"
        h.write_text("\n".join(_json.dumps(o) for o in lines) + "\n")
        rc = main(["bench", "compare", "--history", str(h)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "other-host" in err
        assert "--allow-cross-host" in err
        rc = main(
            ["bench", "compare", "--history", str(h), "--allow-cross-host"]
        )
        assert rc == 0

    def test_missing_runs_is_an_error(self, tmp_path, capsys):
        h = tmp_path / "hist.jsonl"
        self._record(h, "only", [0.1])
        rc = main(["bench", "compare", "--history", str(h)])
        assert rc == 2
        assert "two recorded runs" in capsys.readouterr().err

    def test_sample_requires_id(self, tmp_path, capsys):
        rc = main(
            [
                "bench",
                "record",
                "--history",
                str(tmp_path / "h.jsonl"),
                "--sample",
                "0.1",
            ]
        )
        assert rc == 2
        assert "--id" in capsys.readouterr().err

    def test_history_lists_runs(self, tmp_path, capsys):
        h = tmp_path / "hist.jsonl"
        self._record(h, "r1", [0.1])
        self._record(h, "r2", [0.2])
        assert main(["bench", "history", "--history", str(h)]) == 0
        out = capsys.readouterr().out
        assert "r1: 1 benchmark(s) [build]" in out
        assert "r2:" in out

    def test_record_real_workload_smoke(self, tmp_path, capsys):
        h = tmp_path / "hist.jsonl"
        rc = main(
            [
                "bench",
                "record",
                "--history",
                str(h),
                "--run",
                "smoke",
                "--workload",
                "query",
                "--vertices",
                "40",
                "--cases",
                "2",
                "--queries",
                "50",
                "--repeat",
                "2",
            ]
        )
        assert rc == 0
        from repro.bench.history import BenchHistory

        (rec,) = BenchHistory(h).load()
        assert rec.bench_id == "query"
        assert len(rec.samples) == 2
        assert rec.meta["hostname"]


def test_fuzz_metrics_sidecar(tmp_path, capsys):
    sidecar = tmp_path / "fuzz.metrics.jsonl"
    rc = main(
        [
            "fuzz",
            "--budget",
            "2s",
            "--seed",
            "0",
            "--no-corpus",
            "--no-shrink",
            "--adapter",
            "sief-scalar",
            "--adapter",
            "sief-batch",
            "--metrics-out",
            str(sidecar),
        ]
    )
    assert rc == 0
    objs = read_json_lines(sidecar)
    assert objs, "sidecar is empty"
    (summary,) = [o for o in objs if o["type"] == "trace_summary"]
    assert summary["balanced"] is True
    names = {o.get("name") for o in objs}
    assert "sief.build.cases" in names  # fuzz builds indexes under the hooks
    out = capsys.readouterr().out
    assert "metrics sidecar written" in out
