"""CLI coverage for ``sief metrics`` and ``sief fuzz --metrics-out``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import generators
from repro.graph.io import write_edge_list
from repro.obs import hooks, read_json_lines


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    before = (hooks.registry, hooks.tracer)
    yield
    assert (hooks.registry, hooks.tracer) == before


def _small_workload_args():
    return [
        "metrics",
        "--vertices",
        "60",
        "--cases",
        "3",
        "--queries",
        "120",
        "--scalar-queries",
        "10",
    ]


def test_parser_metrics_defaults():
    args = build_parser().parse_args(["metrics"])
    assert args.command == "metrics"
    assert args.format == "jsonl"
    assert args.out == "-"
    assert args.vertices == 400


def test_metrics_jsonl_to_stdout(capsys):
    assert main(_small_workload_args()) == 0
    out = capsys.readouterr().out
    objs = [json.loads(line) for line in out.splitlines() if line.strip()]
    names = {o["name"] for o in objs if "name" in o}
    # The workload touches every instrumented layer.
    assert "pll.build.bfs" in names
    assert "sief.build.cases" in names
    assert "sief.query.batch_calls" in names
    assert "sief.query.scalar" in names
    (summary,) = [o for o in objs if o["type"] == "trace_summary"]
    assert summary["balanced"] is True
    by_name = {o["name"]: o for o in objs if "name" in o}
    assert by_name["sief.build.cases"]["value"] == 3
    assert by_name["sief.query.batch_calls"]["value"] == 3


def test_metrics_prometheus_to_file(tmp_path, capsys):
    out_file = tmp_path / "metrics.prom"
    rc = main(_small_workload_args() + ["--format", "prom", "--out", str(out_file)])
    assert rc == 0
    text = out_file.read_text()
    assert "# TYPE sief_build_cases counter" in text
    assert 'sief_query_batch_size_bucket{le="+Inf"}' in text
    assert "sief_query_scalar_seconds_count" in text


def test_metrics_from_graph_file(tmp_path, capsys):
    g = generators.erdos_renyi_gnm(30, 60, seed=8)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    rc = main(
        [
            "metrics",
            "--graph",
            str(path),
            "--cases",
            "2",
            "--queries",
            "40",
        ]
    )
    assert rc == 0
    err = capsys.readouterr().err
    assert "n=30" in err


def test_fuzz_metrics_sidecar(tmp_path, capsys):
    sidecar = tmp_path / "fuzz.metrics.jsonl"
    rc = main(
        [
            "fuzz",
            "--budget",
            "2s",
            "--seed",
            "0",
            "--no-corpus",
            "--no-shrink",
            "--adapter",
            "sief-scalar",
            "--adapter",
            "sief-batch",
            "--metrics-out",
            str(sidecar),
        ]
    )
    assert rc == 0
    objs = read_json_lines(sidecar)
    assert objs, "sidecar is empty"
    (summary,) = [o for o in objs if o["type"] == "trace_summary"]
    assert summary["balanced"] is True
    names = {o.get("name") for o in objs}
    assert "sief.build.cases" in names  # fuzz builds indexes under the hooks
    out = capsys.readouterr().out
    assert "metrics sidecar written" in out
